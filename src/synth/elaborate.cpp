#include "synth/elaborate.hpp"

#include "netlist/library.hpp"
#include "util/error.hpp"

namespace pdr::synth {

using netlist::Netlist;
using netlist::PortDir;
using netlist::PrimitiveKind;

namespace {

int param(const Params& params, const std::string& key, int fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

int require_positive(const Params& params, const std::string& key, int fallback,
                     const std::string& kind) {
  const int v = param(params, key, fallback);
  PDR_CHECK(v > 0, "elaborate_operator", "parameter '" + key + "' of '" + kind + "' must be positive");
  return v;
}

Netlist qam_mapper(const std::string& name, int bits_per_symbol) {
  // Gray constellation mapper: bit gather shift register, per-axis Gray
  // decode and level selection, I/Q level ROMs, output registers. Logic
  // grows with bits/symbol (wider gather, bigger level mux trees), which
  // is what separates the QPSK and QAM-16 rows of Table 1.
  Netlist n(name);
  n.add_port("bits_in", bits_per_symbol, PortDir::In);
  n.add_port("i_out", 16, PortDir::Out);
  n.add_port("q_out", 16, PortDir::Out);
  n.add_port("valid", 1, PortDir::Out);
  n.instantiate(netlist::make_shift_register(1, bits_per_symbol));
  const int levels = 1 << ((bits_per_symbol + 1) / 2);  // amplitude levels per axis
  n.instantiate(netlist::make_rom(levels, 16), 2);      // I and Q level tables
  n.instantiate(netlist::make_mux(16, levels), 2);      // level selection per axis
  n.add(PrimitiveKind::Lut4, 6 * bits_per_symbol);      // Gray decode + packing
  n.add(PrimitiveKind::FlipFlop, 2 * bits_per_symbol);  // gather stage
  n.instantiate(netlist::make_register(16), 2);
  n.instantiate(netlist::make_fsm(4, 2, 3));            // symbol pacing
  return n;
}

}  // namespace

Netlist elaborate_operator(const std::string& kind, const Params& params) {
  if (kind == "bit_source") {
    const int width = require_positive(params, "width", 8, kind);
    Netlist n("bit_source");
    n.add_port("bits", width, PortDir::Out);
    n.instantiate(netlist::make_shift_register(1, 23));  // PRBS23 LFSR
    n.add(PrimitiveKind::Lut4, 2);                       // feedback taps
    n.instantiate(netlist::make_register(width));
    return n;
  }
  if (kind == "scrambler") {
    const int width = require_positive(params, "width", 8, kind);
    Netlist n("scrambler");
    n.add_port("din", width, PortDir::In).add_port("dout", width, PortDir::Out);
    n.instantiate(netlist::make_shift_register(1, 15));
    n.add(PrimitiveKind::Lut4, width);  // XOR plane
    n.instantiate(netlist::make_register(width));
    return n;
  }
  if (kind == "conv_encoder") {
    const int k = require_positive(params, "k", 7, kind);
    Netlist n("conv_encoder");
    n.add_port("din", 1, PortDir::In).add_port("dout", 2, PortDir::Out);
    n.instantiate(netlist::make_shift_register(1, k));
    n.add(PrimitiveKind::Lut4, 2 * ((k + 3) / 4));  // generator XOR trees
    n.instantiate(netlist::make_register(2));
    return n;
  }
  if (kind == "interleaver") {
    const int depth = require_positive(params, "depth", 512, kind);
    const int width = require_positive(params, "width", 8, kind);
    Netlist n("interleaver");
    n.add_port("din", width, PortDir::In).add_port("dout", width, PortDir::Out);
    n.instantiate(netlist::make_ping_pong_buffer(depth, width));
    n.instantiate(netlist::make_counter(netlist::clog2(depth)));
    n.instantiate(netlist::make_rom(depth, netlist::clog2(depth)));  // permutation table
    return n;
  }
  if (kind == "bpsk_mapper") return qam_mapper("bpsk_mapper", 1);
  if (kind == "qpsk_mapper") return qam_mapper("qpsk_mapper", 2);
  if (kind == "qam16_mapper") return qam_mapper("qam16_mapper", 4);
  if (kind == "qam64_mapper") return qam_mapper("qam64_mapper", 6);
  if (kind == "walsh_spreader") {
    const int sf = require_positive(params, "sf", 16, kind);
    const int users = require_positive(params, "users", 1, kind);
    Netlist n("walsh_spreader");
    n.add_port("sym_in", 32, PortDir::In).add_port("chips_out", 32, PortDir::Out);
    n.instantiate(netlist::make_rom(sf, sf));  // Walsh code table
    n.instantiate(netlist::make_counter(netlist::clog2(sf)));
    // Per-user chip accumulate (sign flip + add) on I and Q.
    n.instantiate(netlist::make_adder(16), 2 * users);
    n.instantiate(netlist::make_register(32));
    return n;
  }
  if (kind == "ifft") {
    const int size = require_positive(params, "n", 64, kind);
    const int width = require_positive(params, "width", 16, kind);
    PDR_CHECK((size & (size - 1)) == 0, "elaborate_operator", "ifft size must be a power of two");
    Netlist n("ifft");
    n.add_port("din", 2 * width, PortDir::In).add_port("dout", 2 * width, PortDir::Out);
    // Radix-2 pipeline: log2(n) butterfly stages, each with a complex
    // multiplier (4 real mults), twiddle ROM and a delay line.
    const int stages = netlist::clog2(size);
    for (int s = 0; s < stages; ++s) {
      n.instantiate(netlist::make_multiplier(width), 4);
      n.instantiate(netlist::make_adder(width), 6);
      n.instantiate(netlist::make_rom(size / 2, 2 * width));
      n.instantiate(netlist::make_shift_register(2 * width, 1 << s));
    }
    n.instantiate(netlist::make_fsm(8, 2, 4));
    return n;
  }
  if (kind == "cyclic_prefix") {
    const int size = require_positive(params, "n", 64, kind);
    const int cp = require_positive(params, "cp", 16, kind);
    const int width = require_positive(params, "width", 16, kind);
    PDR_CHECK(cp < size, "elaborate_operator", "cyclic prefix must be shorter than the symbol");
    Netlist n("cyclic_prefix");
    n.add_port("din", 2 * width, PortDir::In).add_port("dout", 2 * width, PortDir::Out);
    n.instantiate(netlist::make_ping_pong_buffer(size + cp, 2 * width));
    n.instantiate(netlist::make_counter(netlist::clog2(size + cp)));
    return n;
  }
  if (kind == "frame_builder") {
    const int size = require_positive(params, "n", 64, kind);
    const int width = require_positive(params, "width", 16, kind);
    Netlist n("frame_builder");
    n.add_port("din", 2 * width, PortDir::In).add_port("dout", 2 * width, PortDir::Out);
    n.instantiate(netlist::make_rom(size, 2 * width));  // pilot symbols
    n.instantiate(netlist::make_mux(2 * width, 2));
    n.instantiate(netlist::make_fsm(6, 3, 4));
    return n;
  }
  if (kind == "interface_in_out") {
    const int width = require_positive(params, "width", 32, kind);
    Netlist n("interface_in_out");
    n.add_port("shb_in", width, PortDir::In).add_port("shb_out", width, PortDir::Out);
    n.add_port("select", 4, PortDir::In);     // modulation select from the DSP
    n.add_port("in_reconf", 1, PortDir::In);  // lock-up during reconfiguration (paper Fig. 4)
    n.instantiate(netlist::make_fifo(64, width), 2);
    n.instantiate(netlist::make_fsm(6, 4, 6));
    n.instantiate(netlist::make_register(width), 2);
    return n;
  }
  if (kind == "config_manager") {
    // Configuration manager (paper §5): request queue, loaded-module
    // table, state machine issuing configuration requests.
    Netlist n("config_manager");
    n.add_port("req", 8, PortDir::In).add_port("grant", 1, PortDir::Out);
    n.add_port("module_id", 8, PortDir::Out).add_port("busy", 1, PortDir::Out);
    n.instantiate(netlist::make_fifo(8, 16));
    n.instantiate(netlist::make_register(8), 4);
    n.instantiate(netlist::make_fsm(8, 4, 6));
    n.instantiate(netlist::make_comparator(8), 2);
    return n;
  }
  if (kind == "protocol_builder") {
    // Protocol configuration builder (paper §5): addresses external
    // bitstream memory, frames the stream, drives ICAP/SelectMAP, checks
    // CRC.
    Netlist n("protocol_builder");
    n.add_port("module_id", 8, PortDir::In).add_port("start", 1, PortDir::In);
    n.add_port("mem_addr", 24, PortDir::Out).add_port("mem_data", 32, PortDir::In);
    n.add_port("cfg_data", 8, PortDir::Out).add_port("cfg_wr", 1, PortDir::Out);
    n.add_port("done", 1, PortDir::Out);
    n.instantiate(netlist::make_counter(24));  // memory address counter
    n.instantiate(netlist::make_counter(16));  // word counter
    n.instantiate(netlist::make_rom(64, 32));  // per-module stream directory
    n.instantiate(netlist::make_fsm(12, 4, 8));
    n.instantiate(netlist::make_shift_register(8, 4));
    n.add(PrimitiveKind::Lut4, 32);  // CRC32 update network
    n.instantiate(netlist::make_register(32));
    return n;
  }
  if (kind == "fir") {
    const int taps = require_positive(params, "taps", 16, kind);
    const int width = require_positive(params, "width", 16, kind);
    Netlist n("fir");
    n.add_port("din", width, PortDir::In).add_port("dout", width, PortDir::Out);
    n.instantiate(netlist::make_multiplier(width), taps);
    n.instantiate(netlist::make_adder(width), taps - 1);
    n.instantiate(netlist::make_shift_register(width, taps));
    return n;
  }
  if (kind == "custom") {
    Netlist n("custom");
    const int in_bits = require_positive(params, "in_bits", 8, kind);
    const int out_bits = require_positive(params, "out_bits", 8, kind);
    n.add_port("din", in_bits, PortDir::In).add_port("dout", out_bits, PortDir::Out);
    n.add(PrimitiveKind::Lut4, require_positive(params, "luts", 16, kind));
    n.add(PrimitiveKind::FlipFlop, require_positive(params, "ffs", 16, kind));
    n.add(PrimitiveKind::Bram18, param(params, "brams", 0));
    n.add(PrimitiveKind::Mult18, param(params, "mults", 0));
    return n;
  }
  raise("elaborate_operator", "unknown operator kind '" + kind + "'");
}

netlist::Netlist wrap_executive(const netlist::Netlist& datapath) {
  Netlist n(datapath.name() + "_exec");
  // Ports: the wrapped module keeps the datapath's I/O plus the executive
  // handshake and the reconfiguration lock-up signal.
  for (const auto& p : datapath.ports()) n.add_port(p.name, p.width, p.dir);
  n.add_port("hs_req", 1, PortDir::In);
  n.add_port("hs_ack", 1, PortDir::Out);
  n.add_port("in_reconf", 1, PortDir::In);
  n.instantiate(datapath);
  // Generic executive structure (matches generate_vhdl_entity's four
  // processes): sequencer FSMs, staging FIFOs (SRL-based — regions need
  // not contain BRAM columns), handshake/phase registers.
  n.instantiate(netlist::make_fsm(8, 4, 8));   // communication sequencer
  n.instantiate(netlist::make_fsm(4, 2, 4));   // computation sequencer
  n.instantiate(netlist::make_fifo(32, 32), 2);  // input/output staging
  n.instantiate(netlist::make_register(32), 2);  // handshake data registers
  n.instantiate(netlist::make_counter(6));       // buffer phase control
  return n;
}

std::vector<std::string> known_operator_kinds() {
  return {"bit_source",    "scrambler",        "conv_encoder",   "interleaver",
          "bpsk_mapper",   "qpsk_mapper",      "qam16_mapper",   "qam64_mapper",
          "walsh_spreader", "ifft",            "cyclic_prefix",  "frame_builder",
          "interface_in_out", "config_manager", "protocol_builder", "fir",
          "custom"};
}

bool is_modulation_kind(const std::string& kind) {
  return kind == "bpsk_mapper" || kind == "qpsk_mapper" || kind == "qam16_mapper" ||
         kind == "qam64_mapper";
}

int modulation_bits_per_symbol(const std::string& kind) {
  if (kind == "bpsk_mapper") return 1;
  if (kind == "qpsk_mapper") return 2;
  if (kind == "qam16_mapper") return 4;
  if (kind == "qam64_mapper") return 6;
  raise("modulation_bits_per_symbol", "'" + kind + "' is not a modulation kind");
}

}  // namespace pdr::synth
