// Operator elaboration: algorithm-graph operation kinds -> netlists.
//
// This is the "synthesize the VHDL of each module separately" step of the
// paper's flow (§5), with the VHDL stage replaced by direct elaboration
// into the pdr::netlist block library. Every operator the MC-CDMA case
// study uses (paper Figure 4) has an entry, plus the infrastructure
// modules the generated design needs (interface, configuration manager,
// protocol builder).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace pdr::synth {

/// Integer parameters of an operator instance (e.g. {"n", 64} for ifft).
using Params = std::map<std::string, int>;

/// Returns the netlist of one operator kind.
///
/// Supported kinds (parameters in brackets, with defaults):
///   bit_source        [width=8]           PRBS generator
///   scrambler         [width=8]
///   conv_encoder      [k=7]               convolutional encoder
///   interleaver       [depth=512, width=8]
///   qpsk_mapper       []                  2 bits/symbol Gray mapper
///   qam16_mapper      []                  4 bits/symbol Gray mapper
///   qam64_mapper      []                  6 bits/symbol Gray mapper
///   bpsk_mapper       []                  1 bit/symbol
///   walsh_spreader    [sf=16, users=1]
///   ifft              [n=64, width=16]
///   cyclic_prefix     [n=64, cp=16, width=16]
///   frame_builder     [n=64, width=16]
///   interface_in_out  [width=32]          host/DSP interface (paper Fig. 4)
///   config_manager    []                  reconfiguration request manager
///   protocol_builder  []                  bitstream protocol builder + memory addressing
///   fir               [taps=16, width=16]
///   custom            [luts, ffs, brams=0, mults=0, in_bits=8, out_bits=8]
///
/// Throws pdr::Error for unknown kinds or out-of-range parameters.
netlist::Netlist elaborate_operator(const std::string& kind, const Params& params = {});

/// All kinds elaborate_operator accepts (for tests and tools).
std::vector<std::string> known_operator_kinds();

/// True if `kind` names a modulation mapper (the dynamic-module family of
/// the case study).
bool is_modulation_kind(const std::string& kind);

/// Bits per symbol of a modulation mapper kind (throws for other kinds).
int modulation_bits_per_symbol(const std::string& kind);

/// Wraps a dynamic-module datapath in the generic executive structure the
/// VHDL generator emits around it (communication/computation sequencer
/// FSMs, handshake registers, SRL-based I/O staging FIFOs). This is the
/// resource overhead of the dynamic scheme the paper's Table 1 measures:
/// "This overhead is due to the generic VHDL structure generation, based
/// on the macro code description" (§6).
netlist::Netlist wrap_executive(const netlist::Netlist& datapath);

}  // namespace pdr::synth
