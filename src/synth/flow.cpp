#include "synth/flow.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pdr::synth {
namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - since).count();
}

}  // namespace

const ModuleArtifact& DesignBundle::variant(const std::string& region, const std::string& name) const {
  const auto it = dynamic_variants.find(region);
  PDR_CHECK(it != dynamic_variants.end(), "DesignBundle::variant", "unknown region '" + region + "'");
  for (const auto& v : it->second)
    if (v.name == name) return v;
  raise("DesignBundle::variant", "region '" + region + "' has no variant '" + name + "'");
}

std::vector<std::string> DesignBundle::variant_names(const std::string& region) const {
  const auto it = dynamic_variants.find(region);
  PDR_CHECK(it != dynamic_variants.end(), "DesignBundle::variant_names",
            "unknown region '" + region + "'");
  std::vector<std::string> out;
  for (const auto& v : it->second) out.push_back(v.name);
  return out;
}

ResourceUsage DesignBundle::static_usage() const {
  ResourceUsage u;
  for (const auto& m : static_modules) u += m.usage;
  return u;
}

ModularDesignFlow::ModularDesignFlow(fabric::DeviceModel device) : device_(std::move(device)) {}

ModularDesignFlow& ModularDesignFlow::add_static(const std::string& name, const std::string& kind,
                                                 const Params& params) {
  statics_.push_back(ModuleSpec{name, kind, params});
  return *this;
}

ModularDesignFlow& ModularDesignFlow::add_region(const std::string& region_name,
                                                 std::vector<ModuleSpec> variants, int margin_cols,
                                                 int fixed_width_cols) {
  PDR_CHECK(!variants.empty(), "ModularDesignFlow::add_region",
            "region '" + region_name + "' has no variants");
  PDR_CHECK(margin_cols >= 0, "ModularDesignFlow::add_region", "negative margin");
  regions_.push_back(RegionPlan{region_name, std::move(variants), margin_cols, fixed_width_cols});
  return *this;
}

DesignBundle ModularDesignFlow::run() {
  FlowReport report;

  // --- Elaborate + map every module (separate synthesis per module, §5).
  auto t0 = std::chrono::steady_clock::now();
  struct Built {
    netlist::Netlist nl;
    ResourceUsage usage;
  };
  std::vector<Built> static_built;
  static_built.reserve(statics_.size());
  for (const auto& spec : statics_) {
    netlist::Netlist nl = elaborate_operator(spec.kind, spec.params);
    static_built.push_back(Built{std::move(nl), ResourceUsage{}});
  }
  std::vector<std::vector<Built>> region_built(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    for (const auto& spec : regions_[r].variants) {
      // Dynamic variants carry the generated executive structure around
      // their datapath (the paper's measured overhead of the dynamic
      // scheme).
      netlist::Netlist nl = wrap_executive(elaborate_operator(spec.kind, spec.params));
      region_built[r].push_back(Built{std::move(nl), ResourceUsage{}});
    }
  }
  report.elaborate_us = elapsed_us(t0);

  t0 = std::chrono::steady_clock::now();
  for (auto& b : static_built) b.usage = map_netlist(b.nl);
  for (auto& rb : region_built)
    for (auto& b : rb) b.usage = map_netlist(b.nl);
  report.map_us = elapsed_us(t0);

  // --- Floorplan: reconfigurable regions packed against the right edge,
  // sized by their widest variant.
  t0 = std::chrono::steady_clock::now();
  fabric::Floorplan plan(device_);
  int next_hi = device_.clb_cols - 1;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    int width = fabric::kMinReconfigClbCols;
    int in_bits = 0;
    int out_bits = 0;
    for (const auto& b : region_built[r]) {
      width = std::max(width, columns_needed(b.usage, device_));
      in_bits = std::max(in_bits, b.nl.input_bits());
      out_bits = std::max(out_bits, b.nl.output_bits());
    }
    width += regions_[r].margin_cols;
    if (regions_[r].fixed_width_cols >= 0) {
      PDR_CHECK(regions_[r].fixed_width_cols >= width - regions_[r].margin_cols,
                "ModularDesignFlow",
                "fixed width of region '" + regions_[r].name + "' is below its widest variant");
      width = std::max(regions_[r].fixed_width_cols, fabric::kMinReconfigClbCols);
    }
    const int col_hi = next_hi;
    const int col_lo = col_hi - width + 1;
    PDR_CHECK(col_lo >= 0, "ModularDesignFlow",
              "device " + device_.name + " too narrow for region '" + regions_[r].name + "'");
    plan.add_region(regions_[r].name, col_lo, col_hi, /*reconfigurable=*/true, in_bits, out_bits);
    next_hi = col_lo - 1;
  }

  // --- Place.
  DesignBundle bundle{device_, plan, {}, {}, {}, {}};
  Placer placer(bundle.floorplan);
  for (std::size_t i = 0; i < statics_.size(); ++i) {
    ModuleArtifact art;
    art.name = statics_[i].name;
    art.usage = static_built[i].usage;
    // Rename netlist-level module to the spec name for reporting clarity.
    art.placement = placer.place_static(static_built[i].nl);
    art.placement.name = statics_[i].name;
    art.netlist_hash = static_built[i].nl.content_hash();
    art.input_bits = static_built[i].nl.input_bits();
    art.output_bits = static_built[i].nl.output_bits();
    art.timing = estimate_timing(static_built[i].nl);
    bundle.static_modules.push_back(std::move(art));
  }
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    auto& variants = bundle.dynamic_variants[regions_[r].name];
    for (std::size_t v = 0; v < regions_[r].variants.size(); ++v) {
      ModuleArtifact art;
      art.name = regions_[r].variants[v].name;
      art.placement =
          placer.place_dynamic(art.name, region_built[r][v].nl, regions_[r].name);
      art.usage = art.placement.usage;  // includes bus-macro TBUFs
      art.netlist_hash = region_built[r][v].nl.content_hash();
      art.input_bits = region_built[r][v].nl.input_bits();
      art.output_bits = region_built[r][v].nl.output_bits();
      art.timing = estimate_timing(region_built[r][v].nl, TimingModel{},
                                   /*crosses_bus_macro=*/true);
      variants.push_back(std::move(art));
    }
  }
  report.place_us = elapsed_us(t0);

  // --- Bitstream generation: one partial bitstream per dynamic variant
  // plus the initial full-device configuration.
  t0 = std::chrono::steady_clock::now();
  std::uint64_t design_hash = 0x9e3779b97f4a7c15ull;
  for (const auto& m : bundle.static_modules) design_hash ^= m.netlist_hash;
  for (auto& [region, variants] : bundle.dynamic_variants) {
    for (auto& v : variants) {
      v.bitstream = generate_partial_bitstream(device_, v.placement.frames, v.netlist_hash);
      report.total_bitstream_bytes += v.bitstream.size();
      ++report.dynamic_variants;
    }
  }
  bundle.initial_bitstream = generate_full_bitstream(device_, design_hash);
  report.total_bitstream_bytes += bundle.initial_bitstream.size();
  report.bitgen_us = elapsed_us(t0);

  report.modules = static_cast<int>(statics_.size()) + report.dynamic_variants;
  bundle.report = report;

  if (tracer_ != nullptr) {
    // Wall-clock stage spans, laid end to end from t = 0 (floorplanning is
    // folded into the place stage, matching FlowReport's buckets).
    auto us_to_ns = [](double us) { return static_cast<TimeNs>(us * 1e3); };
    TimeNs t = 0;
    const struct {
      const char* name;
      double us;
    } stages[] = {{"elaborate", report.elaborate_us},
                  {"map", report.map_us},
                  {"place", report.place_us},
                  {"bitgen", report.bitgen_us}};
    for (const auto& stage : stages) {
      tracer_->span("flow", stage.name, "flow_stage", t, t + us_to_ns(stage.us));
      t += us_to_ns(stage.us);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->counter("flow.runs").add();
    metrics_->counter("flow.modules").add(report.modules);
    metrics_->counter("flow.dynamic_variants").add(report.dynamic_variants);
    metrics_->counter("flow.bitstream_bytes").add(static_cast<double>(report.total_bitstream_bytes));
    metrics_->gauge("flow.last_run_us")
        .set(report.elaborate_us + report.map_us + report.place_us + report.bitgen_us);
  }
  PDR_INFO("flow") << "built " << report.modules << " modules, "
                   << human_bytes(report.total_bitstream_bytes) << " of bitstreams";
  return bundle;
}

}  // namespace pdr::synth
