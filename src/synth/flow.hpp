// The Modular Design back-end flow (paper Figure 3, right column).
//
// Orchestrates, for a whole design: operator elaboration, technology
// mapping, floorplanning (sizing reconfigurable regions from their widest
// variant), placement and per-module bitstream generation. The result, a
// DesignBundle, is what the runtime reconfiguration manager and the
// simulator execute against.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fabric/floorplan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/bitgen.hpp"
#include "synth/elaborate.hpp"
#include "synth/place.hpp"
#include "synth/timing.hpp"

namespace pdr::synth {

/// One module to build (operator kind + parameters).
struct ModuleSpec {
  std::string name;
  std::string kind;
  Params params;
};

/// Everything the flow produced for one module.
struct ModuleArtifact {
  std::string name;
  ResourceUsage usage;
  PlacedModule placement;
  std::vector<std::uint8_t> bitstream;  ///< partial bitstream for this module
  std::uint64_t netlist_hash = 0;
  int input_bits = 0;
  int output_bits = 0;
  TimingEstimate timing;  ///< pre-P&R static timing estimate
};

/// Flow stage wall-clock timings (microseconds) and artifact counts, for
/// the Figure-3 design-flow benchmark.
struct FlowReport {
  double elaborate_us = 0;
  double map_us = 0;
  double place_us = 0;
  double bitgen_us = 0;
  int modules = 0;
  int dynamic_variants = 0;
  Bytes total_bitstream_bytes = 0;
};

/// Complete flow output.
struct DesignBundle {
  fabric::DeviceModel device;
  fabric::Floorplan floorplan;
  std::vector<ModuleArtifact> static_modules;
  /// region name -> its interchangeable dynamic variants
  std::map<std::string, std::vector<ModuleArtifact>> dynamic_variants;
  std::vector<std::uint8_t> initial_bitstream;  ///< full-device initial load
  FlowReport report;

  /// Artifact of a dynamic variant; throws if unknown.
  const ModuleArtifact& variant(const std::string& region, const std::string& name) const;
  /// All variant names of a region.
  std::vector<std::string> variant_names(const std::string& region) const;
  /// Sum of static-module resources.
  ResourceUsage static_usage() const;
};

class ModularDesignFlow {
 public:
  explicit ModularDesignFlow(fabric::DeviceModel device);

  /// Adds a module to the static area.
  ModularDesignFlow& add_static(const std::string& name, const std::string& kind,
                                const Params& params = {});

  /// Declares a reconfigurable region and its interchangeable variants.
  /// Region width = columns needed by the widest variant + `margin_cols`,
  /// clamped to the Modular Design minimum — unless `fixed_width_cols` is
  /// >= 0, which pins the width exactly (the flow still verifies every
  /// variant fits).
  ModularDesignFlow& add_region(const std::string& region_name, std::vector<ModuleSpec> variants,
                                int margin_cols = 0, int fixed_width_cols = -1);

  /// Attaches an observability sink: run() emits one wall-clock span per
  /// flow stage (track "flow", category "flow_stage") and counters/gauges
  /// under "flow.". Either pointer may be nullptr.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Runs elaborate -> map -> floorplan -> place -> bitgen. Throws
  /// pdr::Error if any module does not fit.
  DesignBundle run();

 private:
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  fabric::DeviceModel device_;
  std::vector<ModuleSpec> statics_;
  struct RegionPlan {
    std::string name;
    std::vector<ModuleSpec> variants;
    int margin_cols = 0;
    int fixed_width_cols = -1;
  };
  std::vector<RegionPlan> regions_;
};

}  // namespace pdr::synth
