#include "synth/map.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::synth {

using netlist::PrimitiveKind;

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& o) {
  slices += o.slices;
  luts += o.luts;
  ffs += o.ffs;
  brams += o.brams;
  mults += o.mults;
  tbufs += o.tbufs;
  return *this;
}

std::string ResourceUsage::to_string() const {
  return strprintf("%d slices (%d LUT, %d FF), %d BRAM, %d MULT, %d TBUF", slices, luts, ffs, brams,
                   mults, tbufs);
}

ResourceUsage map_netlist(const netlist::Netlist& nl) {
  ResourceUsage u;
  u.luts = nl.count(PrimitiveKind::Lut4);
  u.ffs = nl.count(PrimitiveKind::FlipFlop);
  u.brams = nl.count(PrimitiveKind::Bram18);
  u.mults = nl.count(PrimitiveKind::Mult18);
  u.tbufs = nl.count(PrimitiveKind::Tbuf);
  // Two LUTs and two FFs per slice, derated by packing efficiency.
  const double lut_slices = static_cast<double>(u.luts) / 2.0;
  const double ff_slices = static_cast<double>(u.ffs) / 2.0;
  u.slices = static_cast<int>(std::ceil(std::max(lut_slices, ff_slices) / kPackingEfficiency));
  return u;
}

double utilization_percent(const ResourceUsage& usage, const fabric::DeviceModel& device) {
  double worst = 0.0;
  worst = std::max(worst, 100.0 * usage.slices / device.total_slices());
  if (device.total_brams() > 0) worst = std::max(worst, 100.0 * usage.brams / device.total_brams());
  if (device.total_mult18() > 0) worst = std::max(worst, 100.0 * usage.mults / device.total_mult18());
  if (device.total_tbufs() > 0) worst = std::max(worst, 100.0 * usage.tbufs / device.total_tbufs());
  return worst;
}

bool fits(const ResourceUsage& usage, int slice_budget, int bram_budget, int mult_budget) {
  return usage.slices <= slice_budget && usage.brams <= bram_budget && usage.mults <= mult_budget;
}

bool fits_region(const ResourceUsage& usage, const fabric::Floorplan& plan,
                 const std::string& region_name) {
  const fabric::Region& r = plan.region(region_name);
  const fabric::DeviceModel& dev = plan.device();
  const int slice_budget = plan.region_slices(region_name);
  // BRAM/MULT columns strictly inside the region's span are usable by it.
  int bram_cols_inside = 0;
  for (int pos : plan.frame_map().bram_positions())
    if (pos >= r.col_lo && pos < r.col_hi) ++bram_cols_inside;
  const int bram_budget = bram_cols_inside * dev.brams_per_col;
  return fits(usage, slice_budget, bram_budget, bram_budget);
}

int columns_needed(const ResourceUsage& usage, const fabric::DeviceModel& device) {
  const int per_col = device.slices_per_clb_col();
  PDR_CHECK(per_col > 0, "columns_needed", "device has no slices");
  return std::max(1, static_cast<int>(std::ceil(static_cast<double>(usage.slices) / per_col)));
}

}  // namespace pdr::synth
