// Technology mapping: netlist primitive counts -> device resources.
//
// Mirrors Virtex-II packing: a slice holds two 4-input LUTs and two
// flip-flops; BRAM18 and MULT18 map one-to-one to embedded blocks; bus
// macros consume TBUFs. `kPackingEfficiency` models the fact that real
// P&R rarely packs slices fully (LUT and FF of one slice often belong to
// different logic), which is also where the paper's observed overhead of
// generated structures shows up.
#pragma once

#include <string>

#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace pdr::synth {

/// Fraction of theoretical slice capacity real packing achieves.
inline constexpr double kPackingEfficiency = 0.80;

/// Mapped resource totals of one module.
struct ResourceUsage {
  int slices = 0;
  int luts = 0;
  int ffs = 0;
  int brams = 0;
  int mults = 0;
  int tbufs = 0;

  ResourceUsage& operator+=(const ResourceUsage& o);
  friend ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) { return a += b; }

  std::string to_string() const;
};

/// Maps a netlist onto slices/BRAMs/MULTs.
ResourceUsage map_netlist(const netlist::Netlist& nl);

/// Percentage (0-100) of `device` the usage occupies, by its scarcest
/// dimension (slices, BRAMs or MULTs).
double utilization_percent(const ResourceUsage& usage, const fabric::DeviceModel& device);

/// True if `usage` fits within `slice_budget` slices, `bram_budget` BRAMs
/// and `mult_budget` MULTs.
bool fits(const ResourceUsage& usage, int slice_budget, int bram_budget, int mult_budget);

/// True if `usage` fits in floorplan region `region_name` (slices from the
/// region's columns; BRAM/MULT columns interleaved in its range).
bool fits_region(const ResourceUsage& usage, const fabric::Floorplan& plan,
                 const std::string& region_name);

/// CLB columns needed to hold `usage` on `device` at kPackingEfficiency.
int columns_needed(const ResourceUsage& usage, const fabric::DeviceModel& device);

}  // namespace pdr::synth
