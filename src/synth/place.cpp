#include "synth/place.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::synth {

Placer::Placer(const fabric::Floorplan& plan) : plan_(plan) {
  for (int c : plan.free_columns()) free_cols_.insert(c);
}

PlacedModule Placer::place_dynamic(const std::string& variant_name, const netlist::Netlist& nl,
                                   const std::string& region_name) {
  const fabric::Region& region = plan_.region(region_name);
  PDR_CHECK(region.reconfigurable, "Placer::place_dynamic",
            "region '" + region_name + "' is not reconfigurable");
  const ResourceUsage usage = map_netlist(nl);
  PDR_CHECK(fits_region(usage, plan_, region_name), "Placer::place_dynamic",
            strprintf("variant '%s' (%s) does not fit region '%s' (%d slices)",
                      variant_name.c_str(), usage.to_string().c_str(), region_name.c_str(),
                      plan_.region_slices(region_name)));

  PlacedModule p;
  p.name = variant_name;
  p.region = region_name;
  p.col_lo = region.col_lo;
  p.col_hi = region.col_hi;
  p.usage = usage;
  // Bus macros are part of the region's fixed infrastructure; their TBUFs
  // are charged to every variant since each variant's netlist must
  // instantiate the macro ends.
  p.usage.tbufs += static_cast<int>(region.bus_macros.size()) * fabric::kBusMacroWidth;
  p.frames = plan_.region_frames(region_name);
  return p;
}

PlacedModule Placer::place_static(const netlist::Netlist& nl) {
  const ResourceUsage usage = map_netlist(nl);
  const int need = columns_needed(usage, plan_.device());

  // First fit: find `need` consecutive free columns.
  int run_start = -1;
  int run_len = 0;
  int prev = -2;
  for (int c : free_cols_) {
    if (c == prev + 1 && run_len > 0) {
      ++run_len;
    } else {
      run_start = c;
      run_len = 1;
    }
    prev = c;
    if (run_len >= need) break;
  }
  PDR_CHECK(run_len >= need, "Placer::place_static",
            strprintf("no run of %d free columns for static module '%s' (%d columns free)", need,
                      nl.name().c_str(), static_cast<int>(free_cols_.size())));

  PlacedModule p;
  p.name = nl.name();
  p.col_lo = run_start;
  p.col_hi = run_start + need - 1;
  p.usage = usage;
  p.frames = plan_.frame_map().frames_for_clb_range(p.col_lo, p.col_hi);
  for (int c = p.col_lo; c <= p.col_hi; ++c) free_cols_.erase(c);
  return p;
}

int Placer::free_static_columns() const { return static_cast<int>(free_cols_.size()); }

}  // namespace pdr::synth
