// Module placement under the paper's Modular Design rules.
//
// Dynamic module variants are placed into their reconfigurable region
// (all variants of a region cover the region's full frame set — that is
// what makes their partial bitstreams interchangeable). Static modules
// are packed first-fit into the remaining columns.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "fabric/floorplan.hpp"
#include "netlist/netlist.hpp"
#include "synth/map.hpp"

namespace pdr::synth {

/// One placed module.
struct PlacedModule {
  std::string name;
  std::string region;  ///< reconfigurable region name, or "" for static area
  int col_lo = 0;
  int col_hi = 0;
  ResourceUsage usage;
  std::vector<fabric::FrameAddress> frames;  ///< frames its bitstream covers
};

class Placer {
 public:
  explicit Placer(const fabric::Floorplan& plan);

  /// Places a dynamic variant into `region_name`. Verifies the variant
  /// fits the region's resources; the placement covers the whole region
  /// (partial bitstreams of all variants must be interchangeable).
  PlacedModule place_dynamic(const std::string& variant_name, const netlist::Netlist& nl,
                             const std::string& region_name);

  /// Places a static module into free columns (first fit, left to right).
  /// Throws if the static area is exhausted.
  PlacedModule place_static(const netlist::Netlist& nl);

  /// Columns still unallocated.
  int free_static_columns() const;

 private:
  const fabric::Floorplan& plan_;
  std::set<int> free_cols_;
};

}  // namespace pdr::synth
