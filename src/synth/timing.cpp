#include "synth/timing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pdr::synth {

using netlist::PrimitiveKind;

int estimate_logic_levels(const netlist::Netlist& nl) {
  const int luts = nl.count(PrimitiveKind::Lut4);
  const int ffs = std::max(1, nl.count(PrimitiveKind::FlipFlop));
  if (luts == 0) return 0;
  const double cone = static_cast<double>(luts) / ffs + 1.0;
  return 1 + static_cast<int>(std::ceil(std::log2(cone)));
}

TimingEstimate estimate_timing(const netlist::Netlist& nl, const TimingModel& model,
                               bool crosses_bus_macro) {
  PDR_CHECK(model.lut_delay_ns > 0 && model.net_delay_ns >= 0, "estimate_timing",
            "invalid timing model");
  TimingEstimate est;
  est.logic_levels = estimate_logic_levels(nl);

  double path = model.clk_to_out_ns + model.setup_ns;
  path += est.logic_levels * (model.lut_delay_ns + model.net_delay_ns);
  if (nl.count(PrimitiveKind::Bram18) > 0) path = std::max(path, model.bram_access_ns + model.setup_ns);
  if (nl.count(PrimitiveKind::Mult18) > 0)
    path = std::max(path, model.mult_delay_ns + model.clk_to_out_ns + model.setup_ns);
  if (crosses_bus_macro) path += model.bus_macro_ns;

  est.critical_path_ns = path;
  est.fmax_mhz = 1000.0 / path;
  return est;
}

}  // namespace pdr::synth
