// Static timing estimation.
//
// Synthesis reports (and the paper's Table 1 family of comparisons)
// include a maximum clock frequency per module. We estimate it from the
// netlist with the standard pre-P&R heuristic: critical path = levels of
// LUT logic between registers x (LUT delay + average net delay), plus
// fixed clock-to-out / setup terms, derated when the module is placed in
// a reconfigurable region (bus-macro crossings add delay).
#pragma once

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"

namespace pdr::synth {

/// Virtex-II-flavoured delay constants (ns).
struct TimingModel {
  double lut_delay_ns = 0.44;       ///< one 4-input LUT
  double net_delay_ns = 0.90;       ///< average routed net
  double clk_to_out_ns = 0.57;
  double setup_ns = 0.45;
  double bram_access_ns = 2.5;      ///< synchronous BRAM read
  double mult_delay_ns = 4.3;       ///< MULT18X18 combinational
  double bus_macro_ns = 1.2;        ///< one TBUF boundary crossing
};

/// Timing estimate of one module.
struct TimingEstimate {
  int logic_levels = 0;        ///< estimated LUT levels between registers
  double critical_path_ns = 0;
  double fmax_mhz = 0;
};

/// Estimated LUT logic levels: ceil(log2(luts / max(ffs,1) + 1)) + 1,
/// the classic fan-in cone heuristic — more combinational logic per
/// register means deeper cones.
int estimate_logic_levels(const netlist::Netlist& nl);

/// Full estimate for a module; `crosses_bus_macro` adds the boundary
/// penalty reconfigurable modules pay (paper §5 bus macros).
TimingEstimate estimate_timing(const netlist::Netlist& nl, const TimingModel& model = {},
                               bool crosses_bus_macro = false);

}  // namespace pdr::synth
