#include "util/arg_parser.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::util {

namespace {

[[noreturn]] void fail(const std::string& message) { throw Error(message); }

}  // namespace

ArgParser::ArgParser(const char* command, int argc, char** argv,
                     std::initializer_list<FlagSpec> specs, std::size_t positionals_required)
    : command_(command), specs_(specs) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const FlagSpec* spec = spec_of(arg);
    if (spec == nullptr)
      fail("unknown flag '" + arg + "' for '" + command_ + "'" + valid_flags());
    if (spec->takes_value) {
      if (i + 1 >= argc) fail(std::string("flag '") + spec->name + "' needs a value");
      values_.emplace_back(spec->name, argv[++i]);
    } else {
      values_.emplace_back(spec->name, "");
    }
  }
  if (positionals_.size() != positionals_required)
    fail(strprintf("'%s' takes %zu positional argument(s), got %zu", command_.c_str(),
                   positionals_required, positionals_.size()));
}

ArgParser ArgParser::extract(const char* command, int& argc, char** argv,
                             std::initializer_list<FlagSpec> specs) {
  ArgParser parsed(command, std::vector<FlagSpec>(specs));
  int out = 1;  // argv[0] always survives
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const FlagSpec* spec = arg.rfind("--", 0) == 0 ? parsed.spec_of(arg) : nullptr;
    if (spec == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (spec->takes_value) {
      if (i + 1 >= argc) fail(std::string("flag '") + spec->name + "' needs a value");
      parsed.values_.emplace_back(spec->name, argv[++i]);
    } else {
      parsed.values_.emplace_back(spec->name, "");
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return parsed;
}

std::string ArgParser::string_or(const char* name, const std::string& fallback) const {
  const std::string* v = find(name);
  return v == nullptr ? fallback : *v;
}

std::uint64_t ArgParser::uint_or(const char* name, std::uint64_t fallback) const {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (errno != 0 || end == v->c_str() || *end != '\0')
    fail(std::string("flag '") + name + "' needs an unsigned integer, got '" + *v + "'");
  return parsed;
}

double ArgParser::double_or(const char* name, double fallback) const {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v->c_str(), &end);
  if (errno != 0 || end == v->c_str() || *end != '\0')
    fail(std::string("flag '") + name + "' needs a number, got '" + *v + "'");
  return parsed;
}

std::vector<std::string> ArgParser::list_or(const char* name,
                                            std::vector<std::string> fallback) const {
  const std::string* v = find(name);
  if (v == nullptr) return fallback;
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v->size()) {
    const std::size_t comma = v->find(',', start);
    const std::string item = v->substr(start, comma == std::string::npos ? comma : comma - start);
    if (item.empty())
      fail(std::string("flag '") + name + "' has an empty list element in '" + *v + "'");
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

const std::string* ArgParser::find(const char* name) const {
  for (const auto& [flag, value] : values_)
    if (flag == name) return &value;
  return nullptr;
}

const FlagSpec* ArgParser::spec_of(const std::string& arg) const {
  for (const FlagSpec& s : specs_)
    if (arg == s.name) return &s;
  return nullptr;
}

std::string ArgParser::valid_flags() const {
  if (specs_.empty()) return "; it takes no flags";
  std::string out = "; valid flags:";
  for (const FlagSpec& s : specs_) out += std::string(" ") + s.name;
  return out;
}

}  // namespace pdr::util
