// Shared command-line argument parser.
//
// Two modes cover the two kinds of binaries in this repo:
//
//  - strict (ArgParser constructor): every `--flag` must be declared in
//    the command's spec — unknown flags and missing values are errors,
//    not silently skipped; everything else is a positional. This is what
//    `pdrflow <command>` uses.
//  - extracting (ArgParser::extract): recognized flags are consumed and
//    removed from argv, unknown arguments are left in place. This is what
//    the bench binaries use, since google-benchmark rejects flags it does
//    not know and must see the compacted argv afterwards.
//
// Both modes share the same strict value parsing: "12abc" is an error for
// an integer flag, not 12.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace pdr::util {

/// One flag a command accepts.
struct FlagSpec {
  const char* name;  ///< "--out"
  bool takes_value;  ///< consumes the following argv entry
};

class ArgParser {
 public:
  /// Strict mode: parses all of argv[0..argc); throws pdr::Error on any
  /// unknown flag, missing flag value, or positional-count mismatch.
  ArgParser(const char* command, int argc, char** argv, std::initializer_list<FlagSpec> specs,
            std::size_t positionals_required);

  /// Extracting mode: consumes every declared flag from argv (compacting
  /// argv in place and decrementing argc), leaves everything else —
  /// including argv[0] — untouched. Throws only when a declared flag is
  /// present but its value is missing.
  static ArgParser extract(const char* command, int& argc, char** argv,
                           std::initializer_list<FlagSpec> specs);

  bool has(const char* name) const { return find(name) != nullptr; }

  /// Value of a value-taking flag, or nullptr if absent.
  const std::string* value(const char* name) const { return find(name); }

  /// Value of a value-taking flag, or `fallback` if absent.
  std::string string_or(const char* name, const std::string& fallback) const;

  const std::string& positional(std::size_t i) const { return positionals_.at(i); }
  std::size_t positional_count() const { return positionals_.size(); }

  /// Strictly-parsed unsigned integer flag ("12abc" is an error, not 12).
  std::uint64_t uint_or(const char* name, std::uint64_t fallback) const;

  /// Strictly-parsed floating-point flag.
  double double_or(const char* name, double fallback) const;

  /// Comma-separated list value ("a,b,c"); `fallback` when absent.
  std::vector<std::string> list_or(const char* name, std::vector<std::string> fallback) const;

 private:
  ArgParser(const char* command, std::vector<FlagSpec> specs)
      : command_(command), specs_(std::move(specs)) {}

  const std::string* find(const char* name) const;
  std::string valid_flags() const;
  const FlagSpec* spec_of(const std::string& arg) const;

  std::string command_;
  std::vector<FlagSpec> specs_;
  std::vector<std::string> positionals_;
  std::vector<std::pair<std::string, std::string>> values_;
};

}  // namespace pdr::util
