#include "util/error.hpp"

namespace pdr {

void raise(const std::string& where, const std::string& message) {
  throw Error(where + ": " + message);
}

}  // namespace pdr
