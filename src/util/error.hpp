// Error type and checking macros shared by all pdrflow modules.
#pragma once

#include <stdexcept>
#include <string>

namespace pdr {

/// Exception thrown for all recoverable pdrflow errors (bad input graphs,
/// malformed bitstreams, infeasible placements, parse failures, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Throws pdr::Error with `message` prefixed by `where`.
[[noreturn]] void raise(const std::string& where, const std::string& message);

}  // namespace pdr

/// Checks an invariant on user-supplied data; throws pdr::Error on failure.
#define PDR_CHECK(cond, where, msg)            \
  do {                                         \
    if (!(cond)) ::pdr::raise((where), (msg)); \
  } while (false)
