#include "util/interner.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/error.hpp"

namespace pdr::util {

namespace {
/// Arena block granularity; symbols longer than this get a dedicated block.
constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
}  // namespace

Interner::Interner() { intern(""); }

Interner::Interner(const Interner& other) { assign(other); }

Interner& Interner::operator=(const Interner& other) {
  if (this == &other) return *this;
  assign(other);
  return *this;
}

void Interner::assign(const Interner& other) {
  spans_.clear();
  chunks_.clear();
  chunk_used_ = 0;
  chunk_cap_ = 0;
  index_.clear();
  spans_.reserve(other.spans_.size());
  index_.reserve(other.spans_.size());
  // Rebuild the index from storage: appended symbols *are* findable in
  // the copy, and emplace keeps the first id when texts collide.
  for (SymbolId id = 0; id < other.spans_.size(); ++id) {
    const std::string_view s = other.name(id);
    const char* data = store(s);
    spans_.push_back({data, static_cast<std::uint32_t>(s.size())});
    index_.emplace(std::string_view(data, s.size()), id);
  }
}

const char* Interner::store(std::string_view s) {
  if (chunks_.empty() || s.size() > chunk_cap_ - chunk_used_) {
    const std::size_t cap = std::max(kChunkBytes, s.size());
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  if (!s.empty()) std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  return dst;
}

SymbolId Interner::intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  PDR_CHECK(s.size() <= std::numeric_limits<std::uint32_t>::max(), "Interner::intern",
            "symbol too long");
  const SymbolId id = static_cast<SymbolId>(spans_.size());
  const char* data = store(s);
  spans_.push_back({data, static_cast<std::uint32_t>(s.size())});
  index_.emplace(std::string_view(data, s.size()), id);
  return id;
}

SymbolId Interner::append(std::string_view s) {
  PDR_CHECK(s.size() <= std::numeric_limits<std::uint32_t>::max(), "Interner::append",
            "symbol too long");
  const SymbolId id = static_cast<SymbolId>(spans_.size());
  const char* data = store(s);
  spans_.push_back({data, static_cast<std::uint32_t>(s.size())});
  return id;
}

SymbolId Interner::find(std::string_view s) const {
  const auto it = index_.find(s);
  return it == index_.end() ? kNoSymbol : it->second;
}

std::string_view Interner::name(SymbolId id) const {
  PDR_CHECK(id < spans_.size(), "Interner::name", "unknown symbol id");
  return {spans_[id].data, spans_[id].len};
}

}  // namespace pdr::util
