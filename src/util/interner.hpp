// String interner: stable SymbolId <-> std::string_view mapping.
//
// The schedule core (aaa::Schedule) stores every name — resources,
// variants, modules, operation labels — as a SymbolId into one per-run
// Interner instead of per-item heap std::strings. Interning turns the
// scheduler hot path's string copies and map hashing into integer array
// indexing; names are resolved back to text only at the rendering
// boundary (to_string / gantt / to_csv / codegen / lint / verify).
//
// Guarantees:
//  - ids are dense and stable: the n-th distinct string interned gets id
//    n-1... starting after the reserved empty symbol (id 0), and keeps it
//    for the interner's lifetime, across any internal rehash;
//  - name() views stay valid for the interner's lifetime (characters
//    live in append-only arena chunks whose addresses never move);
//  - seeding: interning a resource set first (e.g. the architecture
//    graph's operators and media, in declaration order) makes those ids
//    dense array indices — SymbolId-indexed vectors replace
//    string-keyed maps.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pdr::util {

using SymbolId = std::uint32_t;

/// Sentinel: "no symbol" (distinct from the empty string, which interns
/// as kEmptySymbol).
inline constexpr SymbolId kNoSymbol = static_cast<SymbolId>(-1);

/// The empty string's id: every Interner interns "" at construction.
inline constexpr SymbolId kEmptySymbol = 0;

class Interner {
 public:
  Interner();

  // Copies rebuild the index against the copy's own arena — the
  // string_view keys must point into *this* storage, not the source's.
  Interner(const Interner& other);
  Interner& operator=(const Interner& other);
  // Moves keep arena chunk addresses, so views and the index stay valid.
  Interner(Interner&&) noexcept = default;
  Interner& operator=(Interner&&) noexcept = default;

  /// Id of `s`, interning it first if unseen. Ids are assigned densely
  /// in first-intern order.
  SymbolId intern(std::string_view s);

  /// Appends `s` as a fresh symbol without consulting or updating the
  /// find() index — the fast path for strings the caller knows are
  /// unique and never looked up by name (e.g. operation labels, which
  /// the algorithm graph validates as duplicate-free). The id is dense
  /// like any other and name() works as usual, but find() on this
  /// interner will not see it. Copies rebuild the index from storage,
  /// so appended symbols *are* findable in a copy (first id wins if the
  /// same text was also interned).
  SymbolId append(std::string_view s);

  /// Id of `s` if already interned, kNoSymbol otherwise. Never mutates.
  SymbolId find(std::string_view s) const;

  /// The string behind `id`; valid for the interner's lifetime. `id`
  /// must come from this interner (checked).
  std::string_view name(SymbolId id) const;

  /// Number of distinct symbols (including the reserved empty symbol).
  std::size_t size() const { return spans_.size(); }

 private:
  struct Span {
    const char* data;
    std::uint32_t len;
  };

  /// Copies `s` into the arena (growing it as needed) and returns the
  /// stable address of the copy.
  const char* store(std::string_view s);
  /// Rebuilds this interner's arena and index from `other`'s symbols.
  void assign(const Interner& other);

  // Symbol text lives in append-only chunks: a million short names cost a
  // few hundred block allocations (and frees) instead of one heap string
  // per symbol, which keeps schedule construction *and* destruction off
  // the allocator in the scheduler benchmarks.
  std::vector<Span> spans_;                      ///< id -> view into chunks_
  std::vector<std::unique_ptr<char[]>> chunks_;  ///< arena blocks; addresses never move
  std::size_t chunk_used_ = 0;                   ///< bytes consumed in chunks_.back()
  std::size_t chunk_cap_ = 0;                    ///< capacity of chunks_.back()
  std::unordered_map<std::string_view, SymbolId> index_;  ///< views into chunks_
};

}  // namespace pdr::util
