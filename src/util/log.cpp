#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pdr {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << tag << ": " << message << "\n";
}

}  // namespace pdr
