// Minimal leveled logger.
//
// Logging is off (Warn) by default so tests and benchmarks stay quiet;
// examples turn on Info to narrate the design flow.
#pragma once

#include <sstream>
#include <string>

namespace pdr {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Returns the process-wide minimum level actually emitted.
LogLevel log_level();

/// Sets the process-wide minimum level.
void set_log_level(LogLevel level);

/// Emits one line at `level` with a "[level] tag: " prefix to stderr.
void log_line(LogLevel level, const std::string& tag, const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  ~LogStream() { log_line(level_, tag_, out_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream out_;
};

}  // namespace detail

}  // namespace pdr

#define PDR_LOG(level, tag) ::pdr::detail::LogStream((level), (tag))
#define PDR_INFO(tag) PDR_LOG(::pdr::LogLevel::Info, (tag))
#define PDR_DEBUG(tag) PDR_LOG(::pdr::LogLevel::Debug, (tag))
#define PDR_WARN(tag) PDR_LOG(::pdr::LogLevel::Warn, (tag))
