#include "util/rng.hpp"

#include <cmath>

namespace pdr {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

double Rng::normal() {
  // Box-Muller; regenerate u1 until nonzero so log() is finite.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

Rng Rng::fork() { return Rng((*this)() ^ 0xa5a5a5a5deadbeefull); }

}  // namespace pdr
