// Deterministic pseudo-random number generation.
//
// All stochastic pieces of pdrflow (workload generators, SNR traces,
// synthetic frame payloads) draw from this xoshiro256** generator so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace pdr {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can be used
/// with <random> distributions, but the helpers below avoid libstdc++
/// distribution implementation dependence for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

  /// Forks an independent stream (distinct seed derived from this one).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace pdr
