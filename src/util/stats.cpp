#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pdr {

void Stats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Stats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Stats::stddev() const { return std::sqrt(variance()); }

std::optional<double> Stats::opt_stddev() const {
  return n_ < 2 ? std::nullopt : std::optional<double>(stddev());
}

}  // namespace pdr
