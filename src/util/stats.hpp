// Streaming statistics accumulator (Welford), used by the multi-seed
// benchmark sweeps to report mean/stddev without storing samples.
#pragma once

#include <cstdint>

namespace pdr {

class Stats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pdr
