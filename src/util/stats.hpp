// Streaming statistics accumulator (Welford), used by the multi-seed
// benchmark sweeps to report mean/stddev without storing samples.
#pragma once

#include <cstdint>
#include <optional>

namespace pdr {

class Stats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  // The plain accessors report 0.0 for an empty accumulator — a value
  // indistinguishable from a real all-zero sample set. Consumers that
  // serialize or display aggregates must use the optional accessors (or
  // gate on count()) so an empty accumulator never masquerades as data.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Empty-state-explicit accessors: nullopt when no sample was added.
  std::optional<double> opt_mean() const { return n_ ? std::optional<double>(mean_) : std::nullopt; }
  std::optional<double> opt_min() const { return n_ ? std::optional<double>(min_) : std::nullopt; }
  std::optional<double> opt_max() const { return n_ ? std::optional<double>(max_) : std::nullopt; }
  /// nullopt below 2 samples (a single sample has no spread to report).
  std::optional<double> opt_stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pdr
