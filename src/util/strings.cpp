#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pdr {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  if (bytes < 1024) return strprintf("%llu B", static_cast<unsigned long long>(bytes));
  const double kib = static_cast<double>(bytes) / 1024.0;
  if (kib < 1024.0) return strprintf("%.1f KiB", kib);
  return strprintf("%.2f MiB", kib / 1024.0);
}

std::string identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) out.insert(out.begin(), 'x');
  return out;
}

}  // namespace pdr
