// Small string helpers used by the constraints parser, code generators and
// report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdr {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "12.3 KiB" / "4.0 MiB" style human-readable byte counts.
std::string human_bytes(std::uint64_t bytes);

/// Sanitizes an arbitrary name into a VHDL/C identifier (alnum + '_').
std::string identifier(std::string_view name);

}  // namespace pdr
