#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PDR_CHECK(!header_.empty(), "Table", "header must have at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  PDR_CHECK(!rows_.empty(), "Table::add", "call row() before add()");
  PDR_CHECK(rows_.back().size() < header_.size(), "Table::add", "row has more cells than header columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(std::int64_t v) { return add(strprintf("%lld", static_cast<long long>(v))); }

Table& Table::add(std::uint64_t v) { return add(strprintf("%llu", static_cast<unsigned long long>(v))); }

Table& Table::add(double v, int decimals) { return add(strprintf("%.*f", decimals, v)); }

std::string Table::to_markdown() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = render_row(header_);
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += std::string(width[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& r : rows_) out += render_row(r);
  return out;
}

std::string Table::to_csv() const {
  auto render = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      const bool quote = cells[c].find(',') != std::string::npos;
      line += quote ? "\"" + cells[c] + "\"" : cells[c];
    }
    return line + "\n";
  };
  std::string out = render(header_);
  for (const auto& r : rows_) out += render(r);
  return out;
}

void Table::print() const { std::cout << to_markdown(); }

}  // namespace pdr
