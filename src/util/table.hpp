// Report table writer.
//
// Every benchmark harness prints the rows of the paper table/figure it
// regenerates. Table collects rows of heterogeneous cells and renders them
// as an aligned ASCII/markdown table or as CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdr {

/// A simple column-aligned table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(std::string cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  /// Doubles are rendered with `decimals` digits after the point.
  Table& add(double v, int decimals = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& at(std::size_t r) const { return rows_.at(r); }

  /// Markdown-style rendering with aligned pipes.
  std::string to_markdown() const;

  /// Comma-separated rendering (cells containing commas are quoted).
  std::string to_csv() const;

  /// Prints markdown rendering to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdr
