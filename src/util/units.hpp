// Time and size units used throughout pdrflow.
//
// Simulated time is carried as signed 64-bit nanoseconds (`TimeNs`). At
// nanosecond resolution a signed 64-bit counter covers ~292 years of
// simulated time, far beyond any schedule or transmitter run we model.
#pragma once

#include <cstdint>

namespace pdr {

/// Simulated time in nanoseconds.
using TimeNs = std::int64_t;

/// Sizes in bytes.
using Bytes = std::uint64_t;

namespace literals {

constexpr TimeNs operator""_ns(unsigned long long v) { return static_cast<TimeNs>(v); }
constexpr TimeNs operator""_us(unsigned long long v) { return static_cast<TimeNs>(v) * 1000; }
constexpr TimeNs operator""_ms(unsigned long long v) { return static_cast<TimeNs>(v) * 1000 * 1000; }
constexpr TimeNs operator""_s(unsigned long long v) { return static_cast<TimeNs>(v) * 1000 * 1000 * 1000; }

constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<Bytes>(v) * 1024; }
constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<Bytes>(v) * 1024 * 1024; }

}  // namespace literals

/// Converts nanoseconds to (fractional) milliseconds for reporting.
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }

/// Converts nanoseconds to (fractional) microseconds for reporting.
constexpr double to_us(TimeNs t) { return static_cast<double>(t) / 1e3; }

/// Time to transfer `bytes` over a link of `bytes_per_second`, rounded up
/// to a whole nanosecond so repeated transfers never under-account.
constexpr TimeNs transfer_time_ns(Bytes bytes, double bytes_per_second) {
  if (bytes_per_second <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_second;
  const auto whole = static_cast<TimeNs>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

}  // namespace pdr
