// Copyable memoization flag for idempotent const validation.
//
// Graph classes expose `validate() const` that re-checks structural
// invariants from scratch. Schedulers call it defensively at the top of
// every run, so the explorer's sweep over thousands of design points
// re-validated the same unmutated graph thousands of times. The flag
// caches "already validated": set() after a successful pass, clear() in
// every mutator. Stored atomically so concurrent validate() calls on a
// shared const graph (the parallel explorer) are race-free — validation
// is idempotent, so the worst case is two threads both doing the work
// once.
#pragma once

#include <atomic>

namespace pdr::util {

class ValidatedFlag {
 public:
  ValidatedFlag() = default;
  // Copies/moves transfer the cached verdict: a copy of a validated
  // graph starts validated, which is sound because copying preserves
  // every invariant validate() checks.
  ValidatedFlag(const ValidatedFlag& other)
      : ok_(other.ok_.load(std::memory_order_relaxed)) {}
  ValidatedFlag& operator=(const ValidatedFlag& other) {
    ok_.store(other.ok_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  bool test() const { return ok_.load(std::memory_order_acquire); }
  void set() const { ok_.store(true, std::memory_order_release); }
  void clear() { ok_.store(false, std::memory_order_relaxed); }

 private:
  mutable std::atomic<bool> ok_{false};
};

}  // namespace pdr::util
