#include "verify/verify.hpp"

#include <algorithm>
#include <utility>

#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "lint/lint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::verify {

namespace {

using aaa::ItemKind;
using aaa::ScheduledItem;
using lint::Rule;
using lint::Severity;

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

std::string span(const aaa::Schedule& s, std::size_t i) {
  return strprintf("'%s' [%lld..%lld ns]", s.label(i).c_str(), static_cast<long long>(s.start(i)),
                   static_cast<long long>(s.end(i)));
}

Violation make_pair_violation(Rule rule, Severity severity, std::string resource,
                              const ScheduledItem& first, const ScheduledItem& second,
                              std::string message, std::string hint) {
  Violation v;
  v.rule = rule;
  v.severity = severity;
  v.resource = std::move(resource);
  v.first = first;
  v.second = second;
  v.pair = true;
  v.message = std::move(message);
  v.hint = std::move(hint);
  return v;
}

Violation make_single_violation(Rule rule, Severity severity, std::string resource,
                                const ScheduledItem& item, std::string message,
                                std::string hint) {
  Violation v;
  v.rule = rule;
  v.severity = severity;
  v.resource = std::move(resource);
  v.first = item;
  v.pair = false;
  v.message = std::move(message);
  v.hint = std::move(hint);
  return v;
}

/// Sweep-line overlap detection over one resource's timeline: sort by
/// start and test each item against the furthest-reaching earlier item.
/// Tracking the max-end item (not merely the previous one) catches
/// overlaps an adjacent-pair scan misses — with A[0,10) B[1,2) C[3,4),
/// B and C each collide with A, never with each other.
template <typename OnOverlap>
void sweep_overlaps(const aaa::Schedule& s, std::vector<std::size_t> items,
                    OnOverlap&& on_overlap) {
  std::stable_sort(items.begin(), items.end(), [&](std::size_t a, std::size_t b) {
    if (s.start(a) != s.start(b)) return s.start(a) < s.start(b);
    return s.end(a) < s.end(b);
  });
  std::size_t reach = kNoItem;
  for (const std::size_t item : items) {
    if (reach != kNoItem && std::max(s.start(reach), s.start(item)) < std::min(s.end(reach), s.end(item)))
      on_overlap(reach, item);
    if (reach == kNoItem || s.end(item) > s.end(reach)) reach = item;
  }
}

/// The constraints-file region name an FpgaRegion operator maps to (the
/// floorplan region when set, the operator name otherwise).
const std::string& constraint_region_name(const aaa::OperatorNode& op) {
  return op.region.empty() ? op.name : op.region;
}

struct Analyzer {
  const aaa::Schedule& schedule;
  const aaa::AlgorithmGraph& algorithm;
  const aaa::ArchitectureGraph& architecture;
  const VerifyOptions& options;
  Certificate cert;

  // Timelines, grouped once up front. Per-resource timelines are direct
  // SymbolId-indexed arrays filled in one pass over the schedule columns —
  // no string-keyed map rebuild. `resources_by_name` lists the occupied
  // symbols in name order, so violations are still emitted in the order
  // the old name-keyed map iterated.
  std::vector<std::vector<std::size_t>> per_resource;  ///< by resource SymbolId
  std::vector<util::SymbolId> resources_by_name;       ///< occupied resources, name-sorted
  std::vector<std::size_t> reconfigs;                  ///< port timeline
  std::vector<std::size_t> compute_of;                 ///< by algorithm NodeId
  std::map<graph::EdgeId, std::vector<std::size_t>> transfers_of;

  const std::vector<std::size_t>* timeline(std::string_view resource) const {
    const util::SymbolId sym = schedule.symbols.find(resource);
    if (sym == util::kNoSymbol || sym >= per_resource.size() || per_resource[sym].empty())
      return nullptr;
    return &per_resource[sym];
  }

  void group() {
    per_resource.assign(schedule.symbols.size(), {});
    compute_of.assign(algorithm.digraph().node_capacity(), kNoItem);
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      per_resource[schedule.resource_sym(i)].push_back(i);
      if (schedule.kind(i) == ItemKind::Reconfig) reconfigs.push_back(i);
      if (schedule.kind(i) == ItemKind::Compute && schedule.op(i) < compute_of.size())
        compute_of[schedule.op(i)] = i;
      if (schedule.kind(i) == ItemKind::Transfer && schedule.edge(i) != graph::kNoEdge)
        transfers_of[schedule.edge(i)].push_back(i);
    }
    for (util::SymbolId sym = 0; sym < per_resource.size(); ++sym)
      if (!per_resource[sym].empty()) resources_by_name.push_back(sym);
    std::sort(resources_by_name.begin(), resources_by_name.end(),
              [&](util::SymbolId a, util::SymbolId b) {
                return schedule.symbols.name(a) < schedule.symbols.name(b);
              });
    for (const util::SymbolId sym : resources_by_name) {
      auto& list = per_resource[sym];
      std::stable_sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
        if (schedule.start(a) != schedule.start(b)) return schedule.start(a) < schedule.start(b);
        return schedule.end(a) < schedule.end(b);
      });
    }
  }

  /// PDR100 / PDR101 / PDR107 on operators, PDR104 on media.
  void check_resource_overlaps() {
    for (const util::SymbolId sym : resources_by_name) {
      const std::string resource(schedule.symbols.name(sym));
      const auto node = architecture.find(resource);
      const bool on_operator = node.has_value() && architecture.is_operator(*node);
      sweep_overlaps(schedule, per_resource[sym], [&](std::size_t first, std::size_t second) {
        if (schedule.kind(first) == ItemKind::Compute &&
            schedule.kind(second) == ItemKind::Reconfig) {
          cert.violations.push_back(make_pair_violation(
              Rule::ReconfigDuringExecute, Severity::Error, resource, schedule.item(first),
              schedule.item(second),
              "reconfiguration " + span(schedule, second) + " rewrites region '" + resource +
                  "' while " + span(schedule, first) + " is still executing in it",
              "hoist the load no earlier than the instant the region is idle"));
        } else if (schedule.kind(first) == ItemKind::Reconfig &&
                   schedule.kind(second) == ItemKind::Compute) {
          cert.violations.push_back(make_pair_violation(
              Rule::ExecuteDuringReconfig, Severity::Error, resource, schedule.item(first),
              schedule.item(second),
              "operation " + span(schedule, second) + " starts while region '" + resource +
                  "' is still being rewritten by " + span(schedule, first),
              "delay the operation until the load completes"));
        } else if (schedule.kind(first) == ItemKind::Reconfig &&
                   schedule.kind(second) == ItemKind::Reconfig) {
          // Same-region load overlap is a port double-booking; the port
          // sweep below owns that witness (PDR105).
        } else if (on_operator) {
          cert.violations.push_back(make_pair_violation(
              Rule::OperatorOverlap, Severity::Error, resource, schedule.item(first),
              schedule.item(second),
              "items " + span(schedule, first) + " and " + span(schedule, second) +
                  " overlap on operator '" + resource + "'",
              "operators have no internal parallelism (paper section 3)"));
        } else {
          cert.violations.push_back(make_pair_violation(
              Rule::MediumTransferOverlap, Severity::Error, resource, schedule.item(first),
              schedule.item(second),
              "transfers " + span(schedule, first) + " and " + span(schedule, second) +
                  " overlap on exclusive medium '" + resource + "'",
              "media carry one transfer at a time; serialize or reroute"));
        }
      });
    }
  }

  /// PDR105: every load in the schedule shares the one configuration port.
  void check_port_bookings() {
    sweep_overlaps(schedule, reconfigs, [&](std::size_t first, std::size_t second) {
      cert.violations.push_back(make_pair_violation(
          Rule::PortDoubleBooking, Severity::Error, "configuration port", schedule.item(first),
          schedule.item(second),
          "loads " + span(schedule, first) + " (region '" + std::string(schedule.resource(first)) +
              "') and " + span(schedule, second) + " (region '" +
              std::string(schedule.resource(second)) + "') overlap on the configuration port",
          "the device has one ICAP/SelectMAP port; loads must serialize"));
    });
    std::vector<std::size_t> sorted = reconfigs;
    std::stable_sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      if (schedule.start(a) != schedule.start(b)) return schedule.start(a) < schedule.start(b);
      if (schedule.end(a) != schedule.end(b)) return schedule.end(a) < schedule.end(b);
      return schedule.resource(a) < schedule.resource(b);
    });
    for (const std::size_t i : sorted) cert.port_bookings.push_back(schedule.item(i));
  }

  /// PDR102 / PDR103 / PDR108 plus the residency timeline.
  void check_residency() {
    for (aaa::NodeId w : architecture.operators_of_kind(aaa::OperatorKind::FpgaRegion)) {
      const aaa::OperatorNode& region_op = architecture.op(w);
      const std::string& rname = region_op.name;
      std::string loaded;
      TimeNs loaded_from = 0;
      std::size_t loaded_by = kNoItem;
      if (const auto pre = options.preloaded.find(rname); pre != options.preloaded.end())
        loaded = pre->second;

      const std::vector<std::size_t>* list = timeline(rname);
      const std::vector<std::size_t> empty;
      for (const std::size_t i : list == nullptr ? empty : *list) {
        if (schedule.kind(i) == ItemKind::Reconfig) {
          const std::string module(schedule.module_name(i));
          if (!loaded.empty())
            cert.residencies.push_back(
                ResidencyInterval{rname, loaded, loaded_from, schedule.start(i)});
          if (options.constraints != nullptr) {
            const aaa::ModuleConstraint* mc = options.constraints->find_module(module);
            if (mc != nullptr && mc->region != constraint_region_name(region_op))
              cert.violations.push_back(make_single_violation(
                  Rule::ForeignModuleLoad, Severity::Error, rname, schedule.item(i),
                  "load " + span(schedule, i) + " configures module '" + module +
                      "' into region '" + rname + "', but the constraints declare it for region '" +
                      mc->region + "'",
                  "a partial bitstream only fits the region it was implemented for"));
          }
          loaded = module;
          loaded_from = schedule.end(i);
          loaded_by = i;
        } else if (schedule.kind(i) == ItemKind::Compute &&
                   schedule.variant_sym(i) != util::kEmptySymbol) {
          const std::string variant(schedule.variant(i));
          if (loaded.empty()) {
            cert.violations.push_back(make_single_violation(
                Rule::UseBeforeConfigure, Severity::Error, rname, schedule.item(i),
                "operation " + span(schedule, i) + " executes variant '" + variant +
                    "' but region '" + rname + "' was never configured",
                "schedule a load (or declare the module preloaded) before first use"));
          } else if (variant != loaded) {
            std::string message = "operation " + span(schedule, i) + " needs variant '" + variant +
                                  "' but region '" + rname + "' holds module '" + loaded + "'";
            if (loaded_by != kNoItem) message += ", resident since " + span(schedule, loaded_by);
            Violation v =
                loaded_by != kNoItem
                    ? make_pair_violation(Rule::StaleModuleExecution, Severity::Error, rname,
                                          schedule.item(loaded_by), schedule.item(i),
                                          std::move(message),
                                          "reconfigure the region before the operation starts")
                    : make_single_violation(Rule::StaleModuleExecution, Severity::Error, rname,
                                            schedule.item(i), std::move(message),
                                            "reconfigure the region before the operation starts");
            cert.violations.push_back(std::move(v));
          }
        }
      }
      if (!loaded.empty()) {
        TimeNs horizon = std::max(schedule.makespan, loaded_from);
        cert.residencies.push_back(ResidencyInterval{rname, loaded, loaded_from, horizon});
      }
    }
  }

  /// PDR106: data produced for a dependency sits in an endpoint region's
  /// buffers while that region's frames are rewritten. The executive
  /// keeps those buffers in the static part, so this certifies as a
  /// warning — but the witness documents exactly which load the data must
  /// survive.
  void check_data_crossings() {
    const auto& g = algorithm.digraph();
    for (graph::EdgeId e : g.edge_ids()) {
      const graph::NodeId pn = g.edge_from(e);
      const graph::NodeId cn = g.edge_to(e);
      const std::size_t producer = pn < compute_of.size() ? compute_of[pn] : kNoItem;
      const std::size_t consumer = cn < compute_of.size() ? compute_of[cn] : kNoItem;
      if (producer == kNoItem || consumer == kNoItem) continue;

      // Data leaves the producer's region when its first transfer hop
      // starts and reaches the consumer's region when the last hop ends;
      // same-operator dependencies never leave the region.
      TimeNs departure = schedule.start(consumer);
      TimeNs arrival = schedule.end(producer);
      if (const auto tf = transfers_of.find(e); tf != transfers_of.end()) {
        for (const std::size_t hop : tf->second) {
          departure = std::min(departure, schedule.start(hop));
          arrival = std::max(arrival, schedule.end(hop));
        }
      }

      const auto region_kind = [&](std::string_view resource) {
        const auto node = architecture.find(std::string(resource));
        return node.has_value() && architecture.is_operator(*node) &&
               architecture.op(*node).kind == aaa::OperatorKind::FpgaRegion;
      };

      // Producer side: output lingers in [producer.end, departure).
      if (region_kind(schedule.resource(producer))) {
        for (const std::size_t load : reconfigs) {
          if (schedule.resource_sym(load) != schedule.resource_sym(producer)) continue;
          if (std::max(schedule.start(load), schedule.end(producer)) >=
              std::min(schedule.end(load), departure))
            continue;
          const std::string rname(schedule.resource(producer));
          cert.violations.push_back(make_pair_violation(
              Rule::DataCrossesReconfig, Severity::Warning, rname, schedule.item(producer),
              schedule.item(load),
              "output of " + span(schedule, producer) + " for '" + g[cn].name +
                  "' is still in region '" + rname + "' when load " + span(schedule, load) +
                  " rewrites it",
              "the executive must buffer the edge in the static part across the load"));
        }
      }

      // Consumer side: input waits in [arrival, consumer.start). The load
      // that brings in the consumer's own variant is the normal on-demand
      // pattern; only a load of some *other* module displaces the data.
      if (region_kind(schedule.resource(consumer))) {
        for (const std::size_t load : reconfigs) {
          if (schedule.resource_sym(load) != schedule.resource_sym(consumer)) continue;
          if (schedule.variant_sym(consumer) != util::kEmptySymbol &&
              schedule.module_sym(load) == schedule.variant_sym(consumer))
            continue;
          if (std::max(schedule.start(load), arrival) >=
              std::min(schedule.end(load), schedule.start(consumer)))
            continue;
          const std::string rname(schedule.resource(consumer));
          cert.violations.push_back(make_pair_violation(
              Rule::DataCrossesReconfig, Severity::Warning, rname, schedule.item(load),
              schedule.item(consumer),
              "input of " + span(schedule, consumer) + " from '" + g[pn].name +
                  "' arrives in region '" + rname + "' before load " + span(schedule, load) +
                  " rewrites it",
              "the executive must buffer the edge in the static part across the load"));
        }
      }
    }
  }
};

}  // namespace

TimeNs Violation::overlap_from() const {
  return pair ? std::max(first.start, second.start) : first.start;
}

TimeNs Violation::overlap_to() const {
  return pair ? std::min(first.end, second.end) : first.end;
}

std::string Violation::to_string() const {
  return strprintf("%s [%s]: %s", lint::rule_id(rule), resource.c_str(), message.c_str());
}

bool Certificate::certified() const { return error_count() == 0; }

std::size_t Certificate::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [](const Violation& v) { return v.severity == Severity::Error; }));
}

std::string Certificate::first_error() const {
  for (const auto& v : violations)
    if (v.severity == Severity::Error) return v.to_string();
  return "";
}

lint::Report Certificate::to_report() const {
  lint::Report report;
  for (const auto& v : violations) {
    const std::string where =
        v.resource == "configuration port" ? v.resource : "resource " + v.resource;
    report.add(v.rule, v.severity, where, v.message, v.hint);
  }
  return report;
}

std::map<std::string, std::vector<std::string>> Certificate::expected_loads() const {
  std::map<std::string, std::vector<std::string>> loads;
  for (const auto& booking : port_bookings) loads[booking.resource].push_back(booking.module);
  return loads;
}

std::string Certificate::summary() const {
  if (!certified()) return strprintf("REJECTED (%zu errors): ", error_count()) + first_error();
  return strprintf("certified: %zu residency intervals, %zu port bookings, %zu warning(s)",
                   residencies.size(), port_bookings.size(),
                   violations.size() - error_count());
}

Certificate verify_schedule(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
                            const aaa::ArchitectureGraph& architecture,
                            const VerifyOptions& options) {
  Analyzer analyzer{schedule, algorithm, architecture, options, {}, {}, {}, {}, {}, {}};
  analyzer.group();
  analyzer.check_resource_overlaps();
  analyzer.check_port_bookings();
  analyzer.check_residency();
  analyzer.check_data_crossings();
  return std::move(analyzer.cert);
}

lint::Report deep_check_text(const std::string& text) {
  if (lint::sniff_input(text) == lint::InputKind::Constraints)
    return lint::check_constraints_text(text);

  aaa::Project project;
  try {
    project = aaa::parse_project(text);
  } catch (const Error& e) {
    lint::Report report;
    report.add(Rule::ParseError, Severity::Error, "project file",
               std::string("parse failed: ") + e.what(), "");
    return report;
  }

  lint::Report report;
  try {
    const aaa::Adequation adequation(project.algorithm, project.architecture,
                                     project.durations);
    const aaa::Schedule schedule = adequation.run();
    report.merge(lint::check_schedule(schedule, project.algorithm, project.architecture));
    report.merge(
        verify_schedule(schedule, project.algorithm, project.architecture).to_report());
    const aaa::Executive executive =
        aaa::generate_executive(schedule, project.algorithm, project.architecture);
    report.merge(lint::check_executive(executive));
  } catch (const Error& e) {
    report.add(Rule::ParseError, Severity::Error, "adequation",
               std::string("adequation failed: ") + e.what(),
               "every operation needs a feasible operator and a duration entry");
  }
  return report;
}

}  // namespace pdr::verify
