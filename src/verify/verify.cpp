#include "verify/verify.hpp"

#include <algorithm>
#include <utility>

#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "lint/lint.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pdr::verify {

namespace {

using aaa::ItemKind;
using aaa::ScheduledItem;
using lint::Rule;
using lint::Severity;

std::string span(const ScheduledItem& item) {
  return strprintf("'%s' [%lld..%lld ns]", item.label.c_str(),
                   static_cast<long long>(item.start), static_cast<long long>(item.end));
}

bool overlaps(const ScheduledItem& a, const ScheduledItem& b) {
  return std::max(a.start, b.start) < std::min(a.end, b.end);
}

Violation make_pair_violation(Rule rule, Severity severity, std::string resource,
                              const ScheduledItem& first, const ScheduledItem& second,
                              std::string message, std::string hint) {
  Violation v;
  v.rule = rule;
  v.severity = severity;
  v.resource = std::move(resource);
  v.first = first;
  v.second = second;
  v.pair = true;
  v.message = std::move(message);
  v.hint = std::move(hint);
  return v;
}

Violation make_single_violation(Rule rule, Severity severity, std::string resource,
                                const ScheduledItem& item, std::string message,
                                std::string hint) {
  Violation v;
  v.rule = rule;
  v.severity = severity;
  v.resource = std::move(resource);
  v.first = item;
  v.pair = false;
  v.message = std::move(message);
  v.hint = std::move(hint);
  return v;
}

/// Sweep-line overlap detection over one resource's timeline: sort by
/// start and test each item against the furthest-reaching earlier item.
/// Tracking the max-end item (not merely the previous one) catches
/// overlaps an adjacent-pair scan misses — with A[0,10) B[1,2) C[3,4),
/// B and C each collide with A, never with each other.
template <typename OnOverlap>
void sweep_overlaps(std::vector<const ScheduledItem*> items, OnOverlap&& on_overlap) {
  std::stable_sort(items.begin(), items.end(),
                   [](const ScheduledItem* a, const ScheduledItem* b) {
                     if (a->start != b->start) return a->start < b->start;
                     return a->end < b->end;
                   });
  const ScheduledItem* reach = nullptr;
  for (const ScheduledItem* item : items) {
    if (reach != nullptr && overlaps(*reach, *item)) on_overlap(*reach, *item);
    if (reach == nullptr || item->end > reach->end) reach = item;
  }
}

/// The constraints-file region name an FpgaRegion operator maps to (the
/// floorplan region when set, the operator name otherwise).
const std::string& constraint_region_name(const aaa::OperatorNode& op) {
  return op.region.empty() ? op.name : op.region;
}

struct Analyzer {
  const aaa::Schedule& schedule;
  const aaa::AlgorithmGraph& algorithm;
  const aaa::ArchitectureGraph& architecture;
  const VerifyOptions& options;
  Certificate cert;

  // Timelines, grouped once up front.
  std::map<std::string, std::vector<const ScheduledItem*>> per_resource;
  std::vector<const ScheduledItem*> reconfigs;  ///< port timeline
  std::map<graph::NodeId, const ScheduledItem*> compute_of;
  std::map<graph::EdgeId, std::vector<const ScheduledItem*>> transfers_of;

  void group() {
    for (const auto& item : schedule.items) {
      per_resource[item.resource].push_back(&item);
      if (item.kind == ItemKind::Reconfig) reconfigs.push_back(&item);
      if (item.kind == ItemKind::Compute) compute_of[item.op] = &item;
      if (item.kind == ItemKind::Transfer && item.edge != graph::kNoEdge)
        transfers_of[item.edge].push_back(&item);
    }
    for (auto& [resource, list] : per_resource)
      std::stable_sort(list.begin(), list.end(),
                       [](const ScheduledItem* a, const ScheduledItem* b) {
                         if (a->start != b->start) return a->start < b->start;
                         return a->end < b->end;
                       });
  }

  /// PDR100 / PDR101 / PDR107 on operators, PDR104 on media.
  void check_resource_overlaps() {
    for (auto& [resource, list] : per_resource) {
      const auto node = architecture.find(resource);
      const bool on_operator = node.has_value() && architecture.is_operator(*node);
      sweep_overlaps(list, [&](const ScheduledItem& first, const ScheduledItem& second) {
        if (first.kind == ItemKind::Compute && second.kind == ItemKind::Reconfig) {
          cert.violations.push_back(make_pair_violation(
              Rule::ReconfigDuringExecute, Severity::Error, resource, first, second,
              "reconfiguration " + span(second) + " rewrites region '" + resource +
                  "' while " + span(first) + " is still executing in it",
              "hoist the load no earlier than the instant the region is idle"));
        } else if (first.kind == ItemKind::Reconfig && second.kind == ItemKind::Compute) {
          cert.violations.push_back(make_pair_violation(
              Rule::ExecuteDuringReconfig, Severity::Error, resource, first, second,
              "operation " + span(second) + " starts while region '" + resource +
                  "' is still being rewritten by " + span(first),
              "delay the operation until the load completes"));
        } else if (first.kind == ItemKind::Reconfig && second.kind == ItemKind::Reconfig) {
          // Same-region load overlap is a port double-booking; the port
          // sweep below owns that witness (PDR105).
        } else if (on_operator) {
          cert.violations.push_back(make_pair_violation(
              Rule::OperatorOverlap, Severity::Error, resource, first, second,
              "items " + span(first) + " and " + span(second) + " overlap on operator '" +
                  resource + "'",
              "operators have no internal parallelism (paper section 3)"));
        } else {
          cert.violations.push_back(make_pair_violation(
              Rule::MediumTransferOverlap, Severity::Error, resource, first, second,
              "transfers " + span(first) + " and " + span(second) +
                  " overlap on exclusive medium '" + resource + "'",
              "media carry one transfer at a time; serialize or reroute"));
        }
      });
    }
  }

  /// PDR105: every load in the schedule shares the one configuration port.
  void check_port_bookings() {
    sweep_overlaps(reconfigs, [&](const ScheduledItem& first, const ScheduledItem& second) {
      cert.violations.push_back(make_pair_violation(
          Rule::PortDoubleBooking, Severity::Error, "configuration port", first, second,
          "loads " + span(first) + " (region '" + first.resource + "') and " + span(second) +
              " (region '" + second.resource + "') overlap on the configuration port",
          "the device has one ICAP/SelectMAP port; loads must serialize"));
    });
    std::vector<const ScheduledItem*> sorted = reconfigs;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ScheduledItem* a, const ScheduledItem* b) {
                       if (a->start != b->start) return a->start < b->start;
                       if (a->end != b->end) return a->end < b->end;
                       return a->resource < b->resource;
                     });
    for (const ScheduledItem* item : sorted) cert.port_bookings.push_back(*item);
  }

  /// PDR102 / PDR103 / PDR108 plus the residency timeline.
  void check_residency() {
    for (aaa::NodeId w : architecture.operators_of_kind(aaa::OperatorKind::FpgaRegion)) {
      const aaa::OperatorNode& region_op = architecture.op(w);
      const std::string& rname = region_op.name;
      std::string loaded;
      TimeNs loaded_from = 0;
      const ScheduledItem* loaded_by = nullptr;
      if (const auto pre = options.preloaded.find(rname); pre != options.preloaded.end())
        loaded = pre->second;

      const auto it = per_resource.find(rname);
      const std::vector<const ScheduledItem*> empty;
      for (const ScheduledItem* item : it == per_resource.end() ? empty : it->second) {
        if (item->kind == ItemKind::Reconfig) {
          if (!loaded.empty())
            cert.residencies.push_back(ResidencyInterval{rname, loaded, loaded_from, item->start});
          if (options.constraints != nullptr) {
            const aaa::ModuleConstraint* mc = options.constraints->find_module(item->module);
            if (mc != nullptr && mc->region != constraint_region_name(region_op))
              cert.violations.push_back(make_single_violation(
                  Rule::ForeignModuleLoad, Severity::Error, rname, *item,
                  "load " + span(*item) + " configures module '" + item->module +
                      "' into region '" + rname + "', but the constraints declare it for region '" +
                      mc->region + "'",
                  "a partial bitstream only fits the region it was implemented for"));
          }
          loaded = item->module;
          loaded_from = item->end;
          loaded_by = item;
        } else if (item->kind == ItemKind::Compute && !item->variant.empty()) {
          if (loaded.empty()) {
            cert.violations.push_back(make_single_violation(
                Rule::UseBeforeConfigure, Severity::Error, rname, *item,
                "operation " + span(*item) + " executes variant '" + item->variant +
                    "' but region '" + rname + "' was never configured",
                "schedule a load (or declare the module preloaded) before first use"));
          } else if (item->variant != loaded) {
            std::string message = "operation " + span(*item) + " needs variant '" +
                                  item->variant + "' but region '" + rname +
                                  "' holds module '" + loaded + "'";
            if (loaded_by != nullptr) message += ", resident since " + span(*loaded_by);
            Violation v =
                loaded_by != nullptr
                    ? make_pair_violation(Rule::StaleModuleExecution, Severity::Error, rname,
                                          *loaded_by, *item, std::move(message),
                                          "reconfigure the region before the operation starts")
                    : make_single_violation(Rule::StaleModuleExecution, Severity::Error, rname,
                                            *item, std::move(message),
                                            "reconfigure the region before the operation starts");
            cert.violations.push_back(std::move(v));
          }
        }
      }
      if (!loaded.empty()) {
        TimeNs horizon = std::max(schedule.makespan, loaded_from);
        cert.residencies.push_back(ResidencyInterval{rname, loaded, loaded_from, horizon});
      }
    }
  }

  /// PDR106: data produced for a dependency sits in an endpoint region's
  /// buffers while that region's frames are rewritten. The executive
  /// keeps those buffers in the static part, so this certifies as a
  /// warning — but the witness documents exactly which load the data must
  /// survive.
  void check_data_crossings() {
    const auto& g = algorithm.digraph();
    for (graph::EdgeId e : g.edge_ids()) {
      const auto ip = compute_of.find(g.edge_from(e));
      const auto ic = compute_of.find(g.edge_to(e));
      if (ip == compute_of.end() || ic == compute_of.end()) continue;
      const ScheduledItem& producer = *ip->second;
      const ScheduledItem& consumer = *ic->second;

      // Data leaves the producer's region when its first transfer hop
      // starts and reaches the consumer's region when the last hop ends;
      // same-operator dependencies never leave the region.
      TimeNs departure = consumer.start;
      TimeNs arrival = producer.end;
      if (const auto tf = transfers_of.find(e); tf != transfers_of.end()) {
        departure = consumer.start;
        arrival = producer.end;
        for (const ScheduledItem* hop : tf->second) {
          departure = std::min(departure, hop->start);
          arrival = std::max(arrival, hop->end);
        }
      }

      const auto region_kind = [&](const std::string& resource) {
        const auto node = architecture.find(resource);
        return node.has_value() && architecture.is_operator(*node) &&
               architecture.op(*node).kind == aaa::OperatorKind::FpgaRegion;
      };

      // Producer side: output lingers in [producer.end, departure).
      if (region_kind(producer.resource)) {
        for (const ScheduledItem* load : reconfigs) {
          if (load->resource != producer.resource) continue;
          if (std::max(load->start, producer.end) >= std::min(load->end, departure)) continue;
          cert.violations.push_back(make_pair_violation(
              Rule::DataCrossesReconfig, Severity::Warning, producer.resource, producer, *load,
              "output of " + span(producer) + " for '" + g[g.edge_to(e)].name +
                  "' is still in region '" + producer.resource + "' when load " + span(*load) +
                  " rewrites it",
              "the executive must buffer the edge in the static part across the load"));
        }
      }

      // Consumer side: input waits in [arrival, consumer.start). The load
      // that brings in the consumer's own variant is the normal on-demand
      // pattern; only a load of some *other* module displaces the data.
      if (region_kind(consumer.resource)) {
        for (const ScheduledItem* load : reconfigs) {
          if (load->resource != consumer.resource) continue;
          if (!consumer.variant.empty() && load->module == consumer.variant) continue;
          if (std::max(load->start, arrival) >= std::min(load->end, consumer.start)) continue;
          cert.violations.push_back(make_pair_violation(
              Rule::DataCrossesReconfig, Severity::Warning, consumer.resource, *load, consumer,
              "input of " + span(consumer) + " from '" + g[g.edge_from(e)].name +
                  "' arrives in region '" + consumer.resource + "' before load " + span(*load) +
                  " rewrites it",
              "the executive must buffer the edge in the static part across the load"));
        }
      }
    }
  }
};

}  // namespace

TimeNs Violation::overlap_from() const {
  return pair ? std::max(first.start, second.start) : first.start;
}

TimeNs Violation::overlap_to() const {
  return pair ? std::min(first.end, second.end) : first.end;
}

std::string Violation::to_string() const {
  return strprintf("%s [%s]: %s", lint::rule_id(rule), resource.c_str(), message.c_str());
}

bool Certificate::certified() const { return error_count() == 0; }

std::size_t Certificate::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [](const Violation& v) { return v.severity == Severity::Error; }));
}

std::string Certificate::first_error() const {
  for (const auto& v : violations)
    if (v.severity == Severity::Error) return v.to_string();
  return "";
}

lint::Report Certificate::to_report() const {
  lint::Report report;
  for (const auto& v : violations) {
    const std::string where =
        v.resource == "configuration port" ? v.resource : "resource " + v.resource;
    report.add(v.rule, v.severity, where, v.message, v.hint);
  }
  return report;
}

std::map<std::string, std::vector<std::string>> Certificate::expected_loads() const {
  std::map<std::string, std::vector<std::string>> loads;
  for (const auto& booking : port_bookings) loads[booking.resource].push_back(booking.module);
  return loads;
}

std::string Certificate::summary() const {
  if (!certified()) return strprintf("REJECTED (%zu errors): ", error_count()) + first_error();
  return strprintf("certified: %zu residency intervals, %zu port bookings, %zu warning(s)",
                   residencies.size(), port_bookings.size(),
                   violations.size() - error_count());
}

Certificate verify_schedule(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
                            const aaa::ArchitectureGraph& architecture,
                            const VerifyOptions& options) {
  Analyzer analyzer{schedule, algorithm, architecture, options, {}, {}, {}, {}, {}};
  analyzer.group();
  analyzer.check_resource_overlaps();
  analyzer.check_port_bookings();
  analyzer.check_residency();
  analyzer.check_data_crossings();
  return std::move(analyzer.cert);
}

lint::Report deep_check_text(const std::string& text) {
  if (lint::sniff_input(text) == lint::InputKind::Constraints)
    return lint::check_constraints_text(text);

  aaa::Project project;
  try {
    project = aaa::parse_project(text);
  } catch (const Error& e) {
    lint::Report report;
    report.add(Rule::ParseError, Severity::Error, "project file",
               std::string("parse failed: ") + e.what(), "");
    return report;
  }

  lint::Report report;
  try {
    const aaa::Adequation adequation(project.algorithm, project.architecture,
                                     project.durations);
    const aaa::Schedule schedule = adequation.run();
    report.merge(lint::check_schedule(schedule, project.algorithm, project.architecture));
    report.merge(
        verify_schedule(schedule, project.algorithm, project.architecture).to_report());
    const aaa::Executive executive =
        aaa::generate_executive(schedule, project.algorithm, project.architecture);
    report.merge(lint::check_executive(executive));
  } catch (const Error& e) {
    report.add(Rule::ParseError, Severity::Error, "adequation",
               std::string("adequation failed: ") + e.what(),
               "every operation needs a feasible operator and a duration entry");
  }
  return report;
}

}  // namespace pdr::verify
