// pdr::verify — interval-based static hazard analysis over schedules.
//
// The paper's safety argument is that area-shared dynamic regions can be
// rewritten mid-application without corrupting the computation. Before
// this layer the repo only checked that dynamically: simulate a schedule
// and watch for faults. verify_schedule() proves it statically instead:
// it rebuilds per-resource timelines from an aaa::Schedule — region
// frame-spans, exclusive media, the single configuration port, every
// operator — and sweeps them for the hazard classes related co-scheduling
// work must exclude (Chen et al., arXiv:1803.03748; Hannachi et al.,
// arXiv:1803.03331):
//
//   PDR100  reconfiguration starts while an operation executes in the region
//   PDR101  operation starts while its region's frames are being rewritten
//   PDR102  a variant executes in a region that was never configured
//   PDR103  a different module is resident when the operation starts
//   PDR104  two transfers overlap on an exclusive medium
//   PDR105  two loads overlap on the ICAP/SelectMAP configuration port
//   PDR106  producer->consumer data spans a rewrite of an endpoint region
//           (warning: the executive's static-part buffering makes this
//           safe at runtime, but the data demonstrably crosses a reload)
//   PDR107  two computations overlap on one operator
//   PDR108  a region loads a module the constraints declare elsewhere
//
// Every violation carries a witness — the scheduled item(s), the shared
// resource and the overlapping [start..end) intervals — and the result
// doubles as a *certificate*: the region residency timeline and the port
// booking sequence the schedule commits to. Downstream consumers:
//
//  - flow::DesignSpaceExplorer prunes uncertified design points before
//    paying for simulation (aaa::run_design_point's verifier hook);
//  - sim::ExecutivePlayer replays certified schedules and must observe
//    zero hazard faults (the differential oracle, fuzz-tested);
//  - rtr::ReconfigManager::enable_certified_replay() asserts the runtime
//    load sequence against Certificate::expected_loads().
//
// Violations are emitted through lint::Report (text + JSON), so `pdrflow
// check --deep` and the pipeline's auto-lint pick them up unchanged.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/constraints.hpp"
#include "lint/diagnostic.hpp"
#include "util/units.hpp"

namespace pdr::verify {

/// One closed interval of module residency in a region: from the end of
/// the load that configured it (0 for an assumed preload) to the start of
/// the next load (the schedule horizon for the last one).
struct ResidencyInterval {
  std::string region;
  std::string module;
  TimeNs from = 0;
  TimeNs to = 0;
};

/// One detected hazard with its witness. `first` starts no later than
/// `second`; for single-item witnesses (e.g. use-before-configure, where
/// the defect is the *absence* of a load) `pair` is false and `second` is
/// empty.
struct Violation {
  lint::Rule rule = lint::Rule::ReconfigDuringExecute;
  lint::Severity severity = lint::Severity::Error;
  std::string resource;  ///< shared resource: region, medium or the port
  aaa::ScheduledItem first;
  aaa::ScheduledItem second;
  bool pair = true;
  std::string message;
  std::string hint;

  /// Overlap window of the two witness intervals (pair witnesses only).
  TimeNs overlap_from() const;
  TimeNs overlap_to() const;

  /// "PDR100 [resource D1]: <message>".
  std::string to_string() const;
};

struct VerifyOptions {
  /// Constraint context for PDR108 (module-to-region ownership); may be
  /// null, which skips that rule.
  const aaa::ConstraintSet* constraints = nullptr;
  /// Modules assumed resident per region at t = 0 — must mirror the
  /// AdequationOptions::preloaded the schedule was produced with, or
  /// residency analysis will flag the scheduler's assumptions.
  std::map<std::string, std::string> preloaded;
};

/// The verifier's result: the violation list plus the positive artifact —
/// the residency/booking timelines a hazard-free schedule commits to.
class Certificate {
 public:
  std::vector<Violation> violations;
  /// Region residency timeline, per region in time order.
  std::vector<ResidencyInterval> residencies;
  /// Configuration-port occupancy: every Reconfig item in start order.
  std::vector<aaa::ScheduledItem> port_bookings;

  /// Race-free: no error-severity violation (warnings — PDR106 — do not
  /// block certification).
  bool certified() const;

  std::size_t error_count() const;

  /// Message of the first error-severity violation, "" when certified.
  std::string first_error() const;

  /// Violations as lint diagnostics (the PDR1xx family), canonically
  /// ordered by Report's own rendering.
  lint::Report to_report() const;

  /// Per region, the certified module-load sequence in time order — the
  /// contract rtr::ReconfigManager::enable_certified_replay() asserts at
  /// runtime. Plain std::map/std::vector so rtr needs no verify types.
  std::map<std::string, std::vector<std::string>> expected_loads() const;

  /// One-line summary: "certified, N regions, M loads" or
  /// "REJECTED: <first error>".
  std::string summary() const;
};

/// Runs the interval analysis. Pure and deterministic: the certificate is
/// a function of (schedule, algorithm, architecture, options) only.
Certificate verify_schedule(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
                            const aaa::ArchitectureGraph& architecture,
                            const VerifyOptions& options = {});

/// `pdrflow check --deep`: the plain lint families plus interval
/// certification of the default-options schedule. Constraints files have
/// no schedule, so deep and plain checks coincide for them.
lint::Report deep_check_text(const std::string& text);

}  // namespace pdr::verify
