#include <gtest/gtest.h>

#include <set>

#include "aaa/adequation.hpp"
#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "aaa/durations.hpp"
#include "util/error.hpp"

namespace pdr::aaa {
namespace {

// --- algorithm graph -----------------------------------------------------------

AlgorithmGraph pipeline3() {
  AlgorithmGraph g;
  g.add_sensor("in");
  g.add_compute("work", "fir");
  g.add_actuator("out");
  g.add_dependency("in", "work", 64);
  g.add_dependency("work", "out", 64);
  return g;
}

TEST(AlgorithmGraph, BuildAndValidate) {
  AlgorithmGraph g = pipeline3();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.op(g.by_name("work")).kind, "fir");
}

TEST(AlgorithmGraph, DuplicateNameRejected) {
  AlgorithmGraph g;
  g.add_sensor("x");
  EXPECT_THROW(g.add_compute("x", "fir"), pdr::Error);
}

TEST(AlgorithmGraph, UnknownNameThrows) {
  AlgorithmGraph g = pipeline3();
  EXPECT_THROW(g.by_name("nope"), pdr::Error);
  EXPECT_FALSE(g.find("nope").has_value());
}

TEST(AlgorithmGraph, SelfDependencyRejected) {
  AlgorithmGraph g;
  g.add_compute("a", "fir");
  EXPECT_THROW(g.add_dependency("a", "a", 1), pdr::Error);
}

TEST(AlgorithmGraph, CycleFailsValidation) {
  AlgorithmGraph g;
  g.add_compute("a", "fir");
  g.add_compute("b", "fir");
  g.add_dependency("a", "b", 1);
  g.add_dependency("b", "a", 1);
  EXPECT_THROW(g.validate(), pdr::Error);
}

TEST(AlgorithmGraph, SensorWithInputFailsValidation) {
  AlgorithmGraph g;
  g.add_compute("a", "fir");
  g.add_sensor("s");
  g.add_dependency("a", "s", 1);
  EXPECT_THROW(g.validate(), pdr::Error);
}

TEST(AlgorithmGraph, ActuatorWithOutputFailsValidation) {
  AlgorithmGraph g;
  g.add_actuator("out");
  g.add_compute("a", "fir");
  g.add_dependency("out", "a", 1);
  EXPECT_THROW(g.validate(), pdr::Error);
}

TEST(AlgorithmGraph, ConditionedVertexNeedsTwoAlternatives) {
  AlgorithmGraph g;
  EXPECT_THROW(g.add_conditioned("m", {{"only", "qpsk_mapper", {}}}), pdr::Error);
}

TEST(AlgorithmGraph, ConditionedDuplicateAlternativeFailsValidation) {
  AlgorithmGraph g;
  g.add_conditioned("m", {{"a", "qpsk_mapper", {}}, {"a", "qam16_mapper", {}}});
  EXPECT_THROW(g.validate(), pdr::Error);
}

TEST(AlgorithmGraph, RepetitionExpandsWithSplitPayloads) {
  AlgorithmGraph g;
  g.add_sensor("in");
  g.add_compute("work", "fir");
  g.add_actuator("out");
  g.add_dependency("in", "work", 100);
  g.add_dependency("work", "out", 60);

  const auto names = g.expand_repetition("work", 4);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "work#0");
  EXPECT_FALSE(g.find("work").has_value());
  EXPECT_EQ(g.size(), 6u);  // in + 4 instances + out
  EXPECT_NO_THROW(g.validate());

  // Each instance carries 1/4 of the payload (ceil).
  const auto& dg = g.digraph();
  const NodeId w0 = g.by_name("work#0");
  ASSERT_EQ(dg.in_edges(w0).size(), 1u);
  EXPECT_EQ(dg.edge(dg.in_edges(w0)[0]).bytes, 25u);
  EXPECT_EQ(dg.edge(dg.out_edges(w0)[0]).bytes, 15u);
  // The sensor fans out to all instances.
  EXPECT_EQ(dg.out_edges(g.by_name("in")).size(), 4u);
}

TEST(AlgorithmGraph, RepetitionRejectsBadTargets) {
  AlgorithmGraph g;
  g.add_sensor("s");
  g.add_compute("c", "fir");
  g.add_conditioned("m", {{"a", "fir", {}}, {"b", "fir", {}}});
  EXPECT_THROW(g.expand_repetition("s", 2), pdr::Error);  // sensor
  EXPECT_THROW(g.expand_repetition("m", 2), pdr::Error);  // conditioned
  EXPECT_THROW(g.expand_repetition("c", 1), pdr::Error);  // count < 2
  EXPECT_THROW(g.expand_repetition("ghost", 2), pdr::Error);
}

TEST(AlgorithmGraph, RepetitionEnablesParallelSpeedup) {
  // One heavy op vs 4 repeated instances on a platform with 2 CPUs: the
  // adequation spreads instances and the makespan drops.
  DurationTable t;
  t.set("src", OperatorKind::Processor, 1'000);
  t.set("heavy", OperatorKind::Processor, 40'000);

  ArchitectureGraph arch;
  arch.add_operator(OperatorNode{"CPU0", OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator(OperatorNode{"CPU1", OperatorKind::Processor, 1.0, "", ""});
  arch.add_medium(MediumNode{"BUS", 1e9, 10});
  arch.connect("CPU0", "BUS");
  arch.connect("CPU1", "BUS");

  AlgorithmGraph serial;
  serial.add_operation({"s", "src", {}, OpClass::Sensor, {}});
  serial.add_compute("heavy", "heavy");
  serial.add_dependency("s", "heavy", 64);

  AlgorithmGraph parallel = serial;
  parallel.expand_repetition("heavy", 4);
  // Repeated instances each process 1/4 of the data in 1/4 of the time.
  DurationTable t4 = t;
  t4.set("heavy", OperatorKind::Processor, 10'000);

  const Schedule s1 = Adequation(serial, arch, t).run();
  const Schedule s4 = Adequation(parallel, arch, t4).run();
  validate_schedule(s4, parallel, arch);
  EXPECT_LT(s4.makespan, s1.makespan);
  // Both CPUs participate.
  std::set<std::string> used;
  for (const auto sym : s4.placement)
    if (sym != util::kNoSymbol) used.insert(std::string(s4.name(sym)));
  EXPECT_EQ(used.size(), 2u);
}

// The name->NodeId index is maintained by hand in lockstep with the
// digraph (PR 6); every expand_repetition tombstones a node and registers
// fresh instance names, which is exactly where a hand-kept index drifts.
// Fuzz 20 seeded graphs through repeated expand cycles (instances are
// themselves expandable) and assert by_name/find agree with a linear scan
// of the live digraph after every mutation.
TEST(AlgorithmGraph, RepetitionIndexStaysConsistentUnderFuzz) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL;
    const auto rnd = [&state](std::uint64_t n) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state % n;
    };

    AlgorithmGraph g;
    g.add_sensor("in");
    std::vector<std::string> expandable;
    std::string prev = "in";
    const int chain = 2 + static_cast<int>(rnd(4));
    for (int i = 0; i < chain; ++i) {
      const std::string name = "c" + std::to_string(i);
      g.add_compute(name, "fir");
      g.add_dependency(prev, name, 64 + 8 * static_cast<Bytes>(i));
      expandable.push_back(name);
      prev = name;
    }
    g.add_actuator("out");
    g.add_dependency(prev, "out", 64);

    const auto check_index = [&g]() {
      std::size_t live = 0;
      g.digraph().for_each_live_node([&](graph::NodeId id, const Operation& op) {
        ++live;
        EXPECT_EQ(g.by_name(op.name), id) << op.name;
        const auto found = g.find(op.name);
        ASSERT_TRUE(found.has_value()) << op.name;
        EXPECT_EQ(*found, id) << op.name;
      });
      EXPECT_EQ(g.size(), live);
    };
    check_index();

    for (int round = 0; round < 6 && !expandable.empty(); ++round) {
      const std::size_t pick = rnd(expandable.size());
      const std::string victim = expandable[pick];
      expandable.erase(expandable.begin() + static_cast<std::ptrdiff_t>(pick));
      const auto instances = g.expand_repetition(victim, 2 + static_cast<int>(rnd(3)));
      EXPECT_FALSE(g.find(victim).has_value()) << victim;
      for (const auto& inst : instances) expandable.push_back(inst);
      check_index();
      EXPECT_NO_THROW(g.validate());
    }
  }
}

TEST(AlgorithmGraph, DotShowsConditionedVertices) {
  AlgorithmGraph g;
  g.add_conditioned("mod", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  g.add_sensor("in");
  g.add_dependency("in", "mod", 8);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);
  EXPECT_NE(dot.find("qam16"), std::string::npos);
}

// --- architecture graph -----------------------------------------------------------

TEST(ArchitectureGraph, SundanceModel) {
  ArchitectureGraph arch = make_sundance_architecture();
  EXPECT_NO_THROW(arch.validate());
  EXPECT_EQ(arch.operators().size(), 3u);
  EXPECT_EQ(arch.media().size(), 2u);
  EXPECT_EQ(arch.op(arch.by_name("DSP")).kind, OperatorKind::Processor);
  EXPECT_EQ(arch.op(arch.by_name("D1")).kind, OperatorKind::FpgaRegion);
  EXPECT_EQ(arch.op(arch.by_name("D1")).region, "D1");
}

TEST(ArchitectureGraph, Figure1Model) {
  ArchitectureGraph arch = make_figure1_architecture(2, 100e6);
  EXPECT_NO_THROW(arch.validate());
  EXPECT_EQ(arch.operators_of_kind(OperatorKind::FpgaRegion).size(), 2u);
  EXPECT_EQ(arch.media().size(), 1u);  // the internal link IL
}

TEST(ArchitectureGraph, RouteThroughMedia) {
  ArchitectureGraph arch = make_sundance_architecture();
  const auto route = arch.route(arch.by_name("DSP"), arch.by_name("F1"));
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(arch.medium(route[0]).name, "SHB");

  // DSP -> D1 crosses SHB then LIO.
  const auto long_route = arch.route(arch.by_name("DSP"), arch.by_name("D1"));
  ASSERT_EQ(long_route.size(), 2u);
  EXPECT_EQ(arch.medium(long_route[0]).name, "SHB");
  EXPECT_EQ(arch.medium(long_route[1]).name, "LIO");
}

TEST(ArchitectureGraph, RouteToSelfIsEmpty) {
  ArchitectureGraph arch = make_sundance_architecture();
  EXPECT_TRUE(arch.route(arch.by_name("F1"), arch.by_name("F1")).empty());
}

TEST(ArchitectureGraph, DisconnectedFailsValidation) {
  ArchitectureGraph arch;
  arch.add_operator(OperatorNode{"A", OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator(OperatorNode{"B", OperatorKind::Processor, 1.0, "", ""});
  EXPECT_THROW(arch.validate(), pdr::Error);
}

TEST(ArchitectureGraph, ConnectRequiresOperatorAndMedium) {
  ArchitectureGraph arch;
  const NodeId a = arch.add_operator(OperatorNode{"A", OperatorKind::Processor, 1.0, "", ""});
  const NodeId b = arch.add_operator(OperatorNode{"B", OperatorKind::Processor, 1.0, "", ""});
  EXPECT_THROW(arch.connect(a, b), pdr::Error);
}

TEST(ArchitectureGraph, RegionOperatorNeedsRegionName) {
  ArchitectureGraph arch;
  EXPECT_THROW(arch.add_operator(OperatorNode{"D", OperatorKind::FpgaRegion, 1.0, "XC2V2000", ""}),
               pdr::Error);
}

TEST(ArchitectureGraph, MediumNeedsBandwidth) {
  ArchitectureGraph arch;
  EXPECT_THROW(arch.add_medium(MediumNode{"bus", 0.0, 0}), pdr::Error);
}

TEST(ArchitectureGraph, MediumTransferTime) {
  const MediumNode m{"bus", 100e6, 500};
  EXPECT_EQ(m.transfer_time(0), 500);
  EXPECT_EQ(m.transfer_time(100), 500 + 1000);  // 100 B at 100 MB/s = 1 us
}

TEST(ArchitectureGraph, DotContainsAllVertices) {
  ArchitectureGraph arch = make_sundance_architecture();
  const std::string dot = arch.to_dot();
  for (const char* name : {"DSP", "F1", "D1", "SHB", "LIO"})
    EXPECT_NE(dot.find(name), std::string::npos) << name;
}

// --- durations ------------------------------------------------------------------

TEST(Durations, KindAndNameLookup) {
  DurationTable t;
  t.set("fir", OperatorKind::Processor, 1000);
  t.set_for("fir", "DSP2", 400);
  const OperatorNode any{"DSP1", OperatorKind::Processor, 1.0, "", ""};
  const OperatorNode special{"DSP2", OperatorKind::Processor, 1.0, "", ""};
  EXPECT_EQ(t.lookup("fir", any), 1000);
  EXPECT_EQ(t.lookup("fir", special), 400);  // name entry wins
}

TEST(Durations, SpeedFactorScales) {
  DurationTable t;
  t.set("fir", OperatorKind::Processor, 1000);
  const OperatorNode fast{"D", OperatorKind::Processor, 2.0, "", ""};
  EXPECT_EQ(t.lookup("fir", fast), 500);
}

TEST(Durations, UnsupportedThrows) {
  DurationTable t;
  t.set("fir", OperatorKind::Processor, 1000);
  const OperatorNode fpga{"F", OperatorKind::FpgaStatic, 1.0, "", ""};
  EXPECT_FALSE(t.supports("fir", fpga));
  EXPECT_THROW(t.lookup("fir", fpga), pdr::Error);
  EXPECT_THROW(t.mean("nothing"), pdr::Error);
}

TEST(Durations, MeanAveragesEntries) {
  DurationTable t;
  t.set("fir", OperatorKind::Processor, 1000);
  t.set("fir", OperatorKind::FpgaStatic, 200);
  EXPECT_DOUBLE_EQ(t.mean("fir"), 600.0);
}

TEST(Durations, McCdmaTableCoversCaseStudyKinds) {
  const DurationTable t = mccdma_durations();
  const OperatorNode dsp{"DSP", OperatorKind::Processor, 1.0, "", ""};
  const OperatorNode f1{"F1", OperatorKind::FpgaStatic, 1.0, "", ""};
  for (const char* kind : {"bit_source", "scrambler", "conv_encoder", "interleaver",
                           "qpsk_mapper", "qam16_mapper", "walsh_spreader", "ifft",
                           "cyclic_prefix", "frame_builder", "interface_in_out"}) {
    EXPECT_TRUE(t.supports(kind, dsp)) << kind;
    EXPECT_TRUE(t.supports(kind, f1)) << kind;
    // FPGA is faster than the DSP for the datapath blocks.
    if (std::string(kind) != "interface_in_out") {
      EXPECT_LT(t.lookup(kind, f1), t.lookup(kind, dsp)) << kind;
    }
  }
}

TEST(Durations, RejectsNonPositive) {
  DurationTable t;
  EXPECT_THROW(t.set("x", OperatorKind::Processor, 0), pdr::Error);
  EXPECT_THROW(t.set_for("x", "A", -5), pdr::Error);
}

}  // namespace
}  // namespace pdr::aaa
