#include <gtest/gtest.h>

#include <set>

#include "aaa/adequation.hpp"
#include "aaa/durations.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdr::aaa {
namespace {

using namespace pdr::literals;

DurationTable simple_durations() {
  DurationTable t;
  for (const char* kind : {"src", "work", "alt_a", "alt_b", "sink"}) {
    t.set(kind, OperatorKind::Processor, 10'000);
    t.set(kind, OperatorKind::FpgaStatic, 2'000);
    t.set(kind, OperatorKind::FpgaRegion, 2'000);
  }
  return t;
}

ArchitectureGraph small_arch() {
  ArchitectureGraph arch;
  arch.add_operator(OperatorNode{"CPU", OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator(OperatorNode{"F1", OperatorKind::FpgaStatic, 1.0, "XC2V2000", ""});
  arch.add_operator(OperatorNode{"D1", OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D1"});
  arch.add_medium(MediumNode{"BUS", 100e6, 100});
  arch.connect("CPU", "BUS");
  arch.connect("F1", "BUS");
  arch.connect("D1", "BUS");
  return arch;
}

AlgorithmGraph chain() {
  AlgorithmGraph g;
  g.add_operation({"a", "src", {}, OpClass::Sensor, {}});
  g.add_compute("b", "work");
  g.add_operation({"c", "sink", {}, OpClass::Actuator, {}});
  g.add_dependency("a", "b", 100);
  g.add_dependency("b", "c", 100);
  return g;
}

AlgorithmGraph conditioned_chain() {
  AlgorithmGraph g;
  g.add_operation({"a", "src", {}, OpClass::Sensor, {}});
  g.add_conditioned("m", {{"alt_a", "alt_a", {}}, {"alt_b", "alt_b", {}}});
  g.add_operation({"c", "sink", {}, OpClass::Actuator, {}});
  g.add_dependency("a", "m", 100);
  g.add_dependency("m", "c", 100);
  return g;
}

TEST(Adequation, SchedulesChainOnFastestOperator) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Schedule s = Adequation(g, arch, t).run();
  validate_schedule(s, g, arch);
  // Everything lands on F1 (fast, no transfers needed); regions excluded
  // for non-conditioned ops.
  for (const auto sym : s.placement) {
    if (sym != util::kNoSymbol) {
      EXPECT_EQ(s.name(sym), "F1");
    }
  }
  EXPECT_EQ(s.makespan, 6'000);
  EXPECT_EQ(s.reconfig_count, 0);
}

TEST(Adequation, DeterministicAcrossRuns) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  const Schedule s1 = adequation.run();
  const Schedule s2 = adequation.run();
  EXPECT_EQ(s1.makespan, s2.makespan);
  EXPECT_EQ(s1.size(), s2.size());
}

TEST(Adequation, PinForcesOperatorAndTransfers) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("b", "CPU");
  const Schedule s = adequation.run();
  validate_schedule(s, g, arch);
  EXPECT_EQ(s.placement_name(g.by_name("b")), "CPU");
  // a on F1, b on CPU -> at least two transfers over BUS.
  int transfers = 0;
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s.kind(i) == ItemKind::Transfer) ++transfers;
  EXPECT_GE(transfers, 2);
}

TEST(Adequation, ConditionedVertexOnRegionInsertsReconfig) {
  const AlgorithmGraph g = conditioned_chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("m", "D1");
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });
  const Schedule s = adequation.run();
  validate_schedule(s, g, arch);
  EXPECT_EQ(s.reconfig_count, 1);
  EXPECT_EQ(s.reconfig_total, 1_ms);
  // The region item loads the first alternative by default.
  bool found = false;
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s.kind(i) == ItemKind::Reconfig) {
      EXPECT_EQ(s.module_name(i), "alt_a");
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Adequation, SelectionPicksAlternative) {
  const AlgorithmGraph g = conditioned_chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("m", "D1");
  AdequationOptions options;
  options.selection["m"] = "alt_b";
  const Schedule s = adequation.run(options);
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s.kind(i) == ItemKind::Compute && s.variant(i) != "") {
      EXPECT_EQ(s.variant(i), "alt_b");
    }
}

TEST(Adequation, UnknownSelectionThrows) {
  const AlgorithmGraph g = conditioned_chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("m", "D1");
  AdequationOptions options;
  options.selection["m"] = "alt_z";
  EXPECT_THROW(adequation.run(options), pdr::Error);
}

TEST(Adequation, PreloadedRegionSkipsReconfig) {
  const AlgorithmGraph g = conditioned_chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("m", "D1");
  AdequationOptions options;
  options.preloaded["D1"] = "alt_a";
  const Schedule s = adequation.run(options);
  validate_schedule(s, g, arch);
  EXPECT_EQ(s.reconfig_count, 0);
}

TEST(Adequation, PrefetchHoistsReconfigBeforeDataReady) {
  const AlgorithmGraph g = conditioned_chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("m", "D1");
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_ms; });

  AdequationOptions with;
  with.prefetch = true;
  AdequationOptions without;
  without.prefetch = false;
  const Schedule sp = adequation.run(with);
  const Schedule sn = adequation.run(without);
  validate_schedule(sp, g, arch);
  validate_schedule(sn, g, arch);

  // Prefetched reconfiguration starts at t=0 (region and port idle);
  // on-demand starts only once the input data arrived.
  TimeNs prefetch_start = -1, demand_start = -1;
  for (std::size_t i = 0; i < sp.size(); ++i)
    if (sp.kind(i) == ItemKind::Reconfig) prefetch_start = sp.start(i);
  for (std::size_t i = 0; i < sn.size(); ++i)
    if (sn.kind(i) == ItemKind::Reconfig) demand_start = sn.start(i);
  EXPECT_EQ(prefetch_start, 0);
  EXPECT_GT(demand_start, 0);
  EXPECT_LE(sp.makespan, sn.makespan);
  EXPECT_LT(sp.reconfig_exposed, sn.reconfig_exposed + 1);
}

TEST(Adequation, InfeasibleOperationThrows) {
  AlgorithmGraph g;
  g.add_compute("exotic", "quantum_op");
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  EXPECT_THROW(Adequation(g, arch, t).run(), pdr::Error);
}

TEST(Adequation, PinUnknownNamesThrow) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  EXPECT_THROW(adequation.pin("nope", "F1"), pdr::Error);
  EXPECT_THROW(adequation.pin("b", "nope"), pdr::Error);
}

TEST(Adequation, ApplyConstraintsPinsConditionedVertices) {
  AlgorithmGraph g;
  g.add_operation({"a", "src", {}, OpClass::Sensor, {}});
  g.add_conditioned("m", {{"qpsk", "alt_a", {}}, {"qam16", "alt_b", {}}});
  g.add_dependency("a", "m", 10);
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();

  const ConstraintSet cset = parse_constraints(
      "region D1 { width 2 }\n"
      "dynamic qpsk { region D1\n kind qpsk_mapper }\n"
      "dynamic qam16 { region D1\n kind qam16_mapper }\n");
  Adequation adequation(g, arch, t);
  adequation.apply_constraints(cset);
  const Schedule s = adequation.run();
  EXPECT_EQ(s.placement_name(g.by_name("m")), "D1");
}

TEST(Schedule, CsvExportListsEveryItem) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Schedule s = Adequation(g, arch, t).run();
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("kind,label,resource,start_ns,end_ns,variant,module"), std::string::npos);
  // One line per item plus the header.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            s.size() + 1);
  EXPECT_NE(csv.find("compute,b,F1"), std::string::npos);
}

TEST(Schedule, UtilizationAndResourceQueries) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Schedule s = Adequation(g, arch, t).run();
  EXPECT_EQ(s.on_resource("F1").size(), 3u);
  EXPECT_NEAR(s.utilization("F1"), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.utilization("CPU"), 0.0);
  EXPECT_NE(s.to_string().find("makespan"), std::string::npos);
  EXPECT_NE(s.gantt().find("F1"), std::string::npos);
}

TEST(ValidateSchedule, CatchesResourceOverlap) {
  Schedule s;
  ScheduledItem x;
  x.kind = ItemKind::Compute;
  x.label = "x";
  x.resource = "F1";
  x.start = 0;
  x.end = 10;
  x.op = 0;
  ScheduledItem y = x;
  y.label = "y";
  y.start = 5;
  y.end = 15;
  y.op = 1;
  s.push_item(x);
  s.push_item(y);

  AlgorithmGraph g;
  g.add_compute("x", "work");
  g.add_compute("y", "work");
  const ArchitectureGraph arch = small_arch();
  EXPECT_THROW(validate_schedule(s, g, arch), pdr::Error);
}

TEST(Adequation, BaselineStrategiesScheduleValidly) {
  const AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Adequation adequation(g, arch, t);
  for (const auto strategy :
       {MappingStrategy::SynDExList, MappingStrategy::RoundRobin, MappingStrategy::FirstFeasible}) {
    AdequationOptions options;
    options.strategy = strategy;
    const Schedule s = adequation.run(options);
    validate_schedule(s, g, arch);
    EXPECT_EQ(s.placement_count(), g.size()) << mapping_strategy_name(strategy);
  }
}

TEST(Adequation, HeuristicBeatsRoundRobinOnWideGraph) {
  // A wide graph with expensive transfers: the SynDEx heuristic clusters
  // work on the fast FPGA; round-robin scatters it across the slow CPU
  // too, paying both slow compute and bus transfers.
  AlgorithmGraph g;
  g.add_operation({"s", "src", {}, OpClass::Sensor, {}});
  for (int i = 0; i < 8; ++i) {
    const std::string name = "w" + std::to_string(i);
    g.add_compute(name, "work");
    g.add_dependency("s", name, 4096);
  }
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Adequation adequation(g, arch, t);

  AdequationOptions syndex;
  AdequationOptions naive;
  naive.strategy = MappingStrategy::RoundRobin;
  const Schedule good = adequation.run(syndex);
  const Schedule bad = adequation.run(naive);
  validate_schedule(good, g, arch);
  validate_schedule(bad, g, arch);
  EXPECT_LT(good.makespan, bad.makespan);
}

TEST(Adequation, StrategyNames) {
  EXPECT_STREQ(mapping_strategy_name(MappingStrategy::SynDExList), "syndex_list");
  EXPECT_STREQ(mapping_strategy_name(MappingStrategy::RoundRobin), "round_robin");
  EXPECT_STREQ(mapping_strategy_name(MappingStrategy::FirstFeasible), "first_feasible");
}

TEST(Adequation, SelectionKindDrivesFeasibility) {
  // The selected alternative's kind, not the first alternative's, decides
  // operator feasibility. A's kind runs only on the CPU, B's only on F1:
  // selecting B must land on F1 (the pre-fix candidate filter checked
  // support for A's kind and then blew up looking B's duration up on CPU).
  AlgorithmGraph g;
  g.add_operation({"a", "src", {}, OpClass::Sensor, {}});
  g.add_conditioned("m", {{"A", "ka", {}}, {"B", "kb", {}}});
  g.add_dependency("a", "m", 100);

  DurationTable t;
  t.set("src", OperatorKind::FpgaStatic, 2'000);
  t.set("ka", OperatorKind::Processor, 10'000);
  t.set("kb", OperatorKind::FpgaStatic, 2'000);

  const ArchitectureGraph arch = small_arch();
  AdequationOptions options;
  options.selection["m"] = "B";
  const Schedule s = Adequation(g, arch, t).run(options);
  validate_schedule(s, g, arch);
  EXPECT_EQ(s.placement_name(g.by_name("m")), "F1");

  options.selection["m"] = "A";
  const Schedule sa = Adequation(g, arch, t).run(options);
  validate_schedule(sa, g, arch);
  EXPECT_EQ(sa.placement_name(g.by_name("m")), "CPU");
}

TEST(Adequation, SharedMediumEstimateMatchesCommitAndFlipsChoice) {
  // p1 and p2 run sequentially on F1 (finish 1/2 us); join j's two
  // in-edges each need 10 us on the shared BUS when j lands on the CPU.
  // The pre-fix estimator let both transfers start at the bus's committed
  // free time, predicting CPU at 17 us and picking it over F1's 22 us —
  // the committed CPU schedule actually ends at 26 us. The transactional
  // estimator reserves the bus across the op's own in-edges, so the
  // estimate is 26 us and F1 wins.
  AlgorithmGraph g;
  g.add_operation({"p1", "src", {}, OpClass::Sensor, {}});
  g.add_operation({"p2", "src", {}, OpClass::Sensor, {}});
  g.add_operation({"j", "join", {}, OpClass::Actuator, {}});
  g.add_dependency("p1", "j", 1'000);
  g.add_dependency("p2", "j", 1'000);

  DurationTable t;
  t.set("src", OperatorKind::FpgaStatic, 1'000);
  t.set("join", OperatorKind::Processor, 5'000);
  t.set("join", OperatorKind::FpgaStatic, 20'000);

  ArchitectureGraph arch;
  arch.add_operator(OperatorNode{"CPU", OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator(OperatorNode{"F1", OperatorKind::FpgaStatic, 1.0, "XC2V2000", ""});
  arch.add_medium(MediumNode{"BUS", 100e6, 0});
  arch.connect("CPU", "BUS");
  arch.connect("F1", "BUS");

  std::vector<CandidateEval> evals;
  AdequationOptions options;
  options.eval_log = &evals;
  const Schedule s = Adequation(g, arch, t).run(options);
  validate_schedule(s, g, arch);
  EXPECT_EQ(s.placement_name(g.by_name("j")), "F1");
  EXPECT_EQ(s.makespan, 22'000);

  // The rejected CPU estimate accounts for the serialized bus.
  bool saw_cpu = false;
  for (const auto& ev : evals)
    if (ev.op == g.by_name("j") && ev.operator_name == "CPU") {
      EXPECT_EQ(ev.predicted_end, 26'000);
      saw_cpu = true;
    }
  EXPECT_TRUE(saw_cpu);

  // Estimates are transactional: every committed candidate matches an
  // earlier non-commit estimate for the same (op, operator) pair exactly,
  // and matches the compute item's actual end.
  for (const auto& ev : evals) {
    if (!ev.committed) continue;
    bool estimated = false;
    for (const auto& prior : evals)
      if (!prior.committed && prior.op == ev.op && prior.operator_name == ev.operator_name) {
        EXPECT_EQ(prior.predicted_end, ev.predicted_end);
        estimated = true;
      }
    EXPECT_TRUE(estimated);
    for (std::size_t i = 0; i < s.size(); ++i)
      if (s.kind(i) == ItemKind::Compute && s.op(i) == ev.op) {
        EXPECT_EQ(s.end(i), ev.predicted_end);
      }
  }
}

TEST(Schedule, GanttRendersZeroDurationItems) {
  Schedule s;
  ScheduledItem pulse;
  pulse.kind = ItemKind::Compute;
  pulse.label = "pulse";
  pulse.resource = "CPU";
  pulse.start = 5'000;
  pulse.end = 5'000;  // zero duration
  ScheduledItem work;
  work.kind = ItemKind::Compute;
  work.label = "work";
  work.resource = "F1";
  work.start = 0;
  work.end = 10'000;
  s.push_item(work);
  s.push_item(pulse);
  s.makespan = 10'000;

  const std::string chart = s.gantt();
  const std::size_t line_start = chart.find("CPU");
  ASSERT_NE(line_start, std::string::npos);
  const std::size_t line_end = chart.find('\n', line_start);
  // Zero-duration items still paint one mark cell.
  EXPECT_NE(chart.substr(line_start, line_end - line_start).find('#'), std::string::npos);
}

TEST(ValidateSchedule, MultiEdgeTransfersNeedOneChainPerEdge) {
  // Two parallel a->b edges with the same payload: one transfer item must
  // not validate both (the pre-fix matcher keyed on (src,dst) names and
  // let it).
  AlgorithmGraph g;
  g.add_operation({"a", "src", {}, OpClass::Sensor, {}});
  g.add_operation({"b", "sink", {}, OpClass::Actuator, {}});
  g.add_dependency("a", "b", 100);
  g.add_dependency("a", "b", 100);
  const ArchitectureGraph arch = small_arch();

  ScheduledItem ca;
  ca.kind = ItemKind::Compute;
  ca.label = "a";
  ca.resource = "F1";
  ca.start = 0;
  ca.end = 1'000;
  ca.op = g.by_name("a");
  ScheduledItem cb = ca;
  cb.label = "b";
  cb.resource = "CPU";
  cb.start = 4'000;
  cb.end = 5'000;
  cb.op = g.by_name("b");
  ScheduledItem t1;
  t1.kind = ItemKind::Transfer;
  t1.label = "a->b";
  t1.resource = "BUS";
  t1.start = 1'000;
  t1.end = 2'000;
  t1.src = "a";
  t1.dst = "b";
  t1.bytes = 100;  // edge defaults to kNoEdge: the (src,dst,bytes) fallback

  Schedule missing;
  for (const auto& it : {ca, t1, cb}) missing.push_item(it);
  EXPECT_THROW(validate_schedule(missing, g, arch), pdr::Error);

  ScheduledItem t2 = t1;
  t2.start = 2'000;
  t2.end = 3'000;
  Schedule complete;
  for (const auto& it : {ca, t1, t2, cb}) complete.push_item(it);
  EXPECT_NO_THROW(validate_schedule(complete, g, arch));
}

TEST(Adequation, ParallelEdgesScheduleOneTransferEach) {
  AlgorithmGraph g;
  g.add_operation({"a", "src", {}, OpClass::Sensor, {}});
  g.add_operation({"b", "sink", {}, OpClass::Actuator, {}});
  g.add_dependency("a", "b", 100);
  g.add_dependency("a", "b", 200);
  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  Adequation adequation(g, arch, t);
  adequation.pin("a", "F1");
  adequation.pin("b", "CPU");
  const Schedule s = adequation.run();
  validate_schedule(s, g, arch);

  std::set<graph::EdgeId> edges;
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s.kind(i) == ItemKind::Transfer) edges.insert(s.edge(i));
  EXPECT_EQ(edges.size(), 2u);  // distinct edge ids, one chain per edge
  EXPECT_EQ(edges.count(graph::kNoEdge), 0u);
}

TEST(Adequation, EnginesProduceByteIdenticalSchedules) {
  // The indexed ready-queue is an index, not a heuristic change: across
  // strategies it must reproduce the rescanning reference exactly.
  Rng rng(99);
  AlgorithmGraph g;
  const int layers = 5;
  const int per_layer = 4;
  std::vector<std::vector<std::string>> names(layers);
  for (int l = 0; l < layers; ++l)
    for (int i = 0; i < per_layer; ++i) {
      const std::string name = "op_" + std::to_string(l) + "_" + std::to_string(i);
      names[l].push_back(name);
      if (l == 0)
        g.add_operation({name, "src", {}, OpClass::Sensor, {}});
      else
        g.add_compute(name, "work");
    }
  for (int l = 1; l < layers; ++l)
    for (int i = 0; i < per_layer; ++i)
      g.add_dependency(names[l - 1][static_cast<std::size_t>(rng.uniform_int(0, per_layer - 1))],
                       names[l][static_cast<std::size_t>(i)],
                       static_cast<Bytes>(rng.uniform_int(16, 256)));

  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Adequation adequation(g, arch, t);
  for (const auto strategy :
       {MappingStrategy::SynDExList, MappingStrategy::RoundRobin, MappingStrategy::FirstFeasible}) {
    AdequationOptions heap;
    heap.strategy = strategy;
    heap.ready_policy = ReadyPolicy::IndexedHeap;
    AdequationOptions rescan = heap;
    rescan.ready_policy = ReadyPolicy::RescanReference;
    EXPECT_EQ(adequation.run(heap).to_csv(), adequation.run(rescan).to_csv())
        << mapping_strategy_name(strategy);
  }
}

TEST(Adequation, RunCacheInvalidatesOnGraphAndDurationMutation) {
  // run() caches graph-shaped scaffolding (ready tracker, dependency
  // CSR, critical-path priorities) across calls, keyed on the graph and
  // duration-table version counters. Repeat runs must be byte-identical
  // to a fresh instance's, and mutations must invalidate.
  AlgorithmGraph g = chain();
  const ArchitectureGraph arch = small_arch();
  DurationTable t = simple_durations();
  const Adequation cached(g, arch, t);
  const std::string first = cached.run().to_csv();
  EXPECT_EQ(cached.run().to_csv(), first);  // warm repeat, cache served
  EXPECT_EQ(Adequation(g, arch, t).run().to_csv(), first);

  // Graph mutation: the new operation must appear in the next run, and
  // the cached instance must match a fresh one (a stale tracker or CSR
  // would miss node 'd' entirely).
  g.add_compute("d", "work");
  g.add_dependency("b", "d", 64);
  const std::string mutated = cached.run().to_csv();
  EXPECT_NE(mutated, first);
  EXPECT_NE(mutated.find(",d,"), std::string::npos);
  EXPECT_EQ(Adequation(g, arch, t).run().to_csv(), mutated);

  // Duration mutation: critical-path priorities bake in kind means, so a
  // table edit must refresh them — again fresh-instance identical.
  t.set("work", OperatorKind::FpgaStatic, 9'000'000);
  EXPECT_EQ(cached.run().to_csv(), Adequation(g, arch, t).run().to_csv());
}

/// Property: random layered DAGs on the small platform always produce
/// valid schedules; makespan is at least the critical path of the fastest
/// operator.
class RandomAdequationTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomAdequationTest, RandomDagSchedulesValidly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  AlgorithmGraph g;
  const int layers = 4;
  const int per_layer = 3;
  std::vector<std::vector<std::string>> names(layers);
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      const std::string name = "op_" + std::to_string(l) + "_" + std::to_string(i);
      names[l].push_back(name);
      if (l == 0)
        g.add_operation({name, "src", {}, OpClass::Sensor, {}});
      else
        g.add_compute(name, "work");
    }
  }
  for (int l = 1; l < layers; ++l)
    for (int i = 0; i < per_layer; ++i) {
      // Each op depends on 1-2 ops of the previous layer.
      const int deps = 1 + static_cast<int>(rng.uniform_int(0, 1));
      for (int d = 0; d < deps; ++d)
        g.add_dependency(names[l - 1][static_cast<std::size_t>(rng.uniform_int(0, per_layer - 1))],
                         names[l][static_cast<std::size_t>(i)],
                         static_cast<Bytes>(rng.uniform_int(16, 256)));
  }

  const ArchitectureGraph arch = small_arch();
  const DurationTable t = simple_durations();
  const Schedule s = Adequation(g, arch, t).run();
  validate_schedule(s, g, arch);
  EXPECT_GE(s.makespan, 2'000 * layers);  // fastest-operator critical path
  EXPECT_EQ(s.placement_count(), g.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAdequationTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pdr::aaa
