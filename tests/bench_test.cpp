// The perf-harness contracts: generated DAGs are deterministic functions
// of their config (across runs and thread counts), structurally valid,
// and scheduled identically by both adequation engines; the BENCH_*.json
// emitter reports warm-up separately and never serializes statistics it
// does not have.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "bench/generators.hpp"
#include "bench/report.hpp"
#include "flow/scenario.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

using namespace pdr;
using bench::GeneratorConfig;
using bench::GraphShape;

namespace {

GeneratorConfig config_for(GraphShape shape, int n_ops, std::uint64_t seed = 17) {
  GeneratorConfig cfg;
  cfg.shape = shape;
  cfg.n_ops = n_ops;
  cfg.width = shape == GraphShape::Streaming ? 8 : 10;
  cfg.seed = seed;
  return cfg;
}

const GraphShape kShapes[] = {GraphShape::Layered, GraphShape::Random, GraphShape::Streaming};

}  // namespace

// --- generator determinism ---------------------------------------------------

TEST(Generators, SameConfigSameGraphAcrossRunsAndJobs) {
  for (const GraphShape shape : kShapes) {
    const GeneratorConfig cfg = config_for(shape, 400);
    const std::uint64_t serial = bench::graph_fingerprint(bench::generate_graph(cfg));
    EXPECT_EQ(serial, bench::graph_fingerprint(bench::generate_graph(cfg)))
        << bench::graph_shape_name(shape);

    // Generation inside the thread pool: every worker must see the same
    // bytes the serial run produced, whatever --jobs is.
    std::vector<flow::Scenario> scenarios;
    for (int i = 0; i < 6; ++i) {
      scenarios.push_back({"gen" + std::to_string(i), [cfg](flow::ObsSinks&) {
                             return strprintf(
                                 "%016llx", static_cast<unsigned long long>(
                                                bench::graph_fingerprint(bench::generate_graph(cfg))));
                           }});
    }
    const std::string serial_report =
        flow::ScenarioRunner(1).run(scenarios).combined_report();
    const std::string parallel_report =
        flow::ScenarioRunner(4).run(scenarios).combined_report();
    EXPECT_EQ(serial_report, parallel_report) << bench::graph_shape_name(shape);
    EXPECT_NE(serial_report.find(strprintf("%016llx", static_cast<unsigned long long>(serial))),
              std::string::npos);
  }
}

TEST(Generators, SeedChangesTheSampledShapes) {
  // Layered and random draw edges from the seed; a different seed must
  // produce a different graph.
  for (const GraphShape shape : {GraphShape::Layered, GraphShape::Random}) {
    const auto a = bench::graph_fingerprint(bench::generate_graph(config_for(shape, 400, 17)));
    const auto b = bench::graph_fingerprint(bench::generate_graph(config_for(shape, 400, 18)));
    EXPECT_NE(a, b) << bench::graph_shape_name(shape);
  }
}

TEST(Generators, FingerprintsArePinned) {
  // Golden fingerprints: a change here is a change to every recorded
  // BENCH_*.json workload, and must be deliberate.
  EXPECT_EQ(bench::graph_fingerprint(
                bench::generate_graph(config_for(GraphShape::Layered, 200))),
            UINT64_C(2028162454563604505));
  EXPECT_EQ(bench::graph_fingerprint(bench::generate_graph(config_for(GraphShape::Random, 200))),
            UINT64_C(12100041945145026664));
  EXPECT_EQ(bench::graph_fingerprint(
                bench::generate_graph(config_for(GraphShape::Streaming, 200))),
            UINT64_C(14921633622283046827));
}

// --- generated-graph validity ------------------------------------------------

TEST(Generators, GraphsValidateAtEverySizeAndShape) {
  for (const GraphShape shape : kShapes) {
    for (const int n : {50, 500, 2'000}) {
      const GeneratorConfig cfg = config_for(shape, n);
      const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
      SCOPED_TRACE(cfg.name());
      EXPECT_NO_THROW(g.validate());  // acyclic, sensor/actuator classes hold
      EXPECT_EQ(g.size(), static_cast<std::size_t>(n));
    }
  }
}

TEST(Generators, RandomAndStreamingHaveSingleSourceAndSink) {
  for (const GraphShape shape : {GraphShape::Random, GraphShape::Streaming}) {
    const GeneratorConfig cfg = config_for(shape, 500);
    const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
    SCOPED_TRACE(cfg.name());
    int sensors = 0;
    int actuators = 0;
    for (const graph::NodeId n : g.digraph().node_ids()) {
      if (g.op(n).cls == aaa::OpClass::Sensor) ++sensors;
      if (g.op(n).cls == aaa::OpClass::Actuator) ++actuators;
    }
    EXPECT_EQ(sensors, 1);
    EXPECT_EQ(actuators, 1);
    // Every operation sits on a source-to-sink path: all reachable from
    // the source (reachable_from excludes the start node itself), and
    // everything without successors IS the sink.
    EXPECT_EQ(g.digraph().reachable_from(g.by_name("op0")).size(), g.size() - 1);
    for (const graph::NodeId n : g.digraph().node_ids()) {
      if (g.digraph().out_degree(n) == 0) {
        EXPECT_EQ(g.op(n).cls, aaa::OpClass::Actuator) << g.op(n).name;
      }
    }
  }
}

TEST(Generators, ConditionedMixIsConfigurable) {
  GeneratorConfig cfg = config_for(GraphShape::Layered, 300);
  const aaa::AlgorithmGraph mixed = bench::generate_graph(cfg);
  int conditioned = 0;
  for (const graph::NodeId n : mixed.digraph().node_ids())
    if (mixed.op(n).conditioned()) ++conditioned;
  EXPECT_GT(conditioned, 0);

  cfg.conditioned_every = 0;  // disables the reconfiguration mix entirely
  const aaa::AlgorithmGraph plain = bench::generate_graph(cfg);
  for (const graph::NodeId n : plain.digraph().node_ids())
    EXPECT_FALSE(plain.op(n).conditioned());
}

// --- scheduler equivalence on generated workloads ----------------------------

TEST(Generators, AdequationEnginesAgreeOnEveryShape) {
  const aaa::ArchitectureGraph arch = bench::bench_architecture(4, 2);
  const aaa::DurationTable durations = bench::bench_durations();
  std::vector<GeneratorConfig> configs;
  for (const GraphShape shape : kShapes) configs.push_back(config_for(shape, 1'000));
  configs.push_back(config_for(GraphShape::Layered, 5'000));

  for (const GeneratorConfig& cfg : configs) {
    SCOPED_TRACE(cfg.name());
    const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
    const aaa::Adequation adequation(g, arch, durations);
    aaa::AdequationOptions heap_opts;
    heap_opts.ready_policy = aaa::ReadyPolicy::IndexedHeap;
    aaa::AdequationOptions rescan_opts;
    rescan_opts.ready_policy = aaa::ReadyPolicy::RescanReference;
    EXPECT_EQ(adequation.run(heap_opts).to_csv(), adequation.run(rescan_opts).to_csv());
  }
}

TEST(Generators, BenchArchitectureIsDeterministicAndValid) {
  const aaa::ArchitectureGraph a = bench::bench_architecture(4, 2);
  const aaa::ArchitectureGraph b = bench::bench_architecture(4, 2);
  EXPECT_EQ(a.to_dot(), b.to_dot());
  EXPECT_NO_THROW(a.validate());
}

// --- report schema -----------------------------------------------------------

TEST(BenchReport, MeasureReportsWarmupSeparately) {
  int calls = 0;
  const bench::BenchRecord rec = bench::measure("r", 2, 3, [&] { ++calls; });
  EXPECT_EQ(calls, 5);  // 2 warm-up + 3 timed
  EXPECT_EQ(rec.warmup_runs, 2);
  EXPECT_GE(rec.warmup_ms, 0.0);
  EXPECT_EQ(rec.wall_ms.count(), 3u);  // warm-up never enters the samples
}

TEST(BenchReport, JsonGatesStatisticsOnSampleCount) {
  bench::BenchRecord empty;
  empty.name = "empty";
  const std::string empty_json = bench::bench_json("t", true, {empty});
  EXPECT_NE(empty_json.find("\"wall_ms\": {\"count\": 0}"), std::string::npos);
  EXPECT_EQ(empty_json.find("mean"), std::string::npos);

  bench::BenchRecord one;
  one.name = "one";
  one.wall_ms.add(4.5);
  const std::string one_json = bench::bench_json("t", true, {one});
  EXPECT_NE(one_json.find("\"mean\": 4.5"), std::string::npos);
  EXPECT_EQ(one_json.find("stddev"), std::string::npos);  // needs >= 2 samples

  bench::BenchRecord three;
  three.name = "three";
  for (double v : {1.0, 2.0, 3.0}) three.wall_ms.add(v);
  const std::string three_json = bench::bench_json("t", false, {three});
  EXPECT_NE(three_json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(three_json.find("stddev"), std::string::npos);
  EXPECT_NE(three_json.find("\"min\": 1"), std::string::npos);
  EXPECT_NE(three_json.find("\"max\": 3"), std::string::npos);
}

TEST(BenchReport, JsonRejectsNonFiniteNumbers) {
  bench::BenchRecord rec;
  rec.name = "bad";
  rec.wall_ms.add(1.0);
  rec.extra.emplace_back("rate", std::numeric_limits<double>::infinity());
  EXPECT_THROW(bench::bench_json("t", false, {rec}), Error);
}
