# Black-box schema check of `pdrflow check --json`: run the checker over
# shipped examples (clean, shallow and --deep) and a crafted-bad fixture
# (fails lint but must still emit a valid document), then validate every
# captured document with tools/check_lint_json.py. Invoked by the
# cli_check_json_schema ctest entry with -DPDRFLOW=<path>
# -DPYTHON3=<path> -DCHECKER=<script> -DSOURCE_DIR=<repo> -DOUT_DIR=<dir>.
file(MAKE_DIRECTORY ${OUT_DIR})

set(documents "")
# input file | output name | depth (shallow / deep)
set(cases
    "${SOURCE_DIR}/examples/mccdma.constraints|constraints.json|shallow"
    "${SOURCE_DIR}/examples/demo_tx.project|project.json|shallow"
    "${SOURCE_DIR}/examples/demo_tx.project|project_deep.json|deep"
    "${SOURCE_DIR}/tests/fixtures/lint/pdr001_duplicate_region.constraints|bad_fixture.json|shallow"
    "${SOURCE_DIR}/tests/fixtures/lint/pdr001_duplicate_region.constraints|bad_fixture_deep.json|deep")

foreach(case IN LISTS cases)
  string(REPLACE "|" ";" parts "${case}")
  list(GET parts 0 input)
  list(GET parts 1 outname)
  list(GET parts 2 depth)
  set(flags "")
  if(depth STREQUAL "deep")
    set(flags "--deep")
  endif()
  set(out ${OUT_DIR}/${outname})
  # A failing lint (exit 1) is expected for the bad fixture; only a crash
  # or usage error (exit > 1) is a harness failure here.
  execute_process(COMMAND ${PDRFLOW} check --json ${flags} ${input}
                  OUTPUT_FILE ${out} RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(rc GREATER 1)
    message(FATAL_ERROR "pdrflow check --json ${flags} ${input} crashed (exit ${rc}):\n${err}")
  endif()
  list(APPEND documents ${out})
endforeach()

execute_process(COMMAND ${PYTHON3} ${CHECKER} ${documents}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_lint_json.py rejected the documents:\n${out}${err}")
endif()
message(STATUS "${out}")
