#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/codegen_c.hpp"
#include "aaa/codegen_m4.hpp"
#include "aaa/codegen_vhdl.hpp"
#include "aaa/durations.hpp"
#include "aaa/macrocode.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pdr::aaa {
namespace {

using namespace pdr::literals;

struct Fixture {
  AlgorithmGraph algo;
  ArchitectureGraph arch;
  DurationTable durations;
  Schedule schedule;
  Executive executive;

  Fixture() {
    algo.add_operation({"src", "bit_source", {}, OpClass::Sensor, {}});
    algo.add_conditioned("mod", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
    algo.add_compute("fft", "ifft", {{"n", 64}});
    algo.add_operation({"out", "interface_in_out", {}, OpClass::Actuator, {}});
    algo.add_dependency("src", "mod", 16);
    algo.add_dependency("mod", "fft", 64);
    algo.add_dependency("fft", "out", 256);

    arch = make_sundance_architecture();
    durations = mccdma_durations();

    Adequation adequation(algo, arch, durations);
    adequation.pin("mod", "D1");
    adequation.pin("src", "DSP");  // force DSP participation + transfers
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 4_ms; });
    schedule = adequation.run();
    validate_schedule(schedule, algo, arch);
    executive = generate_executive(schedule, algo, arch);
  }
};

TEST(Macrocode, EveryArchitectureVertexHasProgram) {
  const Fixture f;
  EXPECT_EQ(f.executive.programs.size(), 5u);  // DSP, F1, D1, SHB, LIO
  for (const char* name : {"DSP", "F1", "D1", "SHB", "LIO"})
    EXPECT_NO_THROW(f.executive.program(name)) << name;
  EXPECT_THROW(f.executive.program("nope"), pdr::Error);
}

TEST(Macrocode, ComputeCountsMatchSchedule) {
  const Fixture f;
  int computes = 0, reconfigs = 0, moves = 0, sends = 0, recvs = 0;
  for (const auto& p : f.executive.programs)
    for (const auto& i : p.body) {
      if (i.op == MacroOp::Compute) ++computes;
      if (i.op == MacroOp::Reconfig) ++reconfigs;
      if (i.op == MacroOp::Move) ++moves;
      if (i.op == MacroOp::Send) ++sends;
      if (i.op == MacroOp::Recv) ++recvs;
    }
  EXPECT_EQ(computes, 4);
  EXPECT_EQ(reconfigs, f.schedule.reconfig_count);
  EXPECT_EQ(sends, moves);
  EXPECT_EQ(recvs, moves);
}

TEST(Macrocode, RecvPrecedesComputeOnConsumer) {
  const Fixture f;
  const MacroProgram& d1 = f.executive.program("D1");
  int recv_at = -1, compute_at = -1;
  for (std::size_t i = 0; i < d1.body.size(); ++i) {
    if (d1.body[i].op == MacroOp::Recv && recv_at < 0) recv_at = static_cast<int>(i);
    if (d1.body[i].op == MacroOp::Compute) compute_at = static_cast<int>(i);
  }
  ASSERT_GE(recv_at, 0);
  ASSERT_GE(compute_at, 0);
  EXPECT_LT(recv_at, compute_at);
}

TEST(Macrocode, MediumProgramsOnlyMove) {
  const Fixture f;
  for (const char* m : {"SHB", "LIO"}) {
    const MacroProgram& p = f.executive.program(m);
    EXPECT_TRUE(p.is_medium);
    for (const auto& i : p.body) EXPECT_EQ(i.op, MacroOp::Move);
    EXPECT_FALSE(p.body.empty()) << m;
  }
}

TEST(Macrocode, ToStringListsInstructions) {
  const Fixture f;
  const std::string s = f.executive.to_string();
  EXPECT_NE(s.find("operator F1"), std::string::npos);
  EXPECT_NE(s.find("loop:"), std::string::npos);
  EXPECT_NE(s.find("compute"), std::string::npos);
}

// --- VHDL -----------------------------------------------------------------------

TEST(VhdlCodegen, PackageDeclaresTypes) {
  const std::string pkg = generate_vhdl_package();
  EXPECT_NE(pkg.find("package pdr_executive"), std::string::npos);
  EXPECT_NE(pkg.find("handshake_t"), std::string::npos);
}

TEST(VhdlCodegen, EntityHasFourDedicatedProcesses) {
  const Fixture f;
  const OperatorNode& f1 = f.arch.op(f.arch.by_name("F1"));
  const std::string vhdl = generate_vhdl_entity(f.executive.program("F1"), f1);
  // The paper's four processes (§5).
  EXPECT_NE(vhdl.find("comm_sequencer : process"), std::string::npos);
  EXPECT_NE(vhdl.find("compute_sequencer : process"), std::string::npos);
  EXPECT_NE(vhdl.find("operator_behaviour : process"), std::string::npos);
  EXPECT_NE(vhdl.find("buffer_phase_ctrl : process"), std::string::npos);
  EXPECT_NE(vhdl.find("entity F1 is"), std::string::npos);
  EXPECT_NE(vhdl.find("end architecture executive;"), std::string::npos);
}

TEST(VhdlCodegen, DynamicRegionGetsInReconfAndBusMacros) {
  const Fixture f;
  const OperatorNode& d1 = f.arch.op(f.arch.by_name("D1"));
  VhdlOptions options;
  options.bus_macro_count = 3;
  const std::string vhdl = generate_vhdl_entity(f.executive.program("D1"), d1, options);
  EXPECT_NE(vhdl.find("in_reconf : in std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find("bus macro 2"), std::string::npos);
}

TEST(VhdlCodegen, StaticPartCanEmbedReconfigManager) {
  const Fixture f;
  const OperatorNode& f1 = f.arch.op(f.arch.by_name("F1"));
  VhdlOptions options;
  options.embed_reconfig_manager = true;
  const std::string vhdl = generate_vhdl_entity(f.executive.program("F1"), f1, options);
  EXPECT_NE(vhdl.find("u_config_manager"), std::string::npos);
  EXPECT_NE(vhdl.find("u_protocol_builder"), std::string::npos);
  EXPECT_NE(vhdl.find("cfg_data"), std::string::npos);
}

TEST(VhdlCodegen, SequencersAreRealFsms) {
  const Fixture f;
  const OperatorNode& d1 = f.arch.op(f.arch.by_name("D1"));
  const std::string vhdl = generate_vhdl_entity(f.executive.program("D1"), d1);
  // Communication sequencer: a case FSM handshaking each buffer.
  EXPECT_NE(vhdl.find("case comm_step is"), std::string::npos);
  EXPECT_NE(vhdl.find("_in.req = '1'"), std::string::npos);
  EXPECT_NE(vhdl.find("when others => comm_step <= 0;"), std::string::npos);
  // Computation sequencer: start/done chaining, frozen by in_reconf.
  EXPECT_NE(vhdl.find("case compute_step is"), std::string::npos);
  EXPECT_NE(vhdl.find("elsif in_reconf = '1' then"), std::string::npos);
  EXPECT_NE(vhdl.find("start_"), std::string::npos);
  EXPECT_NE(vhdl.find("done_"), std::string::npos);
}

TEST(VhdlCodegen, StaticPartSequencerNotLockedByReconf) {
  const Fixture f;
  const OperatorNode& f1 = f.arch.op(f.arch.by_name("F1"));
  const std::string vhdl = generate_vhdl_entity(f.executive.program("F1"), f1);
  EXPECT_EQ(vhdl.find("elsif in_reconf"), std::string::npos);
}

TEST(VhdlCodegen, HandshakePortsPerBuffer) {
  const Fixture f;
  const OperatorNode& d1 = f.arch.op(f.arch.by_name("D1"));
  const std::string vhdl = generate_vhdl_entity(f.executive.program("D1"), d1);
  EXPECT_NE(vhdl.find("_in : in handshake_t"), std::string::npos);
  EXPECT_NE(vhdl.find("_out : out handshake_t"), std::string::npos);
}

TEST(VhdlCodegen, ProcessorRejected) {
  const Fixture f;
  const OperatorNode& dsp = f.arch.op(f.arch.by_name("DSP"));
  EXPECT_THROW(generate_vhdl_entity(f.executive.program("DSP"), dsp), pdr::Error);
}

TEST(VhdlCodegen, MediumRejected) {
  const Fixture f;
  const OperatorNode& f1 = f.arch.op(f.arch.by_name("F1"));
  EXPECT_THROW(generate_vhdl_entity(f.executive.program("SHB"), f1), pdr::Error);
}

TEST(VhdlCodegen, TopLevelInstantiatesFpgaOperators) {
  const Fixture f;
  const ConstraintSet cset;
  const std::string top = generate_vhdl_top(f.executive, f.arch, cset);
  EXPECT_NE(top.find("entity design_top"), std::string::npos);
  EXPECT_NE(top.find("u_F1"), std::string::npos);
  EXPECT_NE(top.find("u_D1"), std::string::npos);
  EXPECT_EQ(top.find("u_DSP"), std::string::npos);  // processors are not FPGA entities
  EXPECT_NE(top.find("reconfigurable region D1"), std::string::npos);
}

// --- C ---------------------------------------------------------------------------

TEST(CCodegen, ExecutiveLoopWithSendRecv) {
  const Fixture f;
  const OperatorNode& dsp = f.arch.op(f.arch.by_name("DSP"));
  ConstraintSet cset;
  const std::string c = generate_c_executive(f.executive.program("DSP"), dsp, cset);
  EXPECT_NE(c.find("void executive_DSP(void)"), std::string::npos);
  EXPECT_NE(c.find("for (;;)"), std::string::npos);
  EXPECT_NE(c.find("medium_send"), std::string::npos);
  EXPECT_NE(c.find("op_src"), std::string::npos);
}

TEST(CCodegen, CpuManagerEmitsIsr) {
  const Fixture f;
  const OperatorNode& dsp = f.arch.op(f.arch.by_name("DSP"));
  ConstraintSet cset;
  cset.manager = Placement::Cpu;
  cset.port = PortChoice::SelectMap;
  const std::string c = generate_c_executive(f.executive.program("DSP"), dsp, cset);
  EXPECT_NE(c.find("reconfig_isr"), std::string::npos);
  EXPECT_NE(c.find("selectmap_feed"), std::string::npos);
}

TEST(CCodegen, FpgaManagerOmitsIsr) {
  const Fixture f;
  const OperatorNode& dsp = f.arch.op(f.arch.by_name("DSP"));
  ConstraintSet cset;  // manager defaults to fpga
  const std::string c = generate_c_executive(f.executive.program("DSP"), dsp, cset);
  EXPECT_EQ(c.find("reconfig_isr"), std::string::npos);
}

TEST(CCodegen, FpgaOperatorRejected) {
  const Fixture f;
  const OperatorNode& f1 = f.arch.op(f.arch.by_name("F1"));
  ConstraintSet cset;
  EXPECT_THROW(generate_c_executive(f.executive.program("F1"), f1, cset), pdr::Error);
}

// --- m4 (SynDEx's native macro-code form) --------------------------------------

TEST(M4Codegen, OperatorFileHasLoopAndMacros) {
  const Fixture f;
  const std::string m4 = generate_m4_macrocode(f.executive.program("D1"), f.arch);
  EXPECT_NE(m4.find("processor_(D1, fpga_region)"), std::string::npos);
  EXPECT_NE(m4.find("main_"), std::string::npos);
  EXPECT_NE(m4.find("loop_"), std::string::npos);
  EXPECT_NE(m4.find("endloop_"), std::string::npos);
  EXPECT_NE(m4.find("compute_("), std::string::npos);
  EXPECT_NE(m4.find("reconf_("), std::string::npos);
  EXPECT_NE(m4.find("recv_("), std::string::npos);
}

TEST(M4Codegen, MediumFileUsesMoveMacros) {
  const Fixture f;
  const std::string m4 = generate_m4_macrocode(f.executive.program("SHB"), f.arch);
  EXPECT_NE(m4.find("media_(SHB)"), std::string::npos);
  EXPECT_NE(m4.find("move_("), std::string::npos);
  EXPECT_EQ(m4.find("compute_("), std::string::npos);
}

TEST(M4Codegen, ApplicationIndexDeclaresEverything) {
  const Fixture f;
  const std::string m4 = generate_m4_application(f.executive, f.arch, "mccdma_tx");
  EXPECT_NE(m4.find("application_(mccdma_tx)"), std::string::npos);
  for (const char* name : {"DSP", "F1", "D1", "SHB", "LIO"})
    EXPECT_NE(m4.find(name), std::string::npos) << name;
  EXPECT_NE(m4.find("include_(F1.m4)"), std::string::npos);
}

TEST(M4Codegen, UnknownResourceRejected) {
  const Fixture f;
  MacroProgram ghost;
  ghost.resource = "GHOST";
  EXPECT_THROW(generate_m4_macrocode(ghost, f.arch), pdr::Error);
}

}  // namespace
}  // namespace pdr::aaa
