#include <gtest/gtest.h>

#include "aaa/constraints.hpp"
#include "util/error.hpp"

namespace pdr::aaa {
namespace {

const char* kGood = R"(
# full-featured constraints file
device XC2V2000
port selectmap
manager cpu
builder fpga
prefetch history

region D1 {
  width 5
  margin 1
  seu_budget 20
}
region D2 {
  width auto
}

dynamic qpsk {
  region D1
  kind qpsk_mapper
  load startup
  unload eager
}
dynamic qam16 {
  region D1
  kind qam16_mapper
  param n 64
  param width 16
}
dynamic filt {
  region D2
  kind fir
  param taps 16
}

exclude qpsk qam16
relation qpsk then qam16
relation qam16 then qpsk
)";

TEST(Constraints, ParsesFullExample) {
  const ConstraintSet set = parse_constraints(kGood);
  EXPECT_EQ(set.device, "XC2V2000");
  EXPECT_EQ(set.port, PortChoice::SelectMap);
  EXPECT_EQ(set.manager, Placement::Cpu);
  EXPECT_EQ(set.builder, Placement::Fpga);
  EXPECT_EQ(set.prefetch, PrefetchChoice::History);
  ASSERT_EQ(set.regions.size(), 2u);
  EXPECT_EQ(set.regions[0].width, 5);
  EXPECT_EQ(set.regions[0].margin, 1);
  EXPECT_EQ(set.regions[0].seu_budget_ms, 20);
  EXPECT_EQ(set.regions[1].width, -1);
  EXPECT_EQ(set.regions[1].seu_budget_ms, -1);  // no budget by default
  ASSERT_EQ(set.modules.size(), 3u);
  EXPECT_EQ(set.modules[0].load, LoadPolicy::Startup);
  EXPECT_EQ(set.modules[0].unload, UnloadPolicy::Eager);
  EXPECT_EQ(set.modules[1].params.at("n"), 64);
  EXPECT_EQ(set.modules[1].params.at("width"), 16);
  ASSERT_EQ(set.exclusions.size(), 1u);
  EXPECT_EQ(set.exclusions[0], (std::pair<std::string, std::string>{"qpsk", "qam16"}));
  ASSERT_EQ(set.relations.size(), 2u);
}

TEST(Constraints, LookupHelpers) {
  const ConstraintSet set = parse_constraints(kGood);
  EXPECT_NE(set.find_region("D1"), nullptr);
  EXPECT_EQ(set.find_region("D9"), nullptr);
  EXPECT_NE(set.find_module("qpsk"), nullptr);
  EXPECT_EQ(set.find_module("zzz"), nullptr);
  EXPECT_EQ(set.modules_of("D1").size(), 2u);
  EXPECT_EQ(set.modules_of("D2").size(), 1u);
}

TEST(Constraints, WriteParseRoundTrip) {
  const ConstraintSet a = parse_constraints(kGood);
  const ConstraintSet b = parse_constraints(write_constraints(a));
  EXPECT_EQ(b.device, a.device);
  EXPECT_EQ(b.port, a.port);
  EXPECT_EQ(b.manager, a.manager);
  EXPECT_EQ(b.prefetch, a.prefetch);
  EXPECT_EQ(b.regions.size(), a.regions.size());
  EXPECT_EQ(b.regions[0].seu_budget_ms, a.regions[0].seu_budget_ms);
  EXPECT_EQ(b.modules.size(), a.modules.size());
  EXPECT_EQ(b.modules[1].params, a.modules[1].params);
  EXPECT_EQ(b.exclusions, a.exclusions);
  EXPECT_EQ(b.relations, a.relations);
}

TEST(Constraints, SliceColumnWidthsParseAndRoundTrip) {
  // S1 units bugfix: `width 4sc` authors the region in slice columns
  // (the unit the Modular Design rules speak); the CLB-column equivalent
  // is derived by rounding up, and the writer preserves the authored
  // unit.
  const char* text =
      "device XC2V2000\n"
      "region D1 { width 4sc }\n"
      "dynamic qpsk { region D1 kind qpsk_mapper }\n";
  const ConstraintSet set = parse_constraints(text);
  ASSERT_EQ(set.regions.size(), 1u);
  EXPECT_EQ(set.regions[0].width_slice_cols, 4);
  EXPECT_EQ(set.regions[0].width, 2);  // 4 slice cols = 2 CLB cols
  const std::string written = write_constraints(set);
  EXPECT_NE(written.find("width 4sc"), std::string::npos) << written;
  const ConstraintSet again = parse_constraints(written);
  EXPECT_EQ(again.regions[0].width_slice_cols, 4);
  EXPECT_EQ(again.regions[0].width, 2);
}

TEST(Constraints, SliceColumnWidthBelowMinimumRejected) {
  // 3sc parses but fails validate() with PDR021: below the 4-slice-column
  // Modular Design floor (and not even a whole number of CLB columns).
  const char* text =
      "device XC2V2000\n"
      "region D1 { width 3sc }\n"
      "dynamic qpsk { region D1 kind qpsk_mapper }\n";
  try {
    (void)parse_constraints(text);
    FAIL() << "width 3sc must fail validation";
  } catch (const pdr::Error& e) {
    EXPECT_NE(std::string(e.what()).find("PDR021"), std::string::npos) << e.what();
  }
  // Parse-only (validate=false) keeps the authored value for linting.
  const ConstraintSet raw = parse_constraints(text, /*validate=*/false);
  EXPECT_EQ(raw.regions[0].width_slice_cols, 3);
}

TEST(Constraints, CommentsAndBlankLinesIgnored) {
  const ConstraintSet set = parse_constraints(
      "# leading comment\n\ndevice XC2V1000   # trailing comment\n"
      "region R { width 2 }\ndynamic m { region R\n kind fir }\n");
  EXPECT_EQ(set.device, "XC2V1000");
  EXPECT_EQ(set.regions.size(), 1u);
}

struct BadCase {
  const char* label;
  const char* text;
};

class BadConstraintsTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(BadConstraintsTest, RejectedWithLineNumber) {
  try {
    parse_constraints(GetParam().text);
    FAIL() << GetParam().label;
  } catch (const pdr::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadConstraintsTest,
    ::testing::Values(
        BadCase{"unknown_directive", "frobnicate yes\n"},
        BadCase{"bad_port", "port usb\n"},
        BadCase{"bad_placement", "manager gpu\n"},
        BadCase{"bad_prefetch", "prefetch psychic\n"},
        BadCase{"missing_arg", "device\n"},
        BadCase{"unterminated_block", "region D1 {\n  width 2\n"},
        BadCase{"missing_brace", "region D1\n"},
        BadCase{"bad_int", "region D1 {\n  width five\n}\ndynamic m { region D1\n kind fir }\n"},
        BadCase{"zero_seu_budget",
                "region D1 {\n  width 2\n  seu_budget 0\n}\ndynamic m { region D1\n kind fir }\n"},
        BadCase{"negative_seu_budget",
                "region D1 {\n  width 2\n  seu_budget -5\n}\ndynamic m { region D1\n kind fir }\n"},
        BadCase{"bad_load", "region D1 { width 2 }\ndynamic m {\n region D1\n kind fir\n load maybe\n}\n"},
        BadCase{"bad_relation_keyword",
                "region D1 { width 2 }\ndynamic a { region D1\n kind fir }\n"
                "dynamic b { region D1\n kind fir }\nrelation a before b\n"}),
    [](const ::testing::TestParamInfo<BadCase>& info) { return info.param.label; });

TEST(Constraints, ValidationCatchesDanglingReferences) {
  // Module in unknown region.
  EXPECT_THROW(parse_constraints("dynamic m {\n region ghost\n kind fir\n}\n"), pdr::Error);
  // Region without modules.
  EXPECT_THROW(parse_constraints("region D1 { width 2 }\n"), pdr::Error);
  // Exclusion of unknown module.
  EXPECT_THROW(parse_constraints("region D1 { width 2 }\ndynamic m { region D1\n kind fir }\n"
                                 "exclude m ghost\n"),
               pdr::Error);
  // Self exclusion.
  EXPECT_THROW(parse_constraints("region D1 { width 2 }\ndynamic m { region D1\n kind fir }\n"
                                 "exclude m m\n"),
               pdr::Error);
  // Duplicate module.
  EXPECT_THROW(parse_constraints("region D1 { width 2 }\ndynamic m { region D1\n kind fir }\n"
                                 "dynamic m { region D1\n kind fir }\n"),
               pdr::Error);
}

TEST(Constraints, KeywordNames) {
  EXPECT_STREQ(to_keyword(PortChoice::Icap), "icap");
  EXPECT_STREQ(to_keyword(Placement::Cpu), "cpu");
  EXPECT_STREQ(to_keyword(PrefetchChoice::Schedule), "schedule");
  EXPECT_STREQ(to_keyword(LoadPolicy::Startup), "startup");
  EXPECT_STREQ(to_keyword(UnloadPolicy::Lazy), "lazy");
}

TEST(Constraints, DefaultsMatchPaperCaseA) {
  const ConstraintSet set;
  EXPECT_EQ(set.port, PortChoice::Icap);
  EXPECT_EQ(set.manager, Placement::Fpga);
  EXPECT_EQ(set.builder, Placement::Fpga);
  EXPECT_EQ(set.prefetch, PrefetchChoice::Schedule);
}

}  // namespace
}  // namespace pdr::aaa
