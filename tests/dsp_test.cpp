#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dsp/convcode.hpp"
#include "dsp/crc.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/fixed.hpp"
#include "dsp/gray.hpp"
#include "dsp/prbs.hpp"
#include "dsp/walsh.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pdr::dsp {
namespace {

// --- fixed point -------------------------------------------------------------

TEST(Q15, ConversionRoundTrip) {
  EXPECT_NEAR(Q15::from_double(0.5).to_double(), 0.5, 1e-4);
  EXPECT_NEAR(Q15::from_double(-0.25).to_double(), -0.25, 1e-4);
  EXPECT_EQ(Q15::from_double(0.0).raw(), 0);
}

TEST(Q15, SaturatesAtBounds) {
  EXPECT_EQ(Q15::from_double(2.0).raw(), 32767);
  EXPECT_EQ(Q15::from_double(-2.0).raw(), -32768);
  const Q15 big = Q15::from_double(0.9);
  EXPECT_EQ((big + big).raw(), 32767);  // 1.8 saturates
}

TEST(Q15, Multiplication) {
  const Q15 half = Q15::from_double(0.5);
  EXPECT_NEAR((half * half).to_double(), 0.25, 1e-3);
  const Q15 neg = Q15::from_double(-0.5);
  EXPECT_NEAR((half * neg).to_double(), -0.25, 1e-3);
}

TEST(Q15, NegationSaturatesMin) {
  EXPECT_EQ((-Q15::from_raw(-32768)).raw(), 32767);
  EXPECT_EQ((-Q15::from_double(0.5)).to_double(), -0.5);
}

TEST(CQ15, ComplexMultiply) {
  const CQ15 i{Q15::from_double(0.0), Q15::from_double(0.5)};
  const CQ15 sq = i * i;  // (0.5j)^2 = -0.25
  EXPECT_NEAR(sq.re.to_double(), -0.25, 1e-3);
  EXPECT_NEAR(sq.im.to_double(), 0.0, 1e-3);
}

// --- fft -----------------------------------------------------------------------

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, RoundTripRestoresInput) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto y = fft_copy(x);
  ifft(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST_P(FftSizeTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 1);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto y = fft_copy(x);
  double ex = 0, ey = 0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * static_cast<double>(n), 1e-6 * ex * n);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Cplx> x(8, Cplx{0, 0});
  x[0] = {1, 0};
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const std::size_t n = 64;
  const std::size_t k = 5;
  std::vector<Cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * M_PI * k * i / n;
    x[i] = {std::cos(ph), std::sin(ph)};
  }
  fft(x);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = std::abs(x[i]);
    if (i == k)
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(mag, 0.0, 1e-9);
  }
}

TEST(Fft, Linearity) {
  Rng rng(3);
  std::vector<Cplx> a(32), b(32), sum(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    b[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    sum[i] = a[i] + 2.0 * b[i];
  }
  const auto fa = fft_copy(a);
  const auto fb = fft_copy(b);
  const auto fs = fft_copy(sum);
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_NEAR(std::abs(fs[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Cplx> x(6);
  EXPECT_THROW(fft(x), Error);
}

TEST(Fft, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_pow2(64), 6u);
}

// --- fir design + filtering -----------------------------------------------------

TEST(Fir, LowpassUnitDcGainAndStopband) {
  const auto taps = lowpass_taps(63, 0.1);
  const auto mag = magnitude_response(taps, 101);
  EXPECT_NEAR(mag[0], 1.0, 1e-9);     // DC gain
  EXPECT_GT(mag[10], 0.7);            // passband (f=0.05)
  EXPECT_LT(mag[60], 0.05);           // stopband (f=0.30)
  EXPECT_LT(mag[100], 0.05);          // Nyquist
}

TEST(Fir, HighpassMirrorsLowpass) {
  const auto taps = highpass_taps(63, 0.3);
  const auto mag = magnitude_response(taps, 101);
  EXPECT_LT(mag[0], 1e-6);   // DC blocked
  EXPECT_NEAR(mag[100], 1.0, 0.05);  // Nyquist passed
  EXPECT_LT(mag[20], 0.05);  // stopband (f=0.10)
}

TEST(Fir, FilterSeparatesTones) {
  // low tone + high tone in, low-pass out: high tone attenuated > 20 dB.
  const std::size_t n = 2048;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = std::sin(2 * M_PI * 0.02 * t) + std::sin(2 * M_PI * 0.4 * t);
  }
  const auto y = fir_filter(x, lowpass_taps(101, 0.1));
  // Spectral check via FFT (skip the filter's transient head).
  std::vector<Cplx> spec(1024);
  for (std::size_t i = 0; i < spec.size(); ++i) spec[i] = {y[n - 1024 + i], 0.0};
  fft(spec);
  const auto bin = [&](double f) { return std::abs(spec[static_cast<std::size_t>(f * 1024)]); };
  EXPECT_GT(bin(0.02), 100.0 * bin(0.4));
}

TEST(Fir, LinearPhaseSymmetry) {
  const auto taps = lowpass_taps(31, 0.2);
  for (std::size_t i = 0; i < taps.size() / 2; ++i)
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12);
}

TEST(Fir, ImpulseResponseIsTaps) {
  const auto taps = lowpass_taps(15, 0.25);
  std::vector<double> impulse(20, 0.0);
  impulse[0] = 1.0;
  const auto y = fir_filter(impulse, taps);
  for (std::size_t i = 0; i < taps.size(); ++i) EXPECT_NEAR(y[i], taps[i], 1e-15);
}

TEST(Fir, ArgumentValidation) {
  EXPECT_THROW(lowpass_taps(4, 0.1), Error);    // even
  EXPECT_THROW(lowpass_taps(15, 0.0), Error);   // cutoff low
  EXPECT_THROW(lowpass_taps(15, 0.5), Error);   // cutoff high
  std::vector<double> x(4);
  EXPECT_THROW(fir_filter(x, {}), Error);
  EXPECT_THROW(magnitude_response(std::vector<double>{1.0}, 1), Error);
}

// --- fixed-point fft -----------------------------------------------------------

class FixedFftTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FixedFftTest, ForwardMatchesScaledFloatReference) {
  const std::size_t n = GetParam();
  Rng rng(n * 3 + 1);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-0.9, 0.9), rng.uniform(-0.9, 0.9)};

  auto q = to_q15(x);
  fft_q15(q, /*inverse=*/false);
  const auto fixed = from_q15(q);

  auto reference = fft_copy(x);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (auto& v : reference) v *= inv_n;  // fft_q15 forward = FFT/N

  // Error budget: ~1 LSB per stage of rounding.
  const double tol = 3e-5 * static_cast<double>(log2_pow2(n) + 1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fixed[i] - reference[i]), 0.0, tol) << "bin " << i << " n " << n;
}

TEST_P(FixedFftTest, InverseMatchesFloatIfft) {
  const std::size_t n = GetParam();
  Rng rng(n * 5 + 2);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-0.9, 0.9), rng.uniform(-0.9, 0.9)};

  auto q = to_q15(x);
  fft_q15(q, /*inverse=*/true);
  const auto fixed = from_q15(q);
  const auto reference = ifft_copy(x);

  const double tol = 3e-5 * static_cast<double>(log2_pow2(n) + 1);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fixed[i] - reference[i]), 0.0, tol);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FixedFftTest, ::testing::Values(2, 8, 64, 256));

TEST(FixedFft, NeverOverflowsOnFullScaleInput) {
  // Worst case: all samples at the Q15 rails. Per-stage halving keeps
  // every intermediate within range (no saturation should be needed, but
  // saturation guards it regardless).
  std::vector<CQ15> q(64, CQ15{Q15::from_raw(32767), Q15::from_raw(-32768)});
  fft_q15(q, false);
  // DC bin = mean of inputs; everything else ~0.
  EXPECT_NEAR(q[0].re.to_double(), 1.0, 1e-3);
  EXPECT_NEAR(q[0].im.to_double(), -1.0, 1e-3);
}

TEST(FixedFft, RejectsNonPowerOfTwo) {
  std::vector<CQ15> q(12);
  EXPECT_THROW(fft_q15(q, false), Error);
}

TEST(FixedFft, ConversionRoundTrip) {
  Rng rng(9);
  std::vector<Cplx> x(16);
  for (auto& v : x) v = {rng.uniform(-0.99, 0.99), rng.uniform(-0.99, 0.99)};
  const auto back = from_q15(to_q15(x));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-4);
}

// --- gray ---------------------------------------------------------------------

TEST(Gray, RoundTrip) {
  for (std::uint32_t i = 0; i < 4096; ++i) EXPECT_EQ(gray_decode(gray_encode(i)), i);
}

TEST(Gray, AdjacentCodesDifferInOneBit) {
  for (std::uint32_t i = 0; i + 1 < 1024; ++i) {
    const auto diff = gray_encode(i) ^ gray_encode(i + 1);
    EXPECT_EQ(__builtin_popcount(diff), 1);
  }
}

// --- walsh --------------------------------------------------------------------

class WalshLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WalshLengthTest, DistinctCodesOrthogonal) {
  const std::size_t n = GetParam();
  const auto m = hadamard_matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const long dot = walsh_dot(m[i], m[j]);
      if (i == j)
        EXPECT_EQ(dot, static_cast<long>(n));
      else
        EXPECT_EQ(dot, 0);
    }
  }
}

TEST_P(WalshLengthTest, EntriesArePlusMinusOne) {
  const std::size_t n = GetParam();
  for (std::size_t k = 0; k < n; ++k)
    for (int v : walsh_code(n, k)) EXPECT_TRUE(v == 1 || v == -1);
}

INSTANTIATE_TEST_SUITE_P(Lengths, WalshLengthTest, ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(Walsh, CodeZeroIsAllOnes) {
  for (int v : walsh_code(16, 0)) EXPECT_EQ(v, 1);
}

TEST(Walsh, RejectsBadArguments) {
  EXPECT_THROW(walsh_code(12, 0), Error);
  EXPECT_THROW(walsh_code(16, 16), Error);
  EXPECT_THROW(walsh_dot({1, 1}, {1}), Error);
}

// --- prbs --------------------------------------------------------------------

TEST(Prbs, Prbs7HasFullPeriod) {
  Prbs p(Prbs::Kind::Prbs7);
  EXPECT_EQ(p.period(), 127u);
  const auto first = p.bits(127);
  const auto second = p.bits(127);
  EXPECT_EQ(first, second);  // exact repetition after one period
  // Not all-equal within a period.
  EXPECT_NE(std::accumulate(first.begin(), first.end(), 0), 0);
  EXPECT_NE(std::accumulate(first.begin(), first.end(), 0), 127);
}

TEST(Prbs, BalancedWithinPeriod) {
  Prbs p(Prbs::Kind::Prbs7);
  const auto bits = p.bits(127);
  const int ones = std::accumulate(bits.begin(), bits.end(), 0);
  EXPECT_EQ(ones, 64);  // maximal LFSR: 2^(n-1) ones
}

TEST(Prbs, SeedsProduceShiftedSequences) {
  Prbs a(Prbs::Kind::Prbs15, 1), b(Prbs::Kind::Prbs15, 77);
  const auto x = a.bits(64);
  const auto y = b.bits(64);
  EXPECT_NE(x, y);
}

TEST(Prbs, ZeroSeedRejected) { EXPECT_THROW(Prbs(Prbs::Kind::Prbs7, 0), Error); }

// --- crc ---------------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  Rng rng(17);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  Crc32 inc;
  inc.update(std::span(data).subspan(0, 100));
  inc.update(std::span(data).subspan(100));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xa5);
  const auto before = crc32(data);
  data[13] ^= 0x04;
  EXPECT_NE(crc32(data), before);
}

TEST(Crc32, ResetRestoresInitialState) {
  Crc32 c;
  c.update_byte(0xff);
  c.reset();
  EXPECT_EQ(c.value(), crc32({}));
}

// --- convolutional code + Viterbi ----------------------------------------------

TEST(ConvCode, K7RateHalfShape) {
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  EXPECT_EQ(code.constraint_length(), 7);
  EXPECT_EQ(code.rate_denominator(), 2u);
  EXPECT_EQ(code.states(), 64);
  std::vector<std::uint8_t> bits(10, 1);
  EXPECT_EQ(code.encode(bits).size(), (10u + 6u) * 2u);
}

TEST(ConvCode, CleanRoundTrip) {
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(3);
  std::vector<std::uint8_t> bits(200);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const auto coded = code.encode(bits);
  EXPECT_EQ(code.decode(coded), bits);
}

TEST(ConvCode, CorrectsScatteredErrors) {
  // K=7 rate-1/2 has free distance 10: sparse single errors must be
  // corrected.
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(4);
  std::vector<std::uint8_t> bits(300);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  auto coded = code.encode(bits);
  for (std::size_t i = 25; i < coded.size(); i += 50) coded[i] ^= 1;  // 2% scattered errors
  EXPECT_EQ(code.decode(coded), bits);
}

TEST(ConvCode, CodingGainAtModerateRawBer) {
  // At 4 % raw channel BER, the decoded BER must be far below uncoded.
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(5);
  std::uint64_t errors = 0, total = 0;
  for (int block = 0; block < 30; ++block) {
    std::vector<std::uint8_t> bits(250);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    auto coded = code.encode(bits);
    for (auto& c : coded)
      if (rng.chance(0.04)) c ^= 1;
    const auto decoded = code.decode(coded);
    for (std::size_t i = 0; i < bits.size(); ++i)
      if (decoded[i] != bits[i]) ++errors;
    total += bits.size();
  }
  const double ber = static_cast<double>(errors) / static_cast<double>(total);
  EXPECT_LT(ber, 0.004);  // >10x below the 4% channel BER
}

TEST(ConvCode, SmallerCodesWork) {
  // K=3 (7,5) octal: the classic textbook code.
  const ConvolutionalCode code(3, {0b111, 0b101});
  std::vector<std::uint8_t> bits{1, 0, 1, 1, 0, 0, 1};
  EXPECT_EQ(code.decode(code.encode(bits)), bits);
}

TEST(ConvCode, InvalidArgumentsRejected) {
  EXPECT_THROW(ConvolutionalCode(1, {1}), Error);
  EXPECT_THROW(ConvolutionalCode(7, {}), Error);
  EXPECT_THROW(ConvolutionalCode(3, {0b11111}), Error);  // generator too wide
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  std::vector<std::uint8_t> odd(7);
  EXPECT_THROW(code.decode(odd), Error);                   // not whole branches
  EXPECT_THROW(code.decode(std::vector<std::uint8_t>(4)), Error);  // shorter than tail
}

class ConvCodeLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvCodeLengthTest, RoundTripAtEveryLength) {
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(GetParam()));
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  EXPECT_EQ(code.decode(code.encode(bits)), bits);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ConvCodeLengthTest, ::testing::Values(1, 2, 7, 64, 257));

TEST(ConvCode, SoftDecodeMatchesHardOnCleanInput) {
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(8);
  std::vector<std::uint8_t> bits(120);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const auto coded = code.encode(bits);
  std::vector<double> llrs;
  for (const auto c : coded) llrs.push_back(c ? -4.0 : 4.0);  // confident LLRs
  EXPECT_EQ(code.decode_soft(llrs), bits);
}

TEST(ConvCode, SoftBeatsHardWithReliabilityInfo) {
  // Flip bits but mark the flipped positions as unreliable (small LLR):
  // the soft decoder must recover; aggregate over random blocks.
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(9);
  int soft_errors = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> bits(100);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    const auto coded = code.encode(bits);
    std::vector<double> llrs;
    for (const auto c : coded) {
      double llr = c ? -3.0 : 3.0;
      if (rng.chance(0.12)) llr = -0.2 * (llr / std::abs(llr));  // weak flip
      llrs.push_back(llr);
    }
    const auto decoded = code.decode_soft(llrs);
    for (std::size_t i = 0; i < bits.size(); ++i)
      if (decoded[i] != bits[i]) ++soft_errors;
  }
  EXPECT_LT(soft_errors, 5);  // 12% weak flips, nearly error-free
}

TEST(ConvCode, ErasuresAreNeutral) {
  // Zero LLRs (erasures) on a fraction of positions still decode.
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(10);
  std::vector<std::uint8_t> bits(150);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const auto coded = code.encode(bits);
  std::vector<double> llrs;
  std::size_t i = 0;
  for (const auto c : coded) llrs.push_back((i++ % 3 == 2) ? 0.0 : (c ? -4.0 : 4.0));
  EXPECT_EQ(code.decode_soft(llrs), bits);
}

TEST(ConvCode, PunctureDepunctureShapes) {
  const std::vector<std::uint8_t> coded{1, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0};
  const auto sent = puncture(coded, kRate34Pattern);
  EXPECT_EQ(sent.size(), 8u);  // 12 * 4/6
  std::vector<double> llrs(sent.size(), 1.0);
  const auto restored = depuncture(llrs, kRate34Pattern, coded.size());
  EXPECT_EQ(restored.size(), coded.size());
  EXPECT_EQ(restored[2], 0.0);  // erasure at a punctured slot
  EXPECT_EQ(restored[5], 0.0);
  EXPECT_EQ(restored[0], 1.0);
}

TEST(ConvCode, PuncturedRate34RoundTrip) {
  const ConvolutionalCode code = ConvolutionalCode::k7_rate_half();
  Rng rng(11);
  std::vector<std::uint8_t> bits(120);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const auto coded = code.encode(bits);
  const auto sent = puncture(coded, kRate34Pattern);
  std::vector<double> llrs;
  for (const auto c : sent) llrs.push_back(c ? -4.0 : 4.0);
  const auto decoded = code.decode_soft(depuncture(llrs, kRate34Pattern, coded.size()));
  EXPECT_EQ(decoded, bits);
}

TEST(ConvCode, DepunctureValidatesLength) {
  const bool pattern[] = {true, false};
  std::vector<double> llrs(3, 1.0);
  EXPECT_THROW(depuncture(llrs, pattern, 4), Error);   // needs only 2
  EXPECT_THROW(depuncture(llrs, pattern, 8), Error);   // needs 4
  EXPECT_NO_THROW(depuncture(llrs, pattern, 6));
}

}  // namespace
}  // namespace pdr::dsp
