# Black-box check of the explorer determinism contract: the same design
# space explored serially and on 8 workers must print byte-identical
# stdout. Invoked by the cli_explore_determinism ctest entry with
# -DPDRFLOW=<path> -DPROJECT=<project-file>.
execute_process(COMMAND ${PDRFLOW} explore ${PROJECT} --jobs 1
                OUTPUT_VARIABLE serial_out RESULT_VARIABLE serial_rc
                ERROR_VARIABLE serial_err)
execute_process(COMMAND ${PDRFLOW} explore ${PROJECT} --jobs 8
                OUTPUT_VARIABLE parallel_out RESULT_VARIABLE parallel_rc
                ERROR_VARIABLE parallel_err)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial explore failed (exit ${serial_rc}):\n${serial_err}")
endif()
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel explore failed (exit ${parallel_rc}):\n${parallel_err}")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "explore --jobs 8 stdout differs from --jobs 1:\n"
                      "--- serial ---\n${serial_out}\n--- parallel ---\n${parallel_out}")
endif()
message(STATUS "explore stdout byte-identical at jobs=1 and jobs=8")
