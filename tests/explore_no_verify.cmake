# Black-box check of the explorer's zero-false-positive contract: the
# default run certifies every scheduler-produced point with pdr::verify,
# so its stdout must be byte-identical to a run with static pruning
# disabled. Invoked by the cli_explore_no_verify ctest entry with
# -DPDRFLOW=<path> -DPROJECT=<project-file>.
execute_process(COMMAND ${PDRFLOW} explore ${PROJECT} --jobs 2
                OUTPUT_VARIABLE verified_out RESULT_VARIABLE verified_rc
                ERROR_VARIABLE verified_err)
execute_process(COMMAND ${PDRFLOW} explore ${PROJECT} --jobs 2 --no-verify
                OUTPUT_VARIABLE unverified_out RESULT_VARIABLE unverified_rc
                ERROR_VARIABLE unverified_err)
if(NOT verified_rc EQUAL 0)
  message(FATAL_ERROR "verified explore failed (exit ${verified_rc}):\n${verified_err}")
endif()
if(NOT unverified_rc EQUAL 0)
  message(FATAL_ERROR "explore --no-verify failed (exit ${unverified_rc}):\n${unverified_err}")
endif()
if(NOT verified_out STREQUAL unverified_out)
  message(FATAL_ERROR "default explore stdout differs from --no-verify (a false positive?):\n"
                      "--- verified ---\n${verified_out}\n--- no-verify ---\n${unverified_out}")
endif()
message(STATUS "explore stdout byte-identical with and without static pruning")
