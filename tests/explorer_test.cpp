#include <gtest/gtest.h>

#include <set>

#include "aaa/explorer.hpp"
#include "flow/explorer.hpp"
#include "util/error.hpp"

namespace pdr {
namespace {

using namespace pdr::literals;

/// Small project with one dynamic region and one conditioned vertex: a
/// 3 strategies x 2 prefetch x 3 preloads x 2 selections = 36-point space.
aaa::Project tiny_project() {
  aaa::Project project;
  project.name = "tiny";

  project.algorithm.add_operation({"a", "src", {}, aaa::OpClass::Sensor, {}});
  project.algorithm.add_conditioned("m", {{"qpsk", "qpsk_k", {}}, {"qam16", "qam16_k", {}}});
  project.algorithm.add_operation({"c", "sink", {}, aaa::OpClass::Actuator, {}});
  project.algorithm.add_dependency("a", "m", 100);
  project.algorithm.add_dependency("m", "c", 100);

  project.architecture.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
  project.architecture.add_operator(
      aaa::OperatorNode{"D1", aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D1"});
  project.architecture.add_medium(aaa::MediumNode{"BUS", 100e6, 100});
  project.architecture.connect("CPU", "BUS");
  project.architecture.connect("D1", "BUS");

  for (const char* kind : {"src", "sink"}) project.durations.set(kind, aaa::OperatorKind::Processor, 1'000);
  for (const char* kind : {"qpsk_k", "qam16_k"}) {
    project.durations.set(kind, aaa::OperatorKind::Processor, 50'000);
    project.durations.set(kind, aaa::OperatorKind::FpgaRegion, 2'000);
  }
  return project;
}

TEST(ExplorationSpace, FromProjectEnumeratesAllAxes) {
  const aaa::Project project = tiny_project();
  const aaa::ExplorationSpace space = aaa::ExplorationSpace::from_project(project);
  EXPECT_EQ(space.strategies.size(), 3u);
  EXPECT_EQ(space.prefetch.size(), 2u);
  ASSERT_EQ(space.preloads.size(), 1u);
  EXPECT_EQ(space.preloads[0].first, "D1");
  // Empty region + the two region-capable alternatives.
  EXPECT_EQ(space.preloads[0].second.size(), 3u);
  ASSERT_EQ(space.selections.size(), 1u);
  EXPECT_EQ(space.selections[0].first, "m");
  EXPECT_EQ(space.selections[0].second.size(), 2u);

  EXPECT_EQ(space.point_count(), 36u);
  const auto points = space.enumerate();
  EXPECT_EQ(points.size(), 36u);
  std::set<std::string> names;
  for (const auto& point : points) names.insert(point.name());
  EXPECT_EQ(names.size(), 36u);  // point names are unique
}

TEST(ExplorationSpace, EnumerationOrderIsStable) {
  const aaa::ExplorationSpace space =
      aaa::ExplorationSpace::from_project(tiny_project());
  const auto a = space.enumerate();
  const auto b = space.enumerate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].name(), b[i].name());
}

TEST(ExplorationSpace, FloorplanAxisMultipliesTheSpace) {
  // Tentpole wiring: an explicit floorplan axis multiplies the point
  // count and tags point names, while an empty axis leaves the legacy
  // enumeration bit-for-bit unchanged.
  const aaa::Project project = tiny_project();
  aaa::ExplorationSpace space = aaa::ExplorationSpace::from_project(project);
  const auto baseline = space.enumerate();

  aaa::FloorplanChoice narrow;
  narrow.name = "plan";
  narrow.region_load_ns["D1"] = 1'500'000;
  aaa::FloorplanChoice wide;
  wide.name = "plan+1c";
  wide.region_load_ns["D1"] = 2'250'000;
  space.floorplans = {narrow, wide};

  EXPECT_EQ(space.point_count(), baseline.size() * 2);
  const auto points = space.enumerate();
  ASSERT_EQ(points.size(), baseline.size() * 2);
  std::set<std::string> names;
  for (const auto& point : points) {
    names.insert(point.name());
    EXPECT_FALSE(point.floorplan.name.empty());
    EXPECT_NE(point.name().find("/fp["), std::string::npos) << point.name();
  }
  EXPECT_EQ(names.size(), points.size());

  // The floorplan axis is innermost: stripping it recovers the baseline
  // order exactly.
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(points[2 * i].floorplan.name, "plan");
    EXPECT_EQ(points[2 * i + 1].floorplan.name, "plan+1c");
    const std::string base_name = baseline[i].name();
    EXPECT_EQ(points[2 * i].name().substr(0, base_name.size()), base_name);
  }

  // Empty axis: nothing changes.
  space.floorplans.clear();
  const auto again = space.enumerate();
  ASSERT_EQ(again.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(again[i].name(), baseline[i].name());
    EXPECT_TRUE(again[i].floorplan.name.empty());
  }
}

TEST(RunDesignPoint, FloorplanLoadTableOverridesReconfigCost) {
  // A point carrying a floorplan load table prices region reloads from
  // that table; regions absent from the table fall back to the caller's
  // cost function.
  const aaa::Project project = tiny_project();
  aaa::DesignPoint slow;
  slow.selection["m"] = "qpsk";
  aaa::DesignPoint fast = slow;
  slow.floorplan.name = "wide";
  slow.floorplan.region_load_ns["D1"] = 40'000'000;  // 40 ms per reload
  fast.floorplan.name = "narrow";
  fast.floorplan.region_load_ns["D1"] = 10'000;  // 10 us per reload
  const auto cost = [](const std::string&, const std::string&) { return 1_ms; };
  const auto slow_outcome = aaa::run_design_point(project, slow, cost);
  const auto fast_outcome = aaa::run_design_point(project, fast, cost);
  ASSERT_TRUE(slow_outcome.ok) << slow_outcome.error;
  ASSERT_TRUE(fast_outcome.ok) << fast_outcome.error;
  // Same schedule shape, different reload pricing: the 40 ms plan can
  // never beat the 10 us plan.
  EXPECT_GE(slow_outcome.makespan, fast_outcome.makespan);
}

TEST(RunDesignPoint, InfeasiblePointReportsErrorInsteadOfThrowing) {
  aaa::Project project = tiny_project();
  aaa::DesignPoint point;
  point.selection["m"] = "no_such_alternative";
  const auto outcome = aaa::run_design_point(
      project, point, [](const std::string&, const std::string&) { return 1_ms; });
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("no_such_alternative"), std::string::npos);
}

TEST(ParetoFront, KeepsOnlyUndominatedOutcomes) {
  std::vector<aaa::ExplorationOutcome> outcomes(4);
  outcomes[0] = {10'000, 0, 0, true, false, ""};      // best makespan
  outcomes[1] = {12'000, 0, 1, true, false, ""};      // dominated by 0
  outcomes[2] = {11'000, 0, 0, true, false, ""};      // dominated by 0
  outcomes[3] = {9'000, 5'000, 1, true, false, ""};   // faster but exposed: survives
  const auto front = aaa::pareto_front(outcomes);
  EXPECT_EQ(front, (std::vector<std::size_t>{3, 0}));  // sorted by makespan
}

TEST(ParetoFront, IdenticalOutcomesKeepEarliestIndex) {
  std::vector<aaa::ExplorationOutcome> outcomes(3);
  outcomes[0] = {10'000, 0, 0, true, false, ""};
  outcomes[1] = {10'000, 0, 0, true, false, ""};  // twin of 0: dropped
  outcomes[2] = {10'000, 0, 0, false, false, "boom"};  // failed: never on the front
  const auto front = aaa::pareto_front(outcomes);
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(DesignSpaceExplorer, RunsWholeSpaceAndFindsPareto) {
  const aaa::Project project = tiny_project();
  flow::ExplorerOptions options;
  options.jobs = 2;
  options.reconfig_cost = 1_ms;
  const flow::DesignSpaceExplorer explorer(
      project, aaa::ExplorationSpace::from_project(project), options);
  const flow::ExplorationReport report = explorer.run();

  EXPECT_EQ(report.points.size(), 36u);
  EXPECT_EQ(report.outcomes.size(), 36u);
  EXPECT_EQ(report.failed_points(), 0u);
  ASSERT_FALSE(report.pareto.empty());

  // The front's best point beats or ties every successful outcome.
  const auto& best = report.outcomes[report.pareto.front()];
  for (const auto& outcome : report.outcomes) EXPECT_LE(best.makespan, outcome.makespan);

  // A preloaded region with the selected module avoids every
  // reconfiguration: the front must contain a zero-exposure point.
  EXPECT_EQ(report.outcomes[report.pareto.front()].reconfig_exposed, 0);

  const std::string text = report.to_string();
  EXPECT_NE(text.find("pareto front:"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

TEST(DesignSpaceExplorer, ParallelRunIsByteIdenticalToSerial) {
  const aaa::Project project = tiny_project();
  const aaa::ExplorationSpace space = aaa::ExplorationSpace::from_project(project);

  flow::ExplorerOptions serial;
  serial.jobs = 1;
  serial.reconfig_cost = 1_ms;
  flow::ExplorerOptions parallel = serial;
  parallel.jobs = 8;

  const flow::ExplorationReport a = flow::DesignSpaceExplorer(project, space, serial).run();
  const flow::ExplorationReport b = flow::DesignSpaceExplorer(project, space, parallel).run();

  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.sweep.combined_report(), b.sweep.combined_report());
  EXPECT_EQ(a.pareto, b.pareto);
  EXPECT_EQ(a.sweep.metrics.to_json(), b.sweep.metrics.to_json());
}

TEST(DesignSpaceExplorer, StaticPruningRejectsWhatTheOracleRefuses) {
  const aaa::Project project = tiny_project();
  flow::ExplorerOptions options;
  options.jobs = 2;
  options.reconfig_cost = 1_ms;
  // An injected verifier standing in for pdr::verify: refuse everything.
  options.verifier = [](const aaa::Schedule&, const aaa::DesignPoint&) {
    return "synthetic hazard";
  };
  const flow::ExplorationReport report =
      flow::DesignSpaceExplorer(project, aaa::ExplorationSpace::from_project(project), options)
          .run();

  EXPECT_EQ(report.pruned_points(), 36u);  // every point statically rejected
  EXPECT_EQ(report.failed_points(), 0u);   // rejection is not failure
  EXPECT_TRUE(report.pareto.empty());      // nothing survived to simulate
  for (const auto& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.rejected);
    EXPECT_NE(outcome.error.find("synthetic hazard"), std::string::npos);
  }
  const std::string text = report.to_string();
  EXPECT_NE(text.find("statically rejected by pdr::verify"), std::string::npos) << text;
  // The front denominator counts points that survived to simulation.
  EXPECT_NE(text.find("pareto front: 0 of 0"), std::string::npos) << text;
}

TEST(DesignSpaceExplorer, DefaultVerifierCertifiesEverySchedulerPoint) {
  // The adequation engine is correct by construction, so the real
  // verifier must prune nothing — and the surviving Pareto front must be
  // byte-identical to a run with pruning disabled.
  const aaa::Project project = tiny_project();
  const aaa::ExplorationSpace space = aaa::ExplorationSpace::from_project(project);
  flow::ExplorerOptions verified;
  verified.jobs = 2;
  verified.reconfig_cost = 1_ms;
  flow::ExplorerOptions unverified = verified;
  unverified.static_pruning = false;

  const flow::ExplorationReport a = flow::DesignSpaceExplorer(project, space, verified).run();
  const flow::ExplorationReport b = flow::DesignSpaceExplorer(project, space, unverified).run();

  EXPECT_EQ(a.pruned_points(), 0u);
  EXPECT_EQ(a.pareto, b.pareto);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(DesignSpaceExplorer, RefusesOversizedSpace) {
  const aaa::Project project = tiny_project();
  flow::ExplorerOptions options;
  options.max_points = 10;  // space has 36
  const flow::DesignSpaceExplorer explorer(
      project, aaa::ExplorationSpace::from_project(project), options);
  EXPECT_THROW(explorer.run(), pdr::Error);
}

TEST(DesignPoint, ToOptionsDropsEmptyPreloads) {
  aaa::DesignPoint point;
  point.preloaded["D1"] = "";
  point.preloaded["D2"] = "qpsk";
  point.selection["m"] = "qam16";
  const aaa::AdequationOptions options = point.to_options();
  EXPECT_EQ(options.preloaded.count("D1"), 0u);  // "" = empty region
  EXPECT_EQ(options.preloaded.at("D2"), "qpsk");
  EXPECT_EQ(options.selection.at("m"), "qam16");
}

}  // namespace
}  // namespace pdr
