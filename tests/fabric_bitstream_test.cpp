#include <gtest/gtest.h>

#include "fabric/bitstream.hpp"
#include "fabric/config_memory.hpp"
#include "fabric/config_port.hpp"
#include "synth/bitgen.hpp"
#include "util/error.hpp"

namespace pdr::fabric {
namespace {

std::vector<std::uint8_t> frame_data(const DeviceModel& d, std::uint8_t fill) {
  return std::vector<std::uint8_t>(static_cast<std::size_t>(d.frame_bytes()), fill);
}

std::vector<std::uint8_t> small_stream(const DeviceModel& d) {
  BitstreamWriter w(d);
  w.begin();
  w.write_idcode();
  w.write_far(FrameAddress{BlockType::Clb, 2, 0});
  w.write_fdri(frame_data(d, 0xab));
  w.end();
  return w.take();
}

TEST(BitstreamWriter, ProducesWordAlignedStream) {
  const DeviceModel d = xc2v2000();
  const auto stream = small_stream(d);
  EXPECT_EQ(stream.size() % 4, 0u);
  EXPECT_GT(stream.size(), static_cast<std::size_t>(d.frame_bytes()));
}

TEST(BitstreamWriter, SyncWordPresent) {
  const auto stream = small_stream(xc2v2000());
  // Words: dummy, dummy, sync.
  EXPECT_EQ(stream[8], 0xaa);
  EXPECT_EQ(stream[9], 0x99);
  EXPECT_EQ(stream[10], 0x55);
  EXPECT_EQ(stream[11], 0x66);
}

TEST(BitstreamWriter, ApiMisuseThrows) {
  const DeviceModel d = xc2v2000();
  BitstreamWriter w(d);
  EXPECT_THROW(w.write_idcode(), pdr::Error);  // before begin()
  w.begin();
  EXPECT_THROW(w.begin(), pdr::Error);  // double begin
  EXPECT_THROW(w.write_far(FrameAddress{BlockType::Clb, 999, 0}), pdr::Error);
  std::vector<std::uint8_t> misaligned(static_cast<std::size_t>(d.frame_bytes()) - 1);
  EXPECT_THROW(w.write_fdri(misaligned), pdr::Error);
  w.end();
  EXPECT_THROW(w.end(), pdr::Error);  // double end
}

TEST(BitstreamReader, RoundTripWritesFrames) {
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  mem.set_writer_tag("mod_a");
  BitstreamReader reader(d, mem);
  const ParseResult r = reader.parse(small_stream(d));
  EXPECT_EQ(r.frames_written, 1);
  ASSERT_EQ(r.touched.size(), 1u);
  EXPECT_EQ(r.touched[0], (FrameAddress{BlockType::Clb, 2, 0}));
  const auto back = mem.read_frame(r.touched[0]);
  EXPECT_EQ(back[0], 0xab);
  EXPECT_EQ(mem.frame_owner(r.touched[0]), "mod_a");
}

TEST(BitstreamReader, MultiFrameBurstAutoIncrementsFar) {
  const DeviceModel d = xc2v2000();
  BitstreamWriter w(d);
  w.begin();
  w.write_idcode();
  w.write_far(FrameAddress{BlockType::Clb, 0, 0});
  std::vector<std::uint8_t> burst;
  for (int f = 0; f < 5; ++f) {
    const auto fd = frame_data(d, static_cast<std::uint8_t>(f));
    burst.insert(burst.end(), fd.begin(), fd.end());
  }
  w.write_fdri(burst);
  w.end();

  ConfigMemory mem(d);
  BitstreamReader reader(d, mem);
  const ParseResult r = reader.parse(w.bytes());
  EXPECT_EQ(r.frames_written, 5);
  for (int f = 0; f < 5; ++f)
    EXPECT_EQ(mem.read_frame(FrameAddress{BlockType::Clb, 0, static_cast<std::uint16_t>(f)})[0],
              static_cast<std::uint8_t>(f));
}

TEST(BitstreamReader, DetectsCrcCorruption) {
  const DeviceModel d = xc2v2000();
  auto stream = small_stream(d);
  stream[stream.size() / 2] ^= 0x01;  // flip a payload bit
  EXPECT_THROW(BitstreamReader::validate(d, stream), pdr::Error);
}

TEST(BitstreamReader, DetectsWrongDevice) {
  const auto stream = small_stream(xc2v2000());
  EXPECT_THROW(BitstreamReader::validate(xc2v1000(), stream), pdr::Error);
}

TEST(BitstreamReader, DetectsTruncation) {
  const DeviceModel d = xc2v2000();
  auto stream = small_stream(d);
  stream.resize(stream.size() - 8);
  EXPECT_THROW(BitstreamReader::validate(d, stream), pdr::Error);
}

TEST(BitstreamReader, DetectsGarbageBeforeSync) {
  const DeviceModel d = xc2v2000();
  auto stream = small_stream(d);
  stream[0] = 0x12;  // corrupt leading dummy word
  EXPECT_THROW(BitstreamReader::validate(d, stream), pdr::Error);
}

TEST(BitstreamReader, DetectsMisalignedStream) {
  const DeviceModel d = xc2v2000();
  auto stream = small_stream(d);
  stream.push_back(0x00);
  EXPECT_THROW(BitstreamReader::validate(d, stream), pdr::Error);
}

TEST(BitstreamReader, DetectsTrailingBytes) {
  const DeviceModel d = xc2v2000();
  auto stream = small_stream(d);
  for (int i = 0; i < 4; ++i) stream.push_back(0xff);
  EXPECT_THROW(BitstreamReader::validate(d, stream), pdr::Error);
}

TEST(BitstreamReader, EmptyStreamRejected) {
  EXPECT_THROW(BitstreamReader::validate(xc2v2000(), {}), pdr::Error);
}

TEST(DecodePackets, ListsActions) {
  const DeviceModel d = xc2v2000();
  const auto actions = decode_packets(d, small_stream(d));
  ASSERT_EQ(actions.size(), 5u);  // idcode, far, fdri, crc, cmd
  EXPECT_EQ(actions[0].reg, ConfigReg::Idcode);
  EXPECT_EQ(actions[1].reg, ConfigReg::Far);
  EXPECT_EQ(actions[2].reg, ConfigReg::Fdri);
  EXPECT_EQ(actions[2].payload.size(), static_cast<std::size_t>(d.frame_words()));
  EXPECT_EQ(actions[3].reg, ConfigReg::Crc);
  EXPECT_EQ(actions[4].reg, ConfigReg::Cmd);
}

TEST(DescribeBitstream, MentionsFramesAndCrc) {
  const DeviceModel d = xc2v2000();
  const std::string s = describe_bitstream(d, small_stream(d));
  EXPECT_NE(s.find("1 frames"), std::string::npos);
  EXPECT_NE(s.find("crc ok"), std::string::npos);
}

// --- config memory -------------------------------------------------------------

TEST(ConfigMemory, TracksOwnership) {
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  const FrameAddress a{BlockType::Clb, 0, 0};
  EXPECT_EQ(mem.frame_owner(a), "");
  mem.set_writer_tag("x");
  mem.write_frame(a, frame_data(d, 1));
  EXPECT_EQ(mem.frame_owner(a), "x");
  const FrameAddress addrs[] = {a};
  EXPECT_TRUE(mem.region_owned_by(addrs, "x"));
  EXPECT_FALSE(mem.region_owned_by(addrs, "y"));
}

TEST(ConfigMemory, RejectsWrongFrameSize) {
  ConfigMemory mem(xc2v2000());
  std::vector<std::uint8_t> tiny(4);
  EXPECT_THROW(mem.write_frame(FrameAddress{BlockType::Clb, 0, 0}, tiny), pdr::Error);
}

TEST(ConfigMemory, FlipBitBoundsChecked) {
  // Regression: out-of-range byte/bit indices must throw pdr::Error, not
  // write past the frame buffer (the fault injector leans on this).
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  const FrameAddress a{BlockType::Clb, 0, 0};
  EXPECT_THROW(mem.flip_bit(a, -1, 0), pdr::Error);
  EXPECT_THROW(mem.flip_bit(a, d.frame_bytes(), 0), pdr::Error);
  EXPECT_THROW(mem.flip_bit(a, 0, -1), pdr::Error);
  EXPECT_THROW(mem.flip_bit(a, 0, 8), pdr::Error);
  EXPECT_EQ(mem.upsets(), 0);  // failed flips never count

  const std::uint8_t before = mem.read_frame(a)[10];
  mem.flip_bit(a, 10, 3);
  EXPECT_EQ(mem.read_frame(a)[10], before ^ (1u << 3));
  mem.flip_bit(a, 10, 3);  // a second flip restores the bit
  EXPECT_EQ(mem.read_frame(a)[10], before);
  EXPECT_EQ(mem.upsets(), 2);
}

// --- config port -----------------------------------------------------------------

TEST(ConfigPort, DefaultTimings) {
  EXPECT_EQ(ConfigPort::default_timing(PortKind::Icap).width_bits, 8);
  EXPECT_EQ(ConfigPort::default_timing(PortKind::Jtag).width_bits, 1);
}

TEST(ConfigPort, TransferTimeMatchesBandwidth) {
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  ConfigPort port(PortKind::SelectMap, PortTiming{8, 50e6, 0}, mem);
  // 50 MB/s -> 1000 bytes = 20 us.
  EXPECT_EQ(port.transfer_time(1000), 20000);
  EXPECT_DOUBLE_EQ(port.bandwidth_bytes_per_s(), 50e6);
}

TEST(ConfigPort, JtagIsSerial) {
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  ConfigPort jtag(PortKind::Jtag, PortTiming{1, 33e6, 0}, mem);
  ConfigPort icap(PortKind::Icap, PortTiming{8, 66e6, 0}, mem);
  EXPECT_GT(jtag.transfer_time(1000), 8 * icap.transfer_time(1000) / 2);
}

TEST(ConfigPort, LoadAppliesFramesAndAccounts) {
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  const auto report = port.load(small_stream(d), "mod_b");
  EXPECT_EQ(report.frames_written, 1);
  EXPECT_GT(report.duration, 0);
  EXPECT_EQ(mem.frame_owner(FrameAddress{BlockType::Clb, 2, 0}), "mod_b");
  EXPECT_EQ(port.loads(), 1);
  EXPECT_EQ(port.total_bytes(), report.stream_bytes);
}

TEST(ConfigPort, LoadRejectsCorruptStream) {
  const DeviceModel d = xc2v2000();
  ConfigMemory mem(d);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  auto stream = small_stream(d);
  stream[20] ^= 0xff;
  EXPECT_THROW(port.load(stream, "bad"), pdr::Error);
}

TEST(ConfigPort, FaultHookAbortsMidStream) {
  // A fault hook returning a fraction in (0,1) cuts the transfer there:
  // the load throws, the complete FDRI bursts before the cut stay
  // committed, and both the abort and its bytes are accounted. Two
  // non-adjacent columns give the stream two bursts, so a cut past the
  // midpoint lands inside the second one.
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  auto frames = map.clb_column_frames(3);
  const auto second = map.clb_column_frames(10);
  frames.insert(frames.end(), second.begin(), second.end());
  const auto stream = synth::generate_partial_bitstream(d, frames, 11);

  ConfigMemory mem(d);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  int calls = 0;
  port.set_fault_hook([&calls](Bytes, const std::string&) {
    return ++calls == 1 ? 0.6 : -1.0;
  });
  EXPECT_THROW(port.load(stream, "mod"), pdr::Error);
  EXPECT_EQ(port.aborted_loads(), 1);
  EXPECT_EQ(port.loads(), 1);
  // Roughly half the stream went through before the cut.
  EXPECT_GT(port.total_bytes(), 0u);
  EXPECT_LT(port.total_bytes(), stream.size());
  const int committed = mem.frames_written();
  EXPECT_GT(committed, 0);
  EXPECT_LT(committed, static_cast<int>(frames.size()));

  // The hook passed (-1): the retry succeeds and repairs the region.
  const auto report = port.load(stream, "mod");
  EXPECT_EQ(report.frames_written, static_cast<int>(frames.size()));
  EXPECT_TRUE(mem.region_owned_by(frames, "mod"));
  EXPECT_EQ(port.aborted_loads(), 1);
  EXPECT_EQ(port.loads(), 2);
}

// --- multi-frame writes (compression) ----------------------------------------------

TEST(Mfwr, UniformBitstreamLoadsAllFrames) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.frames_for_clb_range(43, 47);
  const auto stream = synth::generate_uniform_bitstream(d, frames, 0x00);

  ConfigMemory mem(d);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  const auto report = port.load(stream, "blank");
  EXPECT_EQ(report.frames_written, static_cast<int>(frames.size()));
  EXPECT_TRUE(mem.region_owned_by(frames, "blank"));
  for (const auto& f : {frames.front(), frames.back()}) {
    const auto data = mem.read_frame(f);
    for (std::size_t b = 0; b < data.size(); b += 101) EXPECT_EQ(data[b], 0x00);
  }
}

TEST(Mfwr, CompressionRatioIsLarge) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.frames_for_clb_range(43, 47);  // 110 frames
  const auto full = synth::generate_partial_bitstream(d, frames, 7);
  const auto compressed = synth::generate_uniform_bitstream(d, frames, 0xff);
  EXPECT_GT(full.size(), 10 * compressed.size());
}

TEST(Mfwr, RepeatsArbitraryFill) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.clb_column_frames(3);
  ConfigMemory mem(d);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  port.load(synth::generate_uniform_bitstream(d, frames, 0x5a), "fill");
  EXPECT_EQ(mem.read_frame(frames[5])[100], 0x5a);
}

TEST(Mfwr, WriterRequiresPrecedingFdri) {
  const DeviceModel d = xc2v2000();
  BitstreamWriter w(d);
  w.begin();
  w.write_idcode();
  EXPECT_THROW(w.write_mfwr(FrameAddress{BlockType::Clb, 0, 0}), pdr::Error);
}

TEST(Mfwr, ReaderRejectsMfwrBeforeFdri) {
  // Hand-craft an invalid stream: FAR + MFWR without any FDRI.
  const DeviceModel d = xc2v2000();
  BitstreamWriter w(d);
  w.begin();
  w.write_idcode();
  w.write_far(FrameAddress{BlockType::Clb, 0, 0});
  w.write_fdri(frame_data(d, 0));
  w.write_mfwr(FrameAddress{BlockType::Clb, 1, 0});
  w.end();
  auto stream = w.take();
  // Valid as written; now corrupt it so structure still parses but CRC breaks.
  stream[stream.size() / 2] ^= 1;
  EXPECT_THROW(BitstreamReader::validate(d, stream), pdr::Error);
}

TEST(Mfwr, DecodePacketsSeesMfwr) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.clb_column_frames(0);
  const auto stream = synth::generate_uniform_bitstream(d, frames, 0);
  const auto actions = decode_packets(d, stream);
  int mfwr = 0;
  for (const auto& a : actions)
    if (a.reg == ConfigReg::Mfwr) ++mfwr;
  EXPECT_EQ(mfwr, static_cast<int>(frames.size()) - 1);
}

// --- synthetic bitgen roundtrip ---------------------------------------------------

TEST(Bitgen, PartialBitstreamRoundTripsThroughPort) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.frames_for_clb_range(43, 47);
  const auto stream = synth::generate_partial_bitstream(d, frames, 0xdeadbeef);

  ConfigMemory mem(d);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  const auto report = port.load(stream, "op_dyn");
  EXPECT_EQ(report.frames_written, static_cast<int>(frames.size()));
  EXPECT_TRUE(mem.region_owned_by(frames, "op_dyn"));

  // Payload must match the deterministic generator.
  const auto f0 = mem.read_frame(frames[0]);
  for (int b = 0; b < 16; ++b)
    EXPECT_EQ(f0[static_cast<std::size_t>(b)],
              synth::frame_payload_byte(0xdeadbeef, map.linear_index(frames[0]), b));
}

TEST(Bitgen, DifferentHashesDifferentPayload) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.clb_column_frames(0);
  const auto a = synth::generate_partial_bitstream(d, frames, 1);
  const auto b = synth::generate_partial_bitstream(d, frames, 2);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);
}

TEST(Bitgen, SameInputsSameStream) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto frames = map.clb_column_frames(3);
  EXPECT_EQ(synth::generate_partial_bitstream(d, frames, 7),
            synth::generate_partial_bitstream(d, frames, 7));
}

TEST(Bitgen, FullBitstreamCoversDevice) {
  const DeviceModel d = xc2v1000();  // smaller device keeps this quick
  const auto stream = synth::generate_full_bitstream(d, 42);
  const auto result = BitstreamReader::validate(d, stream);
  EXPECT_EQ(result.frames_written, d.total_frames());
}

}  // namespace
}  // namespace pdr::fabric
