#include <gtest/gtest.h>

#include "fabric/device.hpp"
#include "fabric/frames.hpp"
#include "util/error.hpp"

namespace pdr::fabric {
namespace {

TEST(Device, Xc2v2000Geometry) {
  const DeviceModel d = xc2v2000();
  EXPECT_EQ(d.clb_rows, 56);
  EXPECT_EQ(d.clb_cols, 48);
  EXPECT_EQ(d.total_slices(), 10752);  // documented XC2V2000 slice count
  EXPECT_EQ(d.total_luts(), 21504);
  EXPECT_EQ(d.total_brams(), 56);     // 56 x 18 kbit
  EXPECT_EQ(d.total_mult18(), 56);
}

TEST(Device, Xc2v2000BitstreamSizeMatchesDatasheet) {
  // Documented full-device configuration: 6,808,352 bits = 851,044 bytes.
  // The frame model must land within 0.1 %.
  const DeviceModel d = xc2v2000();
  const double model = static_cast<double>(d.config_payload_bytes());
  EXPECT_NEAR(model, 851044.0, 851.0);
}

TEST(Device, FrameBytesWholeWords) {
  for (const auto& d : {xc2v1000(), xc2v2000(), xc2v3000(), xc2v6000()}) {
    EXPECT_EQ(d.frame_bits() % 32, 0) << d.name;
    EXPECT_EQ(d.frame_bytes() * 8, d.frame_bits()) << d.name;
  }
}

TEST(Device, FamilyOrderingBySize) {
  EXPECT_LT(xc2v1000().total_slices(), xc2v2000().total_slices());
  EXPECT_LT(xc2v2000().total_slices(), xc2v3000().total_slices());
  EXPECT_LT(xc2v3000().total_slices(), xc2v6000().total_slices());
  EXPECT_LT(xc2v1000().config_payload_bytes(), xc2v6000().config_payload_bytes());
}

TEST(Device, LookupByNameCaseInsensitive) {
  EXPECT_EQ(device_by_name("xc2v2000").name, "XC2V2000");
  EXPECT_EQ(device_by_name("XC2V1000").name, "XC2V1000");
  EXPECT_THROW(device_by_name("xc7z020"), Error);
}

TEST(Device, DistinctIdcodes) {
  EXPECT_NE(xc2v1000().idcode, xc2v2000().idcode);
  EXPECT_NE(xc2v2000().idcode, xc2v3000().idcode);
}

// --- frame addressing ---------------------------------------------------------

TEST(FrameAddress, EncodeDecodeRoundTrip) {
  const FrameAddress a{BlockType::BramContent, 3, 17};
  const FrameAddress b = FrameAddress::decode(a.encode());
  EXPECT_EQ(a, b);
}

TEST(FrameAddress, DecodeRejectsUnknownBlock) {
  EXPECT_THROW(FrameAddress::decode(0x03000000u), Error);
}

TEST(FrameAddress, ToStringNamesBlock) {
  EXPECT_EQ((FrameAddress{BlockType::Clb, 5, 2}).to_string(), "CLB[5].2");
}

class FrameMapDeviceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FrameMapDeviceTest, LinearIndexBijective) {
  const FrameMap map(device_by_name(GetParam()));
  for (int i = 0; i < map.total_frames(); ++i) {
    const FrameAddress a = map.from_linear(i);
    EXPECT_TRUE(map.valid(a));
    EXPECT_EQ(map.linear_index(a), i);
  }
}

TEST_P(FrameMapDeviceTest, NextWalksLinearly) {
  const FrameMap map(device_by_name(GetParam()));
  FrameAddress a = map.from_linear(0);
  for (int i = 1; i < map.total_frames(); ++i) {
    a = map.next(a);
    EXPECT_EQ(map.linear_index(a), i);
  }
  EXPECT_THROW(map.next(a), Error);  // past the last frame
}

TEST_P(FrameMapDeviceTest, BramPositionsInsideArray) {
  const DeviceModel d = device_by_name(GetParam());
  const FrameMap map(d);
  const auto positions = map.bram_positions();
  EXPECT_EQ(positions.size(), static_cast<std::size_t>(d.bram_cols));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_GE(positions[i], 0);
    EXPECT_LT(positions[i], d.clb_cols);
    if (i > 0) {
      EXPECT_GT(positions[i], positions[i - 1]);  // strictly increasing
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, FrameMapDeviceTest,
                         ::testing::Values("XC2V1000", "XC2V2000", "XC2V3000", "XC2V6000"));

TEST(FrameMap, ClbColumnFrames) {
  const FrameMap map(xc2v2000());
  const auto frames = map.clb_column_frames(7);
  EXPECT_EQ(frames.size(), 22u);
  for (const auto& f : frames) {
    EXPECT_EQ(f.block, BlockType::Clb);
    EXPECT_EQ(f.major, 7);
  }
  EXPECT_THROW(map.clb_column_frames(48), pdr::Error);
}

TEST(FrameMap, RangeWithoutBramColumns) {
  const FrameMap map(xc2v2000());
  // Columns 43..47 lie right of every BRAM position (8, 18, 27, 37).
  const auto frames = map.frames_for_clb_range(43, 47);
  EXPECT_EQ(frames.size(), 5u * 22u);
}

TEST(FrameMap, RangeSpanningBramColumnIncludesIt) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  const auto positions = map.bram_positions();
  const int p = positions[0];
  const auto frames = map.frames_for_clb_range(p, p + 1);  // BRAM col strictly inside? p < hi
  // CLB frames + one BRAM column (content + interconnect).
  const std::size_t expect = 2u * 22u + static_cast<std::size_t>(d.frames_per_bram_col) +
                             static_cast<std::size_t>(d.frames_per_bram_int_col);
  EXPECT_EQ(frames.size(), expect);
}

TEST(FrameMap, BadRangeThrows) {
  const FrameMap map(xc2v2000());
  EXPECT_THROW(map.frames_for_clb_range(5, 3), pdr::Error);
  EXPECT_THROW(map.frames_for_clb_range(-1, 3), pdr::Error);
  EXPECT_THROW(map.frames_for_clb_range(0, 48), pdr::Error);
}

TEST(FrameMap, TotalFramesConsistent) {
  const DeviceModel d = xc2v2000();
  const FrameMap map(d);
  EXPECT_EQ(map.total_frames(),
            d.clb_cols * d.frames_per_clb_col +
                d.bram_cols * (d.frames_per_bram_col + d.frames_per_bram_int_col));
}

}  // namespace
}  // namespace pdr::fabric
