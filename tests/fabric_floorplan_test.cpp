#include <gtest/gtest.h>

#include "fabric/bus_macro.hpp"
#include "fabric/config_memory.hpp"
#include "fabric/config_port.hpp"
#include "fabric/context.hpp"
#include "fabric/floorplan.hpp"
#include "fabric/relocate.hpp"
#include "synth/bitgen.hpp"
#include "util/error.hpp"

namespace pdr::fabric {
namespace {

TEST(BusMacro, NeededCountCeils) {
  EXPECT_EQ(bus_macros_needed(0), 0);
  EXPECT_EQ(bus_macros_needed(1), 1);
  EXPECT_EQ(bus_macros_needed(8), 1);
  EXPECT_EQ(bus_macros_needed(9), 2);
  EXPECT_EQ(bus_macros_needed(33), 5);
  EXPECT_THROW(bus_macros_needed(-1), pdr::Error);
}

TEST(BusMacro, PlanAssignsBandsAndDirections) {
  const auto macros = plan_bus_macros("D1", 10, 20, 9, 56, 48);
  // 20 in -> 3 macros, 9 out -> 2 macros.
  ASSERT_EQ(macros.size(), 5u);
  for (std::size_t i = 0; i < macros.size(); ++i) {
    EXPECT_EQ(macros[i].boundary_col, 10);
    EXPECT_EQ(macros[i].row_band, static_cast<int>(i));
  }
  EXPECT_EQ(macros[0].dir, BusMacroDir::LeftToRight);
  EXPECT_EQ(macros[4].dir, BusMacroDir::RightToLeft);
}

TEST(BusMacro, PlanRejectsOverflow) {
  EXPECT_THROW(plan_bus_macros("D1", 10, 100, 100, 3, 48), pdr::Error);
}

// A macro straddles boundary_col-1 | boundary_col; at the device edges one
// of those CLB columns does not exist, so planning there must throw
// instead of producing a bridge into thin air.
TEST(BusMacro, PlanRejectsDeviceEdgeBoundaries) {
  EXPECT_THROW(plan_bus_macros("D1", 0, 8, 8, 56, 48), pdr::Error);    // column -1
  EXPECT_THROW(plan_bus_macros("D1", 48, 8, 8, 56, 48), pdr::Error);   // column 48
  EXPECT_THROW(plan_bus_macros("D1", -3, 8, 8, 56, 48), pdr::Error);
  EXPECT_NO_THROW(plan_bus_macros("D1", 1, 8, 8, 56, 48));   // innermost legal boundaries
  EXPECT_NO_THROW(plan_bus_macros("D1", 47, 8, 8, 56, 48));
  try {
    plan_bus_macros("D1", 0, 8, 8, 56, 48);
    FAIL() << "edge boundary accepted";
  } catch (const pdr::Error& e) {
    // The witness names the nonexistent neighbor column.
    EXPECT_NE(std::string(e.what()).find("column -1 does not exist"), std::string::npos)
        << e.what();
  }
}

// --- width units ---------------------------------------------------------------

TEST(WidthUnits, ClbAndSliceColumnsConvertBothWays) {
  EXPECT_EQ(to_slice_cols(ClbCols{5}).value, 10);
  EXPECT_EQ(to_clb_cols(SliceCols{10}).value, 5);
  EXPECT_EQ(to_clb_cols(to_slice_cols(ClbCols{7})), ClbCols{7});
  // An odd slice-column count is not a whole number of CLB columns.
  EXPECT_THROW(to_clb_cols(SliceCols{3}), pdr::Error);
  EXPECT_THROW(to_clb_cols(SliceCols{5}), pdr::Error);
  static_assert(kMinReconfigSliceCols == kMinReconfigClbCols * kSliceColsPerClbCol);
}

TEST(WidthUnits, RegionTypedAccessorsAgreeWithLegacyInts) {
  Region r;
  r.col_lo = 10;
  r.col_hi = 14;
  EXPECT_EQ(r.width(), ClbCols{5});
  EXPECT_EQ(r.width_slices(), SliceCols{10});
  EXPECT_EQ(r.width_cols(), r.width().value);
  EXPECT_EQ(r.width_slice_cols(), r.width_slices().value);
}

TEST(Floorplan, AddRegionAndQuery) {
  Floorplan plan(xc2v2000());
  plan.add_region("S", 0, 9, false);
  plan.add_region("D1", 40, 47, true, 16, 16);
  EXPECT_EQ(plan.regions().size(), 2u);
  EXPECT_EQ(plan.region("D1").width_cols(), 8);
  EXPECT_TRUE(plan.region("D1").reconfigurable);
  EXPECT_EQ(plan.reconfigurable_regions().size(), 1u);
  EXPECT_EQ(plan.free_columns().size(), 48u - 10u - 8u);
}

TEST(Floorplan, RejectsOverlap) {
  Floorplan plan(xc2v2000());
  plan.add_region("A", 0, 9, false);
  EXPECT_THROW(plan.add_region("B", 5, 12, false), pdr::Error);
  EXPECT_THROW(plan.add_region("C", 9, 9, false), pdr::Error);
}

TEST(Floorplan, RejectsDuplicateName) {
  Floorplan plan(xc2v2000());
  plan.add_region("A", 0, 3, false);
  EXPECT_THROW(plan.add_region("A", 10, 13, false), pdr::Error);
}

TEST(Floorplan, RejectsOutOfRange) {
  Floorplan plan(xc2v2000());
  EXPECT_THROW(plan.add_region("A", -1, 3, false), pdr::Error);
  EXPECT_THROW(plan.add_region("B", 40, 48, false), pdr::Error);
  EXPECT_THROW(plan.add_region("C", 5, 3, false), pdr::Error);
}

TEST(Floorplan, EnforcesMinimumReconfigWidth) {
  // The paper's Modular Design rule: at least 4 slice-columns = 2 CLB cols.
  Floorplan plan(xc2v2000());
  EXPECT_THROW(plan.add_region("D", 10, 10, true), pdr::Error);
  const Region& r = plan.add_region("D", 10, 11, true, 8, 8);
  EXPECT_EQ(r.width_slice_cols(), 4);
}

TEST(Floorplan, InteriorReconfigRegionSplitsBusMacros) {
  Floorplan plan(xc2v2000());
  const Region& r = plan.add_region("D1", 40, 45, true, 16, 9);
  // Interior region -> input macros on left boundary, output on right.
  ASSERT_EQ(r.bus_macros.size(), 4u);  // ceil(16/8) + ceil(9/8)
  EXPECT_EQ(r.bus_macros[0].boundary_col, 40);
  EXPECT_EQ(r.bus_macros[2].boundary_col, 46);
}

TEST(Floorplan, EdgeReconfigRegionUsesSingleBoundary) {
  Floorplan plan(xc2v2000());
  const Region& r = plan.add_region("D1", 40, 47, true, 16, 9);
  // Right-edge region -> all macros straddle the left boundary.
  ASSERT_EQ(r.bus_macros.size(), 4u);
  for (const auto& m : r.bus_macros) EXPECT_EQ(m.boundary_col, 40);
}

TEST(Floorplan, WholeDeviceReconfigRegionRejected) {
  Floorplan plan(xc2v2000());
  EXPECT_THROW(plan.add_region("D", 0, 47, true, 8, 8), pdr::Error);
}

TEST(Floorplan, RegionFramesAndFraction) {
  Floorplan plan(xc2v2000());
  plan.add_region("D1", 43, 47, true, 8, 8);
  const auto frames = plan.region_frames("D1");
  EXPECT_EQ(frames.size(), 5u * 22u);  // no BRAM columns on the right edge
  // The case-study region: ~8 % of the device (paper quotes 8 %).
  EXPECT_NEAR(plan.region_fraction("D1"), 0.079, 0.01);
  EXPECT_EQ(plan.region_payload_bytes("D1"),
            frames.size() * static_cast<Bytes>(plan.device().frame_bytes()));
}

TEST(Floorplan, RegionSlices) {
  Floorplan plan(xc2v2000());
  plan.add_region("D1", 43, 47, true, 8, 8);
  EXPECT_EQ(plan.region_slices("D1"), 5 * 56 * 4);
}

TEST(Floorplan, UnknownRegionThrows) {
  Floorplan plan(xc2v2000());
  EXPECT_THROW(plan.region("nope"), pdr::Error);
  EXPECT_EQ(plan.find_region("nope"), nullptr);
}

// --- bitstream relocation -------------------------------------------------------

struct RelocFixture {
  Floorplan plan{xc2v2000()};
  RelocFixture() {
    // Two congruent 3-column regions at the right edge (no BRAM columns).
    plan.add_region("A", 39, 41, true, 8, 8);
    plan.add_region("B", 42, 44, true, 8, 8);
    plan.add_region("narrow", 45, 47, true, 8, 8);
  }
};

TEST(Relocate, CongruenceChecks) {
  RelocFixture f;
  EXPECT_TRUE(regions_congruent(f.plan, "A", "B"));
  EXPECT_TRUE(regions_congruent(f.plan, "B", "A"));
  Floorplan mixed(xc2v2000());
  mixed.add_region("wide", 40, 44, true, 8, 8);
  mixed.add_region("slim", 45, 47, true, 8, 8);
  EXPECT_FALSE(regions_congruent(mixed, "wide", "slim"));
}

TEST(Relocate, BramMisalignmentBreaksCongruence) {
  // A region straddling a BRAM column (position 37) is not congruent with
  // one that has none.
  Floorplan plan(xc2v2000());
  plan.add_region("bram", 36, 39, true, 8, 8);   // BRAM col 37 inside
  plan.add_region("plain", 43, 46, true, 8, 8);  // none
  EXPECT_FALSE(regions_congruent(plan, "bram", "plain"));
}

TEST(Relocate, RelocatedStreamLoadsIntoTargetRegion) {
  RelocFixture f;
  const auto frames_a = f.plan.region_frames("A");
  const auto frames_b = f.plan.region_frames("B");
  const auto stream = synth::generate_partial_bitstream(f.plan.device(), frames_a, 777);

  const auto moved = relocate_bitstream(f.plan, stream, "A", "B");
  EXPECT_EQ(moved.size(), stream.size());  // same frames, same framing
  EXPECT_NE(moved, stream);                // but different addresses + CRC

  ConfigMemory mem(f.plan.device());
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  const auto report = port.load(moved, "moved_module");
  EXPECT_EQ(report.frames_written, static_cast<int>(frames_b.size()));
  EXPECT_TRUE(mem.region_owned_by(frames_b, "moved_module"));
  // Region A untouched.
  EXPECT_FALSE(mem.region_owned_by(frames_a, "moved_module"));
  // Payload preserved frame-for-frame.
  const FrameMap map(f.plan.device());
  const auto d0 = mem.read_frame(frames_b[0]);
  for (int b = 0; b < 8; ++b)
    EXPECT_EQ(d0[static_cast<std::size_t>(b)],
              synth::frame_payload_byte(777, map.linear_index(frames_a[0]), b));
}

TEST(Relocate, RoundTripRestoresOriginal) {
  RelocFixture f;
  const auto stream =
      synth::generate_partial_bitstream(f.plan.device(), f.plan.region_frames("A"), 42);
  const auto there = relocate_bitstream(f.plan, stream, "A", "B");
  const auto back = relocate_bitstream(f.plan, there, "B", "A");
  EXPECT_EQ(back, stream);
}

TEST(Relocate, IncompatibleRegionsRejected) {
  Floorplan plan(xc2v2000());
  plan.add_region("wide", 40, 44, true, 8, 8);
  plan.add_region("slim", 45, 47, true, 8, 8);
  const auto stream =
      synth::generate_partial_bitstream(plan.device(), plan.region_frames("wide"), 1);
  EXPECT_THROW(relocate_bitstream(plan, stream, "wide", "slim"), pdr::Error);
}

TEST(Relocate, StreamOutsideSourceRegionRejected) {
  RelocFixture f;
  // Stream actually targets 'narrow' but is declared as region A.
  const auto stream =
      synth::generate_partial_bitstream(f.plan.device(), f.plan.region_frames("narrow"), 1);
  EXPECT_THROW(relocate_bitstream(f.plan, stream, "A", "B"), pdr::Error);
}

// --- context save / restore (task state migration) -------------------------------

TEST(Context, SnapshotRestoresExactState) {
  RelocFixture f;
  ConfigMemory mem(f.plan.device());
  const auto frames = f.plan.region_frames("A");
  // Configure the region with a module.
  const auto stream = synth::generate_partial_bitstream(f.plan.device(), frames, 99);
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  port.load(stream, "task");

  // Mutate one frame (runtime state change: e.g. an SRL shifted).
  mem.flip_bit(frames[5], 12, 3);
  const auto snapshot = snapshot_region(mem, f.plan, "A");

  // Clobber the region, then restore the snapshot.
  port.load(synth::generate_partial_bitstream(f.plan.device(), frames, 1234), "other");
  EXPECT_NE(mem.read_frame(frames[5])[12],
            static_cast<std::uint8_t>(synth::frame_payload_byte(99, 0, 12) ^ 0));
  const int restored = restore_region(mem, f.plan, "A", snapshot, "task");
  EXPECT_EQ(restored, static_cast<int>(frames.size()));

  // The mutated state survived the round trip exactly.
  const fabric::FrameMap map(f.plan.device());
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const auto data = mem.read_frame(frames[k]);
    for (int b = 0; b < f.plan.device().frame_bytes(); b += 37) {
      std::uint8_t expect = synth::frame_payload_byte(99, map.linear_index(frames[k]), b);
      if (k == 5 && b == 12) expect ^= (1u << 3);
      EXPECT_EQ(data[static_cast<std::size_t>(b)], expect) << "frame " << k << " byte " << b;
    }
  }
  EXPECT_EQ(mem.frame_owner(frames[0]), "task");
}

TEST(Context, SnapshotMigratesToCongruentRegion) {
  // Save in region A, relocate the snapshot, resume in region B — task
  // migration with live state.
  RelocFixture f;
  ConfigMemory mem(f.plan.device());
  const auto frames_a = f.plan.region_frames("A");
  const auto frames_b = f.plan.region_frames("B");
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  port.load(synth::generate_partial_bitstream(f.plan.device(), frames_a, 55), "task");
  mem.flip_bit(frames_a[2], 7, 1);  // live state

  const auto snapshot = snapshot_region(mem, f.plan, "A");
  const auto moved = relocate_bitstream(f.plan, snapshot, "A", "B");
  restore_region(mem, f.plan, "B", moved, "task");

  // Region B now holds the state, including the live mutation.
  const fabric::FrameMap map(f.plan.device());
  const auto data = mem.read_frame(frames_b[2]);
  const std::uint8_t expect =
      synth::frame_payload_byte(55, map.linear_index(frames_a[2]), 7) ^ (1u << 1);
  EXPECT_EQ(data[7], expect);
}

TEST(Context, RestoreRejectsWrongRegion) {
  RelocFixture f;
  ConfigMemory mem(f.plan.device());
  const auto frames = f.plan.region_frames("A");
  ConfigPort port(PortKind::Icap, ConfigPort::default_timing(PortKind::Icap), mem);
  port.load(synth::generate_partial_bitstream(f.plan.device(), frames, 3), "task");
  const auto snapshot = snapshot_region(mem, f.plan, "A");
  EXPECT_THROW(restore_region(mem, f.plan, "narrow", snapshot, "task"), pdr::Error);
}

TEST(Floorplan, RenderShowsRegions) {
  Floorplan plan(xc2v2000());
  plan.add_region("S", 0, 1, false);
  plan.add_region("D1", 46, 47, true, 8, 8);
  const std::string r = plan.render();
  EXPECT_NE(r.find("SS"), std::string::npos);
  EXPECT_NE(r.find("DD"), std::string::npos);
  EXPECT_NE(r.find("(reconfigurable)"), std::string::npos);
}

}  // namespace
}  // namespace pdr::fabric
