#include <gtest/gtest.h>

#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault_spec.hpp"
#include "fault/injector.hpp"
#include "fault/scrub_scheduler.hpp"
#include "rtr/manager.hpp"
#include "sim/event_queue.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pdr::fault {
namespace {

using namespace pdr::literals;

synth::DesignBundle test_bundle() {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_static("ifft", "ifft", {{"n", 64}});
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  return flow.run();
}

rtr::ManagerConfig recovering_config() {
  rtr::ManagerConfig cfg;
  cfg.recovery.enabled = true;
  cfg.recovery.max_retries = 3;
  return cfg;
}

// --- fault spec ------------------------------------------------------------------

TEST(FaultSpec, ParsesEveryDirective) {
  const FaultSpec spec = parse_fault_spec(
      "# campaign\n"
      "seed 7\n"
      "horizon_ms 120\n"
      "seu D1 rate 400\n"
      "port abort_prob 0.08\n"
      "fetch corrupt qam16 prob 0.3\n"
      "store damage qam16 at_ms 60\n");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.horizon, 120_ms);
  ASSERT_EQ(spec.seus.size(), 1u);
  EXPECT_EQ(spec.seus[0].region, "D1");
  EXPECT_DOUBLE_EQ(spec.seus[0].rate_hz, 400.0);
  EXPECT_DOUBLE_EQ(spec.port_abort_prob, 0.08);
  ASSERT_NE(spec.find_fetch_fault("qam16"), nullptr);
  EXPECT_DOUBLE_EQ(spec.find_fetch_fault("qam16")->prob, 0.3);
  ASSERT_EQ(spec.store_damages.size(), 1u);
  EXPECT_EQ(spec.store_damages[0].at, 60_ms);
  EXPECT_EQ(spec.find_seu("D2"), nullptr);
}

TEST(FaultSpec, DefaultsWithEmptyText) {
  const FaultSpec spec = parse_fault_spec("");
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.horizon, 100_ms);
  EXPECT_TRUE(spec.seus.empty());
  EXPECT_DOUBLE_EQ(spec.port_abort_prob, 0.0);
}

TEST(FaultSpec, RejectsBadInput) {
  EXPECT_THROW(parse_fault_spec("frobnicate\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("seu D1 rate 0\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("seu D1 rate -3\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("port abort_prob 1.5\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("fetch corrupt m prob nan-ish\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("horizon_ms 0\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("seu D1 rate 10\nseu D1 rate 20\n"), pdr::Error);
  EXPECT_THROW(parse_fault_spec("fetch corrupt m prob 0.1\nfetch corrupt m prob 0.2\n"),
               pdr::Error);
  // Errors carry the offending line.
  try {
    parse_fault_spec("seed 1\nbogus\n");
    FAIL() << "expected pdr::Error";
  } catch (const pdr::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(FaultSpec, WriteParseRoundTrip) {
  FaultSpec spec;
  spec.seed = 99;
  spec.horizon = 250_ms;
  spec.seus.push_back(SeuProcess{"D1", 123.5});
  spec.port_abort_prob = 0.25;
  spec.fetch_faults.push_back(FetchFault{"qam16", 0.125});
  spec.store_damages.push_back(StoreDamage{"qpsk", 30_ms});
  const FaultSpec back = parse_fault_spec(write_fault_spec(spec));
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.horizon, spec.horizon);
  ASSERT_EQ(back.seus.size(), 1u);
  EXPECT_DOUBLE_EQ(back.seus[0].rate_hz, 123.5);
  EXPECT_DOUBLE_EQ(back.port_abort_prob, 0.25);
  ASSERT_EQ(back.fetch_faults.size(), 1u);
  EXPECT_DOUBLE_EQ(back.fetch_faults[0].prob, 0.125);
  ASSERT_EQ(back.store_damages.size(), 1u);
  EXPECT_EQ(back.store_damages[0].at, 30_ms);
}

// --- injector --------------------------------------------------------------------

TEST(FaultSpec, StoreRepairDirectiveParsesAndRoundTrips) {
  const FaultSpec spec = parse_fault_spec(
      "store damage qam16 at_ms 5\n"
      "store repair qam16 at_ms 40\n");
  ASSERT_EQ(spec.store_damages.size(), 1u);
  ASSERT_EQ(spec.store_repairs.size(), 1u);
  EXPECT_EQ(spec.store_repairs[0].module, "qam16");
  EXPECT_EQ(spec.store_repairs[0].at, 40_ms);
  const FaultSpec back = parse_fault_spec(write_fault_spec(spec));
  ASSERT_EQ(back.store_repairs.size(), 1u);
  EXPECT_EQ(back.store_repairs[0].module, spec.store_repairs[0].module);
  EXPECT_EQ(back.store_repairs[0].at, spec.store_repairs[0].at);
}

TEST(FaultInjector, SeuTimelineIsPoissonLikeAndDeterministic) {
  FaultSpec spec;
  spec.horizon = 1_s;
  spec.seus.push_back(SeuProcess{"D1", 100.0});
  const FaultInjector a(spec, 42);
  const FaultInjector b(spec, 42);
  const auto ta = a.seu_timeline("D1", 50, 100);
  const auto tb = b.seu_timeline("D1", 50, 100);
  ASSERT_FALSE(ta.empty());
  // ~100 events expected over 1 s at 100/s; allow wide slack.
  EXPECT_GT(ta.size(), 50u);
  EXPECT_LT(ta.size(), 200u);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].frame_offset, tb[i].frame_offset);
    EXPECT_EQ(ta[i].byte_index, tb[i].byte_index);
    EXPECT_EQ(ta[i].bit, tb[i].bit);
    EXPECT_LT(ta[i].at, spec.horizon);
    EXPECT_LT(ta[i].frame_offset, 50u);
    EXPECT_LT(ta[i].byte_index, 100);
    EXPECT_GE(ta[i].bit, 0);
    EXPECT_LE(ta[i].bit, 7);
    if (i > 0) {
      EXPECT_GE(ta[i].at, ta[i - 1].at);
    }
  }
  // A different seed moves the timeline.
  const FaultInjector c(spec, 43);
  const auto tc = c.seu_timeline("D1", 50, 100);
  EXPECT_TRUE(tc.size() != ta.size() || tc[0].at != ta[0].at);
  // No `seu` directive for the region -> empty timeline.
  EXPECT_TRUE(a.seu_timeline("D2", 50, 100).empty());
}

TEST(FaultInjector, StreamsAreIndependentPerFaultKind) {
  FaultSpec spec;
  spec.horizon = 500_ms;
  spec.seus.push_back(SeuProcess{"D1", 50.0});
  FaultSpec wider = spec;
  wider.port_abort_prob = 0.5;
  wider.fetch_faults.push_back(FetchFault{"qam16", 0.5});
  // Adding port/fetch faults must not move a single SEU.
  const auto base = FaultInjector(spec, 7).seu_timeline("D1", 20, 80);
  const auto with = FaultInjector(wider, 7).seu_timeline("D1", 20, 80);
  ASSERT_EQ(base.size(), with.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].at, with[i].at);
    EXPECT_EQ(base[i].frame_offset, with[i].frame_offset);
  }
}

TEST(FaultInjector, PortAbortDrawsRespectProbability) {
  FaultSpec never;
  FaultInjector off(never, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(off.next_port_abort(), -1.0);
  EXPECT_EQ(off.port_aborts_armed(), 0);

  FaultSpec always;
  always.port_abort_prob = 1.0;
  FaultInjector on(always, 1);
  for (int i = 0; i < 100; ++i) {
    const double f = on.next_port_abort();
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
  }
  EXPECT_EQ(on.port_aborts_armed(), 100);
}

TEST(FaultInjector, FetchCorruptionFlipsExactlyOneByte) {
  FaultSpec spec;
  spec.fetch_faults.push_back(FetchFault{"m", 1.0});
  FaultInjector inj(spec, 5);
  std::vector<std::uint8_t> bytes(256, 0xAB);
  ASSERT_TRUE(inj.maybe_corrupt_fetch("m", bytes));
  int changed = 0;
  for (const std::uint8_t b : bytes) changed += b != 0xAB;
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(inj.fetch_corruptions(), 1);
  // Unlisted module: never corrupted.
  std::vector<std::uint8_t> other(64, 1);
  EXPECT_FALSE(inj.maybe_corrupt_fetch("other", other));
  EXPECT_EQ(other, std::vector<std::uint8_t>(64, 1));
}

// --- self-healing manager --------------------------------------------------------

TEST(SelfHealing, RetriesTransientFetchCorruption) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, recovering_config(), store, policy);
  // First fetch arrives corrupted (CRC reject), every later one is clean.
  int fetches = 0;
  manager.set_fetch_fault_hook([&fetches](const std::string&, std::vector<std::uint8_t>& bytes) {
    if (++fetches == 1) {
      bytes[bytes.size() / 2] ^= 0xFF;
      return true;
    }
    return false;
  });
  const auto out = manager.request("D1", "qpsk", 0);
  EXPECT_EQ(manager.loaded("D1"), "qpsk");
  EXPECT_EQ(manager.verify_resident("D1"), 0);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Healthy);
  EXPECT_EQ(manager.stats().crc_rejects, 1);
  EXPECT_EQ(manager.stats().retries, 1);
  EXPECT_EQ(manager.stats().fallbacks, 0);
  // The retry costs extra time beyond one cold load.
  EXPECT_GT(out.stall, manager.cold_load_latency("qpsk"));
}

TEST(SelfHealing, RetriesTransientPortAbort) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, recovering_config(), store, policy);
  int loads = 0;
  manager.port().set_fault_hook([&loads](Bytes, const std::string&) {
    return ++loads == 1 ? 0.5 : -1.0;  // first transfer dies halfway
  });
  manager.request("D1", "qam16", 0);
  EXPECT_EQ(manager.loaded("D1"), "qam16");
  EXPECT_EQ(manager.verify_resident("D1"), 0);
  EXPECT_EQ(manager.stats().port_aborts, 1);
  EXPECT_EQ(manager.port().aborted_loads(), 1);
  EXPECT_EQ(manager.stats().retries, 1);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Healthy);
}

TEST(SelfHealing, FallsBackToSafeModuleOnPermanentDamage) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ManagerConfig cfg = recovering_config();
  cfg.recovery.max_retries = 2;
  rtr::ReconfigManager manager(bundle, cfg, store, policy);
  manager.set_safe_module("D1", "qpsk");
  // Permanent store damage: every fetch of qam16 fails CRC forever.
  store.corrupt("qam16", store.size_of("qam16") / 2);
  const auto out = manager.request("D1", "qam16", 0);
  EXPECT_EQ(manager.loaded("D1"), "qpsk");  // the safe personality
  EXPECT_EQ(manager.verify_resident("D1"), 0);
  EXPECT_EQ(manager.stats().fallbacks, 1);
  EXPECT_EQ(manager.stats().retries, 2);
  EXPECT_GE(manager.stats().blanks, 1);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Healthy);
  EXPECT_GT(out.stall, 0);
}

TEST(SelfHealing, FailsRegionWhenNoSafeModuleWorks) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ManagerConfig cfg = recovering_config();
  cfg.recovery.max_retries = 1;
  rtr::ReconfigManager manager(bundle, cfg, store, policy);
  manager.set_safe_module("D1", "qpsk");
  store.corrupt("qpsk", 100);
  store.corrupt("qam16", 100);
  manager.request("D1", "qam16", 0);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Failed);
  EXPECT_TRUE(manager.loaded("D1").empty());
  EXPECT_GE(manager.stats().fallbacks, 1);
}

TEST(SelfHealing, RecoveryDisabledStillThrows) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, rtr::ManagerConfig{}, store, policy);
  store.corrupt("qam16", 100);
  EXPECT_THROW(manager.request("D1", "qam16", 0), pdr::Error);
  EXPECT_TRUE(manager.loaded("D1").empty());
  EXPECT_EQ(manager.stats().retries, 0);
  EXPECT_EQ(manager.stats().fallbacks, 0);
}

TEST(SelfHealing, RetryJitterIsSeededAndReproducible) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::ManagerConfig cfg = recovering_config();
  cfg.recovery.max_retries = 2;
  cfg.recovery.retry_backoff = 1_ms;
  cfg.recovery.backoff_factor = 1.0;
  cfg.recovery.jitter_frac = 0.5;
  cfg.recovery.jitter_seed = 77;
  const auto run_once = [&bundle](const rtr::ManagerConfig& config) {
    rtr::BitstreamStore store(100e6, 0);
    rtr::NonePrefetch policy;
    rtr::ReconfigManager manager(bundle, config, store, policy);
    manager.set_safe_module("D1", "qpsk");
    store.corrupt("qam16", 100);  // every fetch fails: full retry chain runs
    return manager.request("D1", "qam16", 0);
  };
  // Same seed, same jittered backoff chain — bit-reproducible.
  const auto a = run_once(cfg);
  const auto b = run_once(cfg);
  EXPECT_EQ(a.ready_at, b.ready_at);
  EXPECT_EQ(a.stall, b.stall);
  // The jitter stream really scales the waits: a different seed and a
  // disabled jitter both shift the retry chain's completion.
  rtr::ManagerConfig reseeded = cfg;
  reseeded.recovery.jitter_seed = 78;
  EXPECT_NE(run_once(reseeded).ready_at, a.ready_at);
  rtr::ManagerConfig no_jitter = cfg;
  no_jitter.recovery.jitter_frac = 0.0;
  EXPECT_NE(run_once(no_jitter).ready_at, a.ready_at);
}

TEST(SelfHealing, TotalBackoffCeilingCutsRetriesExactly) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::ManagerConfig cfg = recovering_config();
  cfg.recovery.max_retries = 5;
  cfg.recovery.retry_backoff = 1_ms;
  cfg.recovery.backoff_factor = 1.0;
  const auto retries_with_cap = [&bundle, &cfg](TimeNs cap) {
    rtr::ManagerConfig capped = cfg;
    capped.recovery.max_total_backoff = cap;
    rtr::BitstreamStore store(100e6, 0);
    rtr::NonePrefetch policy;
    rtr::ReconfigManager manager(bundle, capped, store, policy);
    manager.set_safe_module("D1", "qpsk");
    store.corrupt("qam16", 100);
    manager.request("D1", "qam16", 0);
    EXPECT_EQ(manager.stats().fallbacks, 1);
    EXPECT_EQ(manager.loaded("D1"), "qpsk");
    return manager.stats().retries;
  };
  // Unbounded: the full retry budget runs. A 2.5 ms ceiling admits two
  // 1 ms waits and abandons the third; a sub-backoff ceiling admits none.
  EXPECT_EQ(retries_with_cap(0), 5);
  EXPECT_EQ(retries_with_cap(2'500'000), 2);
  EXPECT_EQ(retries_with_cap(500'000), 0);
}

TEST(SelfHealing, StatsReportPerRegionTransitionCounts) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ManagerConfig cfg = recovering_config();
  cfg.recovery.max_retries = 1;
  rtr::ReconfigManager manager(bundle, cfg, store, policy);
  manager.set_safe_module("D1", "qpsk");
  store.corrupt("qam16", 100);
  manager.request("D1", "qam16", 0);  // degrades, then the fallback heals
  const auto& counts = manager.stats().health_transition_counts;
  ASSERT_EQ(counts.count("D1"), 1u);
  EXPECT_GE(counts.at("D1").at("healthy->degraded"), 1);
  EXPECT_GE(counts.at("D1").at("degraded->healthy"), 1);
  // The directed counts reconcile with the flat transition total and are
  // part of the printed stats block.
  int total = 0;
  for (const auto& [edge, n] : counts.at("D1")) total += n;
  EXPECT_EQ(total, manager.stats().health_transitions);
  const std::string text = manager.stats().to_string();
  EXPECT_NE(text.find("transition D1"), std::string::npos) << text;
  EXPECT_NE(text.find("healthy->degraded"), std::string::npos) << text;
}

TEST(SelfHealing, CheckHealthTracksCorruptionAndRepair) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, recovering_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  EXPECT_EQ(manager.check_health("D1", 0), 0);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Healthy);

  const auto frames = bundle.floorplan.region_frames("D1");
  manager.memory().flip_bit(frames[3], 5, 2);
  EXPECT_EQ(manager.check_health("D1", 1_ms), 1);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Degraded);

  manager.scrub("D1", 2_ms);
  EXPECT_EQ(manager.stats().scrub_repairs, 1);
  EXPECT_EQ(manager.check_health("D1", 3_ms), 0);
  EXPECT_EQ(manager.health("D1"), rtr::RegionHealth::Healthy);
  EXPECT_GE(manager.stats().health_transitions, 2);
  EXPECT_THROW(manager.check_health("ghost", 0), pdr::Error);
}

// --- scrub scheduler -------------------------------------------------------------

TEST(ScrubSchedulerTest, BlindModeRepairsInjectedUpsets) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, recovering_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  const auto frames = bundle.floorplan.region_frames("D1");

  sim::EventQueue queue;
  ScrubScheduler scrubber(queue, manager, {"D1"}, 1_ms);
  scrubber.start();
  queue.schedule(500_us, "seu", [&](TimeNs) { manager.memory().flip_bit(frames[0], 1, 1); });
  queue.schedule(2'500_us, "seu", [&](TimeNs) { manager.memory().flip_bit(frames[1], 2, 2); });
  queue.run(10_ms);
  EXPECT_EQ(scrubber.stats().ticks, 10);
  EXPECT_EQ(scrubber.stats().scrubs, 10);  // blind: every tick rewrites
  EXPECT_EQ(scrubber.stats().frames_repaired, 2);
  EXPECT_EQ(manager.verify_resident("D1"), 0);
}

TEST(ScrubSchedulerTest, ReadbackModeSkipsCleanRegions) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, recovering_config(), store, policy);
  manager.set_resident("D1", "qpsk");
  const auto frames = bundle.floorplan.region_frames("D1");

  sim::EventQueue queue;
  ScrubScheduler scrubber(queue, manager, {"D1"}, 1_ms, ScrubScheduler::Mode::ReadbackTriggered);
  scrubber.start();
  queue.schedule(4'500_us, "seu", [&](TimeNs) { manager.memory().flip_bit(frames[0], 1, 1); });
  queue.run(10_ms);
  EXPECT_EQ(scrubber.stats().ticks, 10);
  EXPECT_EQ(scrubber.stats().scrubs, 1);  // only the dirty tick rewrites
  EXPECT_EQ(scrubber.stats().frames_repaired, 1);
  EXPECT_EQ(manager.verify_resident("D1"), 0);

  EXPECT_THROW(ScrubScheduler(queue, manager, {"D1"}, 0), pdr::Error);
  EXPECT_THROW(ScrubScheduler(queue, manager, {}, 1_ms), pdr::Error);
}

// --- campaign acceptance ---------------------------------------------------------

FaultSpec acceptance_spec() {
  FaultSpec spec;
  spec.seed = 7;
  spec.horizon = 80_ms;
  spec.seus.push_back(SeuProcess{"D1", 500.0});
  spec.port_abort_prob = 0.1;
  spec.fetch_faults.push_back(FetchFault{"qam16", 0.3});
  spec.store_damages.push_back(StoreDamage{"qam16", 40_ms});
  return spec;
}

TEST(Campaign, RecoveryEndsWithEveryRegionHealthyAndClean) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  CampaignConfig config;
  config.recovery = true;
  const CampaignReport report = run_campaign(bundle, store, acceptance_spec(), config);
  EXPECT_GT(report.seus_injected, 0);
  EXPECT_GT(report.demands, 0);
  EXPECT_EQ(report.unrecovered_errors, 0);
  // The acceptance bar: zero silent corruption at the horizon.
  EXPECT_TRUE(report.all_healthy());
  ASSERT_FALSE(report.regions.empty());
  for (const RegionOutcome& r : report.regions) {
    EXPECT_EQ(r.health, rtr::RegionHealth::Healthy) << r.region;
    EXPECT_EQ(r.corrupted_frames, 0) << r.region;
    EXPECT_FALSE(r.resident.empty()) << r.region;
  }
  EXPECT_EQ(report.total_corrupted_frames(), 0);
}

TEST(Campaign, NoRecoveryNoScrubLeavesCorruptedFrames) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  CampaignConfig config;
  config.recovery = false;
  config.scrub_period = 0;
  const CampaignReport report = run_campaign(bundle, store, acceptance_spec(), config);
  EXPECT_GT(report.seus_injected, 0);
  EXPECT_GT(report.total_corrupted_frames(), 0);
}

TEST(Campaign, SameSeedSameReportBitForBit) {
  const synth::DesignBundle bundle = test_bundle();
  CampaignConfig config;
  rtr::BitstreamStore store_a(100e6, 0);
  rtr::BitstreamStore store_b(100e6, 0);
  const CampaignReport a = run_campaign(bundle, store_a, acceptance_spec(), config);
  const CampaignReport b = run_campaign(bundle, store_b, acceptance_spec(), config);
  EXPECT_EQ(a.to_string(), b.to_string());
  // An explicit config seed overrides the spec's and changes the run.
  CampaignConfig reseeded = config;
  reseeded.seed = 12345;
  rtr::BitstreamStore store_c(100e6, 0);
  const CampaignReport c = run_campaign(bundle, store_c, acceptance_spec(), reseeded);
  EXPECT_EQ(c.seed, 12345u);
  EXPECT_NE(c.to_string(), a.to_string());
}

TEST(Campaign, StoreRepairClosesTheOutageWindow) {
  // Damage qam16 early, re-flash it mid-horizon: the campaign must apply
  // both events and end with every region healthy — the outage window is
  // bounded, not permanent.
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  const FaultSpec spec = parse_fault_spec(
      "seed 13\n"
      "horizon_ms 100\n"
      "store damage qam16 at_ms 5\n"
      "store repair qam16 at_ms 40\n");
  CampaignConfig config;
  config.recovery = true;
  const CampaignReport report = run_campaign(bundle, store, spec, config);
  EXPECT_EQ(report.store_damages, 1);
  EXPECT_EQ(report.store_repairs, 1);
  // Demands inside the window fell back; after the repair qam16 loads
  // cleanly again, so the horizon state is healthy.
  EXPECT_GT(report.manager.fallbacks + report.manager.retries, 0);
  EXPECT_TRUE(report.all_healthy());
  EXPECT_NE(report.to_string().find("store_repairs"), std::string::npos);
}

TEST(Campaign, RejectsSpecNamingUnknownTargets) {
  const synth::DesignBundle bundle = test_bundle();
  rtr::BitstreamStore store(100e6, 0);
  CampaignConfig config;
  FaultSpec bad_region;
  bad_region.seus.push_back(SeuProcess{"D9", 10.0});
  EXPECT_THROW(run_campaign(bundle, store, bad_region, config), pdr::Error);
  FaultSpec bad_module;
  bad_module.store_damages.push_back(StoreDamage{"ghost", 1_ms});
  EXPECT_THROW(run_campaign(bundle, store, bad_module, config), pdr::Error);
}

}  // namespace
}  // namespace pdr::fault
