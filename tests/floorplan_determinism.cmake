# Black-box check of the floorplanner determinism contract, both ways it
# ships: (a) `pdrflow floorplan` run twice prints byte-identical stdout
# (the local search is seeded and serial), and (b) `pdrflow explore
# --floorplan` — the co-optimized axis inside the explorer — is
# byte-identical at --jobs 1 and --jobs 8. Invoked by the
# cli_floorplan_determinism ctest entry with -DPDRFLOW=<path>
# -DPROJECT=<project-file>.
execute_process(COMMAND ${PDRFLOW} floorplan ${PROJECT}
                OUTPUT_VARIABLE first_out RESULT_VARIABLE first_rc
                ERROR_VARIABLE first_err)
execute_process(COMMAND ${PDRFLOW} floorplan ${PROJECT}
                OUTPUT_VARIABLE second_out RESULT_VARIABLE second_rc
                ERROR_VARIABLE second_err)
if(NOT first_rc EQUAL 0)
  message(FATAL_ERROR "floorplan run 1 failed (exit ${first_rc}):\n${first_err}")
endif()
if(NOT second_rc EQUAL 0)
  message(FATAL_ERROR "floorplan run 2 failed (exit ${second_rc}):\n${second_err}")
endif()
if(NOT first_out STREQUAL second_out)
  message(FATAL_ERROR "floorplan stdout differs between identical runs:\n"
                      "--- run 1 ---\n${first_out}\n--- run 2 ---\n${second_out}")
endif()

execute_process(COMMAND ${PDRFLOW} explore ${PROJECT} --floorplan --jobs 1
                OUTPUT_VARIABLE serial_out RESULT_VARIABLE serial_rc
                ERROR_VARIABLE serial_err)
execute_process(COMMAND ${PDRFLOW} explore ${PROJECT} --floorplan --jobs 8
                OUTPUT_VARIABLE parallel_out RESULT_VARIABLE parallel_rc
                ERROR_VARIABLE parallel_err)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial explore --floorplan failed (exit ${serial_rc}):\n${serial_err}")
endif()
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel explore --floorplan failed (exit ${parallel_rc}):\n${parallel_err}")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "explore --floorplan --jobs 8 stdout differs from --jobs 1:\n"
                      "--- serial ---\n${serial_out}\n--- parallel ---\n${parallel_out}")
endif()
message(STATUS "floorplan and explore --floorplan stdout byte-identical across runs/jobs")
