// pdr::flow tests: fingerprints, the content-addressed artifact store,
// pipeline cache hit/invalidation (a one-byte input edit re-runs exactly
// the downstream stages), and the scenario runner's determinism contract
// (serial and parallel sweeps produce byte-identical merged output).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "flow/artifact_store.hpp"
#include "flow/fingerprint.hpp"
#include "flow/pipeline.hpp"
#include "flow/scenario.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "util/error.hpp"

using namespace pdr;

namespace {

// --- fingerprints -----------------------------------------------------

TEST(Fingerprint, Deterministic) {
  EXPECT_EQ(flow::fingerprint_of("abc").value(), flow::fingerprint_of("abc").value());
  EXPECT_NE(flow::fingerprint_of("abc").value(), flow::fingerprint_of("abd").value());
}

TEST(Fingerprint, LengthPrefixedNoConcatenationAliasing) {
  flow::Fingerprint a;
  a.mix(std::string("ab")).mix(std::string("c"));
  flow::Fingerprint b;
  b.mix(std::string("a")).mix(std::string("bc"));
  EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, OrderSensitive) {
  flow::Fingerprint a;
  a.mix(std::uint64_t{1}).mix(std::uint64_t{2});
  flow::Fingerprint b;
  b.mix(std::uint64_t{2}).mix(std::uint64_t{1});
  EXPECT_NE(a.value(), b.value());
}

// --- artifact store ---------------------------------------------------

TEST(ArtifactStore, BuildsOnceThenServesFromCache) {
  flow::ArtifactStore store;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return 42;
  };
  const auto key = flow::fingerprint_of("k");
  EXPECT_EQ(*store.get_or_build<int>("stage", key, build), 42);
  EXPECT_EQ(*store.get_or_build<int>("stage", key, build), 42);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(store.runs("stage"), 1u);
  EXPECT_EQ(store.hits("stage"), 1u);
}

TEST(ArtifactStore, DistinctKeysAndStagesAreDistinctEntries) {
  flow::ArtifactStore store;
  store.get_or_build<int>("a", flow::fingerprint_of("x"), [] { return 1; });
  store.get_or_build<int>("a", flow::fingerprint_of("y"), [] { return 2; });
  store.get_or_build<int>("b", flow::fingerprint_of("x"), [] { return 3; });
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.runs("a"), 2u);
  EXPECT_EQ(store.runs("b"), 1u);
  EXPECT_EQ(*store.get_or_build<int>("a", flow::fingerprint_of("x"), [] { return 9; }), 1);
}

TEST(ArtifactStore, ThrowingBuilderDoesNotPoisonTheKey) {
  flow::ArtifactStore store;
  const auto key = flow::fingerprint_of("k");
  EXPECT_THROW(store.get_or_build<int>("s", key,
                                       []() -> int { throw Error("builder failed"); }),
               Error);
  EXPECT_EQ(*store.get_or_build<int>("s", key, [] { return 7; }), 7);
  EXPECT_EQ(store.runs("s"), 2u);  // both attempts ran the builder
}

TEST(ArtifactStore, RequestingWrongTypeThrows) {
  flow::ArtifactStore store;
  const auto key = flow::fingerprint_of("k");
  store.get_or_build<int>("s", key, [] { return 1; });
  EXPECT_THROW(store.get_or_build<double>("s", key, [] { return 1.0; }), Error);
}

TEST(ArtifactStore, SingleFlightUnderConcurrency) {
  flow::ArtifactStore store;
  const auto key = flow::fingerprint_of("k");
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  std::vector<int> results(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto v = store.get_or_build<int>("s", key, [&] {
        ++builds;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return 5;
      });
      results[static_cast<std::size_t>(t)] = *v;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(store.runs("s"), 1u);
  EXPECT_EQ(store.hits("s"), 7u);
  for (int r : results) EXPECT_EQ(r, 5);
}

TEST(ArtifactStore, ExportsRunAndHitMetrics) {
  flow::ArtifactStore store;
  const auto key = flow::fingerprint_of("k");
  store.get_or_build<int>("synth", key, [] { return 1; });
  store.get_or_build<int>("synth", key, [] { return 1; });
  obs::MetricsRegistry metrics;
  store.export_metrics(metrics);
  EXPECT_EQ(metrics.counter("flow.cache.synth.runs").value(), 1.0);
  EXPECT_EQ(metrics.counter("flow.cache.synth.hits").value(), 1.0);
}

// --- pipeline caching -------------------------------------------------

flow::PipelineOptions case_study_options() {
  flow::PipelineOptions options;
  options.constraints_text = mccdma::case_study_constraints_text();
  options.statics = mccdma::case_study_statics();
  aaa::Project project;
  project.name = "t";
  project.algorithm = mccdma::make_transmitter_algorithm(mccdma::McCdmaParams{});
  project.architecture = aaa::make_sundance_architecture();
  project.durations = aaa::mccdma_durations();
  options.project_text = aaa::write_project(project);
  return options;
}

TEST(Pipeline, RepeatedStageWithUnchangedInputsIsServedFromCache) {
  auto store = std::make_shared<flow::ArtifactStore>();
  flow::Pipeline first(case_study_options(), store);
  flow::Pipeline second(case_study_options(), store);

  const auto b1 = first.bundle();
  const auto b2 = second.bundle();
  EXPECT_EQ(store->runs(flow::stage::kSynth), 1u);
  EXPECT_GE(store->hits(flow::stage::kSynth), 1u);
  EXPECT_EQ(b1.get(), b2.get());  // literally the same artifact

  // Same pipeline asked again: still one run.
  first.bundle();
  EXPECT_EQ(store->runs(flow::stage::kSynth), 1u);
}

TEST(Pipeline, ConstraintsEditRerunsExactlyTheConstraintsSide) {
  auto store = std::make_shared<flow::ArtifactStore>();
  flow::Pipeline base(case_study_options(), store);
  base.bundle();
  base.adequation();
  base.codegen();
  EXPECT_EQ(store->runs(flow::stage::kParseConstraints), 1u);
  EXPECT_EQ(store->runs(flow::stage::kSynth), 1u);
  EXPECT_EQ(store->runs(flow::stage::kParseProject), 1u);
  EXPECT_EQ(store->runs(flow::stage::kAdequation), 1u);
  EXPECT_EQ(store->runs(flow::stage::kCodegen), 1u);

  // One-byte edit of the constraints input: the constraints side
  // (parse, lint, synth) re-runs, and codegen (whose generated wiring
  // reads the constraints + floorplan) re-runs — but the project parse
  // and the adequation are untouched upstream, so they stay cached.
  flow::PipelineOptions edited = case_study_options();
  edited.constraints_text += "#";
  flow::Pipeline changed(std::move(edited), store);
  changed.bundle();
  changed.adequation();
  changed.codegen();
  EXPECT_EQ(store->runs(flow::stage::kParseConstraints), 2u);
  EXPECT_EQ(store->runs(flow::stage::kLint), 2u);
  EXPECT_EQ(store->runs(flow::stage::kSynth), 2u);
  EXPECT_EQ(store->runs(flow::stage::kCodegen), 2u);
  EXPECT_EQ(store->runs(flow::stage::kParseProject), 1u);  // cached
  EXPECT_EQ(store->runs(flow::stage::kAdequation), 1u);    // cached
}

TEST(Pipeline, ProjectEditRerunsExactlyTheProjectSide) {
  auto store = std::make_shared<flow::ArtifactStore>();
  flow::Pipeline base(case_study_options(), store);
  base.bundle();
  base.adequation();
  base.codegen();

  flow::PipelineOptions edited = case_study_options();
  edited.project_text += "\n";
  flow::Pipeline changed(std::move(edited), store);
  changed.bundle();
  changed.adequation();
  changed.codegen();
  EXPECT_EQ(store->runs(flow::stage::kParseConstraints), 1u);  // cached
  EXPECT_EQ(store->runs(flow::stage::kSynth), 1u);             // cached
  EXPECT_EQ(store->runs(flow::stage::kParseProject), 2u);
  EXPECT_EQ(store->runs(flow::stage::kAdequation), 2u);
  EXPECT_EQ(store->runs(flow::stage::kCodegen), 2u);
}

TEST(Pipeline, AdequationKnobsArePartOfTheCacheKey) {
  auto store = std::make_shared<flow::ArtifactStore>();
  flow::PipelineOptions options = case_study_options();
  flow::Pipeline with_prefetch(options, store);
  with_prefetch.adequation();
  options.prefetch = false;
  flow::Pipeline without_prefetch(options, store);
  without_prefetch.adequation();
  EXPECT_EQ(store->runs(flow::stage::kAdequation), 2u);
  EXPECT_EQ(store->runs(flow::stage::kParseProject), 1u);  // same text
}

TEST(Pipeline, ReconfigCostCallbackRequiresTag) {
  flow::PipelineOptions options = case_study_options();
  options.reconfig_cost_fn = [](const std::string&, const std::string&) -> TimeNs { return 1; };
  EXPECT_THROW(flow::Pipeline(std::move(options)), Error);
}

TEST(Pipeline, FaultCampaignCachedBySeed) {
  auto store = std::make_shared<flow::ArtifactStore>();
  flow::PipelineOptions options;
  options.constraints_text = mccdma::case_study_constraints_text();
  options.statics = mccdma::case_study_statics();
  flow::Pipeline pipeline(std::move(options), store);

  const std::string spec = "horizon_ms 50\nseu D1 rate 100\n";
  flow::FaultCampaignOptions opts;
  opts.seed = 3;
  const auto r1 = pipeline.fault_campaign(spec, opts);
  const auto r2 = pipeline.fault_campaign(spec, opts);
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(store->runs(flow::stage::kFaultCampaign), 1u);
  opts.seed = 4;
  pipeline.fault_campaign(spec, opts);
  EXPECT_EQ(store->runs(flow::stage::kFaultCampaign), 2u);
}

// --- scenario runner --------------------------------------------------

std::vector<flow::Scenario> three_seed_sweep() {
  std::vector<flow::Scenario> scenarios;
  for (std::uint64_t seed : {42u, 43u, 44u}) {
    scenarios.push_back(mccdma::transmitter_scenario(
        "seed=" + std::to_string(seed),
        mccdma::sweep_system_config(aaa::PrefetchChoice::Schedule, seed), 256));
  }
  return scenarios;
}

TEST(ScenarioRunner, SerialAndParallelSweepsAreByteIdentical) {
  mccdma::shared_case_study();  // warm the shared bundle
  const auto scenarios = three_seed_sweep();
  const flow::SweepResult serial = flow::ScenarioRunner(1).run(scenarios);
  const flow::SweepResult parallel = flow::ScenarioRunner(4).run(scenarios);

  ASSERT_EQ(serial.results.size(), 3u);
  EXPECT_EQ(serial.failures(), 0u);
  EXPECT_EQ(serial.combined_report(), parallel.combined_report());
  EXPECT_EQ(serial.metrics.to_json(), parallel.metrics.to_json());
  EXPECT_EQ(serial.trace.to_chrome_json(), parallel.trace.to_chrome_json());
}

TEST(ScenarioRunner, MergesTracksUnderScenarioNamePrefixes) {
  std::vector<flow::Scenario> scenarios;
  for (int i = 0; i < 3; ++i) {
    scenarios.push_back({"scn" + std::to_string(i), [i](flow::ObsSinks& sinks) {
                           sinks.tracer.instant("track", "evt", "cat", i);
                           return "r" + std::to_string(i) + "\n";
                         }});
  }
  const flow::SweepResult sweep = flow::ScenarioRunner(2).run(scenarios);
  ASSERT_EQ(sweep.trace.size(), 3u);
  EXPECT_EQ(sweep.trace.events()[0].track, "scn0/track");
  EXPECT_EQ(sweep.trace.events()[2].track, "scn2/track");
  EXPECT_EQ(sweep.combined_report(), "=== scn0 ===\nr0\n=== scn1 ===\nr1\n=== scn2 ===\nr2\n");
}

TEST(ScenarioRunner, MergedMetricsAreExactUnderEightJobs) {
  // 32 scenarios on 8 workers, each recording into its own registry;
  // the merge must count every observation exactly once. (The CI TSan
  // job runs this test to prove data-race freedom, not just totals.)
  std::vector<flow::Scenario> scenarios;
  for (int i = 0; i < 32; ++i) {
    scenarios.push_back({"s" + std::to_string(i), [i](flow::ObsSinks& sinks) {
                           for (int k = 0; k <= i; ++k) sinks.metrics.counter("sweep.work").add();
                           sinks.metrics.histogram("sweep.h", {1.0, 10.0}).observe(i);
                           return std::string();
                         }});
  }
  flow::SweepResult sweep = flow::ScenarioRunner(8).run(scenarios);
  EXPECT_EQ(sweep.failures(), 0u);
  // sum over i of (i+1) = 32*33/2
  EXPECT_EQ(sweep.metrics.counter("sweep.work").value(), 528.0);
  EXPECT_EQ(sweep.metrics.histogram("sweep.h", {1.0, 10.0}).count(), 32u);
}

TEST(ScenarioRunner, ScenarioExceptionIsIsolated) {
  std::vector<flow::Scenario> scenarios = {
      {"ok", [](flow::ObsSinks&) { return std::string("fine\n"); }},
      {"boom", [](flow::ObsSinks&) -> std::string { throw Error("exploded"); }},
  };
  const flow::SweepResult sweep = flow::ScenarioRunner(2).run(scenarios);
  EXPECT_EQ(sweep.failures(), 1u);
  EXPECT_TRUE(sweep.results[0].ok());
  EXPECT_FALSE(sweep.results[1].ok());
  EXPECT_NE(sweep.combined_report().find("ERROR: exploded"), std::string::npos);
}

// --- presets ----------------------------------------------------------

TEST(Presets, RunFlowFromConstraintsHitsTheSharedCache) {
  const auto store = flow::default_store();
  const std::uint64_t runs_before = store->runs(flow::stage::kSynth);
  const aaa::ConstraintSet constraints =
      aaa::parse_constraints(mccdma::case_study_constraints_text());
  const synth::DesignBundle a =
      mccdma::run_flow_from_constraints(constraints, mccdma::case_study_statics());
  const synth::DesignBundle b =
      mccdma::run_flow_from_constraints(constraints, mccdma::case_study_statics());
  EXPECT_EQ(a.initial_bitstream, b.initial_bitstream);
  // Both calls resolved to at most one new synth run (zero when another
  // test already built the case study in this process).
  EXPECT_LE(store->runs(flow::stage::kSynth), runs_before + 1);
}

}  // namespace
