#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.hpp"
#include "graph/dot.hpp"
#include "graph/ready.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pdr::graph {
namespace {

using G = Digraph<int, int>;

G diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  const NodeId c = g.add_node(2);
  const NodeId d = g.add_node(3);
  g.add_edge(a, b, 0);
  g.add_edge(a, c, 0);
  g.add_edge(b, d, 0);
  g.add_edge(c, d, 0);
  return g;
}

TEST(Digraph, AddAndAccess) {
  G g;
  const NodeId n = g.add_node(42);
  EXPECT_EQ(g[n], 42);
  g[n] = 7;
  EXPECT_EQ(g[n], 7);
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(Digraph, EdgeEndpoints) {
  G g;
  const NodeId a = g.add_node(1);
  const NodeId b = g.add_node(2);
  const EdgeId e = g.add_edge(a, b, 9);
  EXPECT_EQ(g.edge(e), 9);
  EXPECT_EQ(g.edge_from(e), a);
  EXPECT_EQ(g.edge_to(e), b);
}

TEST(Digraph, SuccessorsPredecessors) {
  G g = diamond();
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_TRUE(g.predecessors(0).empty());
}

TEST(Digraph, RemoveNodeTombstonesEdges) {
  G g = diamond();
  g.remove_node(1);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.predecessors(3).size(), 1u);
  EXPECT_THROW(g[1], Error);
}

TEST(Digraph, RemoveEdge) {
  G g = diamond();
  const auto edges = g.out_edges(0);
  g.remove_edge(edges[0]);
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(Digraph, AddEdgeToMissingNodeThrows) {
  G g;
  const NodeId a = g.add_node(0);
  EXPECT_THROW(g.add_edge(a, 99, 0), Error);
}

TEST(Digraph, TopologicalOrderOfDag) {
  G g = diamond();
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  auto pos = [&](NodeId n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(Digraph, CycleHasNoTopologicalOrder) {
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_FALSE(g.topological_order().has_value());
  EXPECT_FALSE(g.is_acyclic());
}

TEST(Digraph, RemovingEdgeBreaksCycle) {
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  g.add_edge(a, b, 0);
  const EdgeId back = g.add_edge(b, a, 0);
  g.remove_edge(back);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Digraph, CriticalPathRemainder) {
  G g = diamond();
  // weights: node id + 1 -> path 0-2-3: 1+3+4 = 8.
  const auto dist = g.critical_path_remainder([&](NodeId n) { return static_cast<double>(g[n] + 1); });
  EXPECT_DOUBLE_EQ(dist[3], 4.0);
  EXPECT_DOUBLE_EQ(dist[2], 7.0);
  EXPECT_DOUBLE_EQ(dist[1], 6.0);
  EXPECT_DOUBLE_EQ(dist[0], 8.0);
}

TEST(Digraph, CriticalPathThrowsOnCycle) {
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW(g.critical_path_remainder([](NodeId) { return 1.0; }), Error);
}

TEST(Digraph, ReachableFrom) {
  G g = diamond();
  const auto reach = g.reachable_from(0);
  EXPECT_EQ(reach.size(), 3u);
  EXPECT_TRUE(g.reachable_from(3).empty());
}

TEST(Digraph, NodeIdsSkipTombstones) {
  G g = diamond();
  g.remove_node(2);
  const auto ids = g.node_ids();
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 2u) == ids.end());
}

/// Property: random DAGs (edges only forward) always topo-sort, and every
/// edge is consistent with the order.
class RandomDagTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagTest, TopologicalOrderConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  G g;
  const int n = 30;
  for (int i = 0; i < n; ++i) g.add_node(i);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.chance(0.1)) g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), 0);

  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(n);
  for (std::size_t k = 0; k < order->size(); ++k) pos[(*order)[k]] = static_cast<int>(k);
  for (EdgeId e : g.edge_ids()) EXPECT_LT(pos[g.edge_from(e)], pos[g.edge_to(e)]);

  const auto dist = g.critical_path_remainder([](NodeId) { return 1.0; });
  for (EdgeId e : g.edge_ids()) EXPECT_GT(dist[g.edge_from(e)], dist[g.edge_to(e)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, ::testing::Range(0, 12));

TEST(ReadyTracker, DiamondCompletesInDependencyOrder) {
  const G g = diamond();
  ReadyTracker tracker(g);
  ASSERT_EQ(tracker.initial().size(), 1u);
  EXPECT_EQ(tracker.initial()[0], 0u);
  EXPECT_EQ(tracker.remaining(), 4u);

  auto ready = tracker.complete(0);  // unlocks both branches
  EXPECT_EQ(ready, (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(tracker.complete(1).empty());  // 3 still waits on 2
  EXPECT_EQ(tracker.complete(2), (std::vector<NodeId>{3}));
  EXPECT_TRUE(tracker.complete(3).empty());
  EXPECT_TRUE(tracker.done());
}

TEST(ReadyTracker, ParallelEdgesCountAsSeparatePredecessors) {
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  g.add_edge(a, b, 0);
  g.add_edge(a, b, 0);  // duplicate in-edge: indegree 2, one completer
  ReadyTracker tracker(g);
  const auto indeg = indegree_counts(g);
  EXPECT_EQ(indeg[b], 2u);
  // a's successor list yields b twice; both decrements happen in one
  // complete(), so b becomes ready exactly once.
  const auto ready = tracker.complete(a);
  EXPECT_EQ(ready, (std::vector<NodeId>{b}));
}

TEST(ReadyTracker, RefusesOverCompletion) {
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  g.add_edge(a, b, 0);
  ReadyTracker tracker(g);
  tracker.complete(a);
  // A second completion would decrement b's already-zero counter.
  EXPECT_THROW(tracker.complete(a), pdr::Error);
}

TEST(ReadyTracker, RefusesDoubleCompleteEvenWithPredecessorsOutstanding) {
  // The subtle variant of over-completion: c waits on BOTH a and b.
  // Before the completed bitmap, completing a twice silently drained c's
  // counter and surfaced c as ready while b was still outstanding — no
  // throw, a corrupted schedule. Now the second complete(a) itself throws
  // and c stays un-ready.
  G g;
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1);
  const NodeId c = g.add_node(2);
  g.add_edge(a, c, 0);
  g.add_edge(b, c, 0);
  ReadyTracker tracker(g);
  EXPECT_TRUE(tracker.complete(a).empty());
  EXPECT_TRUE(tracker.is_completed(a));
  EXPECT_FALSE(tracker.is_completed(c));
  EXPECT_THROW(tracker.complete(a), pdr::Error);
  // The failed call must not have decremented c: completing b (the real
  // remaining predecessor) releases c exactly once.
  EXPECT_EQ(tracker.complete(b), (std::vector<NodeId>{c}));
  EXPECT_TRUE(tracker.complete(c).empty());
  EXPECT_TRUE(tracker.done());
}

TEST(ReadyTracker, MatchesRescanOnRandomDags) {
  // Property: driving the tracker to exhaustion visits every node exactly
  // once, and a node only surfaces after all its predecessors.
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    G g;
    const int n = 30;
    for (int i = 0; i < n; ++i) g.add_node(i);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.chance(0.08)) g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j), 0);

    ReadyTracker tracker(g);
    std::vector<NodeId> queue = tracker.initial();
    std::vector<bool> seen(n, false);
    std::size_t completed = 0;
    while (!queue.empty()) {
      const NodeId x = queue.back();
      queue.pop_back();
      EXPECT_FALSE(seen[x]);
      for (EdgeId e : g.in_edges(x)) EXPECT_TRUE(seen[g.edge_from(e)] || g.edge_from(e) == x);
      seen[x] = true;
      ++completed;
      for (NodeId s : tracker.complete(x)) queue.push_back(s);
    }
    EXPECT_EQ(completed, g.node_count());
    EXPECT_TRUE(tracker.done());
  }
}

TEST(Dot, RendersNodesAndEdges) {
  const std::string dot = to_dot("g", {{"a", "A", "box", ""}, {"b", "B", "ellipse", "red"}},
                                 {{"a", "b", "lbl", true}});
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("a -> b"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"red\""), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  const std::string dot = to_dot("g", {{"a", "say \"hi\"", "box", ""}}, {});
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

}  // namespace
}  // namespace pdr::graph
