// Cross-module integration: the full paper flow from constraints text to
// executed executive and runtime reconfiguration, checking the pieces
// agree with each other.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/codegen_vhdl.hpp"
#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "fabric/context.hpp"
#include "fabric/relocate.hpp"
#include "flow/pipeline.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "mccdma/system.hpp"
#include "rtr/arbiter.hpp"
#include "rtr/manager.hpp"
#include "sim/executive_player.hpp"
#include "util/units.hpp"

namespace pdr {
namespace {

using namespace pdr::literals;

// The process-wide case study: built once through the flow pipeline's
// cached Synth stage, shared with every preset and sweep scenario.
const mccdma::CaseStudy& case_study() { return mccdma::shared_case_study(); }

TEST(Integration, PipelinePresetServesCachedCaseStudyBundle) {
  const auto store = flow::default_store();
  flow::Pipeline first = mccdma::case_study_pipeline();
  const auto b1 = first.bundle();
  const std::uint64_t runs_after_first = store->runs(flow::stage::kSynth);

  // Assembling the preset again and asking for its bundle must not re-run
  // the Modular Design flow — identical inputs, the cached artifact.
  flow::Pipeline second = mccdma::case_study_pipeline();
  const auto b2 = second.bundle();
  EXPECT_EQ(store->runs(flow::stage::kSynth), runs_after_first);
  EXPECT_GE(store->hits(flow::stage::kSynth), 1u);
  EXPECT_EQ(b1.get(), b2.get());  // literally the same shared artifact
  EXPECT_EQ(b1->floorplan.region("D1").col_lo,
            case_study().bundle.floorplan.region("D1").col_lo);
}

TEST(Integration, ConstraintsRoundTripDrivesIdenticalFlow) {
  const auto& cs = case_study();
  // Re-parse the written constraints and rebuild the flow: same floorplan.
  const aaa::ConstraintSet reparsed = aaa::parse_constraints(aaa::write_constraints(cs.constraints));
  const synth::DesignBundle again = mccdma::run_flow_from_constraints(reparsed, {});
  EXPECT_EQ(again.floorplan.region("D1").col_lo, cs.bundle.floorplan.region("D1").col_lo);
  EXPECT_EQ(again.floorplan.region("D1").col_hi, cs.bundle.floorplan.region("D1").col_hi);
  // Identical variants -> identical bitstreams.
  EXPECT_EQ(again.variant("D1", "qpsk").bitstream, cs.bundle.variant("D1", "qpsk").bitstream);
}

TEST(Integration, ScheduleReconfigCostMatchesManagerColdLoad) {
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);

  const auto schedule_cost = mccdma::case_study_reconfig_cost(cs.bundle);
  // The adequation's cost model and the runtime manager agree within 1 %.
  const double a = static_cast<double>(schedule_cost("D1", "qam16"));
  const double b = static_cast<double>(manager.cold_load_latency("qam16"));
  EXPECT_NEAR(a, b, 0.01 * b);
}

TEST(Integration, ExecutivePlaysScheduleFaithfully) {
  const auto& cs = case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  adequation.set_reconfig_cost(mccdma::case_study_reconfig_cost(cs.bundle));
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "qpsk";
  const aaa::Schedule schedule = adequation.run(options);
  aaa::validate_schedule(schedule, cs.algorithm, cs.architecture);

  const aaa::Executive executive = aaa::generate_executive(schedule, cs.algorithm, cs.architecture);
  sim::ExecutivePlayer player(executive, cs.architecture);
  const sim::PlayResult r = player.run(1);
  EXPECT_EQ(r.makespan, schedule.makespan);

  // Pipelined steady state is at least as fast per iteration.
  const sim::PlayResult r20 = player.run(20);
  EXPECT_LE(r20.iteration_period, schedule.makespan);
}

TEST(Integration, VhdlGeneratedForEveryFpgaOperator) {
  const auto& cs = case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "qpsk";
  const aaa::Schedule schedule = adequation.run(options);
  const aaa::Executive executive = aaa::generate_executive(schedule, cs.algorithm, cs.architecture);

  int fpga_entities = 0;
  for (aaa::NodeId n : cs.architecture.operators()) {
    const aaa::OperatorNode& op = cs.architecture.op(n);
    if (op.kind == aaa::OperatorKind::Processor) continue;
    const std::string vhdl = aaa::generate_vhdl_entity(executive.program(op.name), op);
    EXPECT_NE(vhdl.find("entity " + op.name), std::string::npos);
    ++fpga_entities;
  }
  EXPECT_EQ(fpga_entities, 2);  // F1 and D1
}

TEST(Integration, ManagerLoadsMatchFloorplanFrames) {
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::ScheduleLookahead policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);

  manager.request("D1", "qam16", 0);
  const auto frames = cs.bundle.floorplan.region_frames("D1");
  EXPECT_EQ(static_cast<int>(frames.size()),
            static_cast<int>(cs.bundle.variant("D1", "qam16").placement.frames.size()));
  EXPECT_TRUE(manager.memory().region_owned_by(frames, "qam16"));

  // Loading the other variant flips every frame's owner; no residue.
  manager.request("D1", "qpsk", 10_ms);
  EXPECT_TRUE(manager.memory().region_owned_by(frames, "qpsk"));
}

TEST(Integration, StaticPrefetchAndRuntimePrefetchAgreeOnHiddenLatency) {
  // The schedule-level prefetch (adequation) and the runtime announce
  // mechanism (manager) model the same physics: hidden latency equals
  // reconfiguration time minus exposed stall.
  const auto& cs = case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  adequation.set_reconfig_cost(mccdma::case_study_reconfig_cost(cs.bundle));

  aaa::AdequationOptions with;
  with.prefetch = true;
  aaa::AdequationOptions without;
  without.prefetch = false;
  const aaa::Schedule sp = adequation.run(with);
  const aaa::Schedule sn = adequation.run(without);
  EXPECT_LE(sp.reconfig_exposed, sn.reconfig_exposed);
  EXPECT_EQ(sp.reconfig_total, sn.reconfig_total);
  EXPECT_LE(sp.makespan, sn.makespan);
}

TEST(Integration, CaseStudyRoundTripsThroughProjectFile) {
  // The case study's graphs + durations survive serialization to the
  // SynDEx-style project file, producing an identical schedule.
  const auto& cs = case_study();
  aaa::Project project{"mccdma_tx", cs.algorithm, cs.architecture, cs.durations};
  const aaa::Project back = aaa::parse_project(aaa::write_project(project));

  aaa::Adequation original(cs.algorithm, cs.architecture, cs.durations);
  aaa::Adequation reparsed(back.algorithm, back.architecture, back.durations);
  original.apply_constraints(cs.constraints);
  reparsed.apply_constraints(cs.constraints);
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "qpsk";
  const aaa::Schedule sa = original.run(options);
  const aaa::Schedule sb = reparsed.run(options);
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.size(), sb.size());
  EXPECT_EQ(sa.to_csv(), sb.to_csv());
}

TEST(Integration, ArbiterDrivesManagerAcrossCaseStudySwitches) {
  const auto& cs = case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(cs.bundle, rtr::sundance_manager_config(), store, policy);
  rtr::RequestArbiter arbiter(manager);

  arbiter.submit("D1", "qpsk", 0, /*priority=*/1);
  arbiter.submit("D1", "qam16", 100, /*priority=*/0);
  arbiter.submit("D1", "qam16", 200, /*priority=*/0);  // coalesced
  const auto drained = arbiter.drain(1_ms);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(manager.loaded("D1"), "qam16");
  EXPECT_EQ(arbiter.coalesced(), 1);
  EXPECT_EQ(manager.verify_resident("D1"), 0);
}

TEST(Integration, VariantBitstreamSurvivesRelocationAndSnapshot) {
  // Relocate the case-study QPSK module into a second congruent region,
  // then snapshot/restore it — the full task-migration path.
  const auto& cs = case_study();
  fabric::Floorplan plan(cs.bundle.device);
  const auto& d1 = cs.bundle.floorplan.region("D1");
  plan.add_region("D1", d1.col_lo, d1.col_hi, true, 8, 8);
  plan.add_region("D2", d1.col_lo - d1.width_cols(), d1.col_lo - 1, true, 8, 8);
  ASSERT_TRUE(fabric::regions_congruent(plan, "D1", "D2"));

  const auto& stream = cs.bundle.variant("D1", "qpsk").bitstream;
  const auto moved = fabric::relocate_bitstream(plan, stream, "D1", "D2");

  fabric::ConfigMemory mem(cs.bundle.device);
  fabric::ConfigPort port(fabric::PortKind::Icap,
                          fabric::ConfigPort::default_timing(fabric::PortKind::Icap), mem);
  port.load(moved, "qpsk@D2");
  EXPECT_TRUE(mem.region_owned_by(plan.region_frames("D2"), "qpsk@D2"));

  const auto snapshot = fabric::snapshot_region(mem, plan, "D2");
  const auto back = fabric::relocate_bitstream(plan, snapshot, "D2", "D1");
  fabric::restore_region(mem, plan, "D1", back, "qpsk@D1");
  EXPECT_TRUE(mem.region_owned_by(plan.region_frames("D1"), "qpsk@D1"));
}

TEST(Integration, WholeSystemSmokeAtScale) {
  mccdma::SystemConfig config;
  config.seed = 1234;
  config.ber_sample_every = 16;
  mccdma::TransmitterSystem system(case_study(), config);
  const mccdma::SystemReport r = system.run(50'000);
  EXPECT_EQ(r.symbols, 50'000u);
  // ~0.2 s of air time.
  EXPECT_GT(r.elapsed, 150_ms);
  // Stall fraction bounded (switches are rare thanks to hysteresis).
  EXPECT_LT(r.stall_fraction(), 0.5);
  // The manager never loaded a module the store did not hold.
  EXPECT_GE(r.manager.requests, r.switches);
}

}  // namespace
}  // namespace pdr
