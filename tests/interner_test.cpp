// util::Interner contracts, and the rendering-boundary invariant the
// schedule core's SoA refactor rests on:
//
//  - ids are dense, first-intern-ordered and stable across any internal
//    rehash; name() views stay valid for the interner's lifetime;
//  - copies rebuild the index against their own storage (the string_view
//    keys must never dangle into the source);
//  - the adequation engine seeds the schedule's interner from the
//    architecture graph, so resource ids are dense array indices;
//  - the SoA renderers (to_string / to_csv / gantt) and the generated
//    executive are byte-identical to a legacy AoS rendering of the same
//    schedule, across a strategy-fuzz corpus and both ready-policy
//    engines.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/macrocode.hpp"
#include "bench/generators.hpp"
#include "util/interner.hpp"
#include "util/strings.hpp"

namespace pdr {
namespace {

using util::Interner;
using util::kEmptySymbol;
using util::kNoSymbol;
using util::SymbolId;

// --- unit: id assignment -----------------------------------------------------

TEST(Interner, EmptyStringIsReservedAtConstruction) {
  Interner interner;
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.find(""), kEmptySymbol);
  EXPECT_EQ(interner.intern(""), kEmptySymbol);
  EXPECT_EQ(interner.name(kEmptySymbol), "");
}

TEST(Interner, IdsAreDenseInFirstInternOrder) {
  Interner interner;
  EXPECT_EQ(interner.intern("CPU"), 1u);
  EXPECT_EQ(interner.intern("D1"), 2u);
  EXPECT_EQ(interner.intern("BUS"), 3u);
  // Re-interning is idempotent and does not mint new ids.
  EXPECT_EQ(interner.intern("D1"), 2u);
  EXPECT_EQ(interner.size(), 4u);
  EXPECT_EQ(interner.find("BUS"), 3u);
  EXPECT_EQ(interner.find("never-seen"), kNoSymbol);
  EXPECT_EQ(interner.name(1), "CPU");
  EXPECT_EQ(interner.name(2), "D1");
  EXPECT_EQ(interner.name(3), "BUS");
}

TEST(Interner, InternCopiesTheCallersBuffer) {
  Interner interner;
  SymbolId id = kNoSymbol;
  {
    std::string transient = "ephemeral-name";
    id = interner.intern(transient);
    transient.assign(transient.size(), 'x');  // clobber the source buffer
  }
  EXPECT_EQ(interner.name(id), "ephemeral-name");
  EXPECT_EQ(interner.find("ephemeral-name"), id);
}

// --- property: stability across rehash ---------------------------------------

TEST(InternerProperty, IdsAndViewsStableAcrossRehash) {
  constexpr int kSymbols = 10'000;  // far past any initial bucket count
  Interner interner;
  std::vector<std::pair<SymbolId, std::string>> seen;
  std::vector<const char*> data;  // name() storage addresses at intern time
  seen.reserve(kSymbols);
  for (int i = 0; i < kSymbols; ++i) {
    const std::string s = "sym_" + std::to_string(i * 7919 % kSymbols) + "_" + std::to_string(i);
    const SymbolId id = interner.intern(s);
    seen.emplace_back(id, s);
    data.push_back(interner.name(id).data());
  }
  // Ids are dense and were assigned in intern order...
  for (int i = 0; i < kSymbols; ++i) EXPECT_EQ(seen[i].first, static_cast<SymbolId>(i + 1));
  // ...and after thousands of rehash-triggering inserts, every earlier
  // id still resolves to the same string at the same storage address.
  for (int i = 0; i < kSymbols; ++i) {
    const std::string_view view = interner.name(seen[i].first);
    EXPECT_EQ(view, seen[i].second);
    EXPECT_EQ(view.data(), data[i]);
    EXPECT_EQ(interner.find(seen[i].second), seen[i].first);
  }
}

TEST(InternerProperty, CopyRebuildsIndexAgainstItsOwnStorage) {
  Interner copy;
  const char* original_data = nullptr;
  {
    Interner original;
    original.intern("alpha");
    original.intern("beta");
    original_data = original.name(1).data();
    copy = original;
  }  // original destroyed: any index entry pointing into it now dangles
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy.find("alpha"), 1u);
  EXPECT_EQ(copy.find("beta"), 2u);
  EXPECT_EQ(copy.name(1), "alpha");
  EXPECT_NE(copy.name(1).data(), original_data);  // owns its own bytes
  // The copy keeps interning independently.
  EXPECT_EQ(copy.intern("gamma"), 3u);
}

TEST(InternerProperty, MoveKeepsViewsValid) {
  Interner source;
  source.intern("stable");
  const std::string_view before = source.name(1);
  Interner moved = std::move(source);
  EXPECT_EQ(moved.name(1), "stable");
  EXPECT_EQ(moved.name(1).data(), before.data());  // arena chunks never move
}

TEST(InternerProperty, OversizedSymbolsGetDedicatedChunksAndViewsStay) {
  // Symbols longer than the arena block roll into dedicated chunks;
  // neighbours interned before and after keep their addresses.
  Interner interner;
  const SymbolId before_id = interner.intern("before");
  const char* before_data = interner.name(before_id).data();
  const std::string big(1 << 20, 'q');  // 1 MiB, far past any block size
  const SymbolId big_id = interner.intern(big);
  const SymbolId after_id = interner.intern("after");
  for (int i = 0; i < 1000; ++i) interner.append("filler_" + std::to_string(i));
  EXPECT_EQ(interner.name(big_id), big);
  EXPECT_EQ(interner.name(before_id), "before");
  EXPECT_EQ(interner.name(before_id).data(), before_data);
  EXPECT_EQ(interner.name(after_id), "after");
  EXPECT_EQ(interner.find(big), big_id);
}

// --- dense seeding from the architecture graph -------------------------------

TEST(InternerSeeding, ScheduleSymbolsStartWithArchitectureResources) {
  const aaa::ArchitectureGraph arch = bench::bench_architecture(/*cpus=*/2, /*regions=*/2);
  bench::GeneratorConfig cfg;
  cfg.shape = bench::GraphShape::Layered;
  cfg.n_ops = 30;
  cfg.width = 5;
  cfg.fanout = 2;
  cfg.conditioned_every = 3;
  cfg.seed = 11;
  const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
  const aaa::Schedule s = aaa::Adequation(g, arch, bench::bench_durations()).run();

  // Operators first, then media, both in architecture declaration order,
  // starting right after the reserved empty symbol.
  SymbolId next = kEmptySymbol + 1;
  for (const aaa::NodeId n : arch.operators()) {
    EXPECT_EQ(s.symbols.find(arch.op(n).name), next) << arch.op(n).name;
    ++next;
  }
  for (const aaa::NodeId n : arch.media()) {
    EXPECT_EQ(s.symbols.find(arch.medium(n).name), next) << arch.medium(n).name;
    ++next;
  }
  // Dense seeding makes resource_busy a direct-indexed table over them.
  EXPECT_GE(s.resource_busy.size(), static_cast<std::size_t>(next));
}

// --- exporter byte-identity over a strategy-fuzz corpus ----------------------

/// The pre-SoA renderers, reproduced over the materialized AoS view.
/// Byte-for-byte what Schedule::to_string/to_csv emitted when items were
/// a std::vector<ScheduledItem>.
std::string legacy_to_string(const aaa::Schedule& s) {
  std::string out = strprintf("schedule: makespan %.3f us, %d reconfigs (%.3f us exposed)\n",
                              s.makespan / 1000.0, s.reconfig_count,
                              s.reconfig_exposed / 1000.0);
  for (const aaa::ScheduledItem& item : s.items()) {
    out += strprintf("  %9.3f..%9.3f us  %-8s %-10s %s\n", item.start / 1000.0,
                     item.end / 1000.0, aaa::item_kind_name(item.kind), item.resource.c_str(),
                     item.label.c_str());
  }
  return out;
}

std::string legacy_to_csv(const aaa::Schedule& s) {
  std::string out = "kind,label,resource,start_ns,end_ns,variant,module\n";
  for (const aaa::ScheduledItem& item : s.items()) {
    out += strprintf("%s,%s,%s,%lld,%lld,%s,%s\n", aaa::item_kind_name(item.kind),
                     item.label.c_str(), item.resource.c_str(),
                     static_cast<long long>(item.start), static_cast<long long>(item.end),
                     item.variant.c_str(), item.module.c_str());
  }
  return out;
}

TEST(ExporterByteIdentity, SoARenderersMatchLegacyAcrossStrategyFuzzCorpus) {
  const aaa::ArchitectureGraph arch = bench::bench_architecture(2, 2);
  const aaa::DurationTable durations = bench::bench_durations();
  const bench::GraphShape shapes[] = {bench::GraphShape::Layered, bench::GraphShape::Random,
                                      bench::GraphShape::Streaming};
  const aaa::MappingStrategy strategies[] = {aaa::MappingStrategy::SynDExList,
                                             aaa::MappingStrategy::RoundRobin,
                                             aaa::MappingStrategy::FirstFeasible};
  int checked = 0;
  for (const bench::GraphShape shape : shapes) {
    for (const aaa::MappingStrategy strategy : strategies) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        bench::GeneratorConfig cfg;
        cfg.shape = shape;
        cfg.n_ops = 40;
        cfg.width = 6;
        cfg.fanout = 3;
        cfg.conditioned_every = 4;
        cfg.seed = seed;
        const aaa::AlgorithmGraph g = bench::generate_graph(cfg);

        aaa::AdequationOptions options;
        options.strategy = strategy;
        options.prefetch = seed % 2 == 0;
        const aaa::Schedule s = aaa::Adequation(g, arch, durations).run(options);

        const std::string context = cfg.name() + " / " +
                                    aaa::mapping_strategy_name(strategy) + " / seed " +
                                    std::to_string(seed);
        EXPECT_EQ(s.to_string(), legacy_to_string(s)) << context;
        EXPECT_EQ(s.to_csv(), legacy_to_csv(s)) << context;

        // Both ready-policy engines must emit byte-identical schedules,
        // renderings and generated executives.
        aaa::AdequationOptions rescan = options;
        rescan.ready_policy = aaa::ReadyPolicy::RescanReference;
        const aaa::Schedule r = aaa::Adequation(g, arch, durations).run(rescan);
        EXPECT_EQ(s.to_csv(), r.to_csv()) << context;
        EXPECT_EQ(s.to_string(), r.to_string()) << context;
        EXPECT_EQ(s.gantt(), r.gantt()) << context;
        EXPECT_EQ(aaa::generate_executive(s, g, arch).to_string(),
                  aaa::generate_executive(r, g, arch).to_string())
            << context;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 27);
}

}  // namespace
}  // namespace pdr
