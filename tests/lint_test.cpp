// pdr::lint coverage: every rule code fires on a crafted-bad input, and
// every shipped example checks clean.
//
// Constraints-family rules (PDR000..PDR017) are driven from the fixture
// files under tests/fixtures/lint/ — the same files the CI `pdrflow
// check` job runs — so the files and the library are tested as one.
// Floorplan, schedule and executive rules are driven from hand-built bad
// objects: the real flow never produces them, which is the point.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"
#include "fabric/device.hpp"
#include "lint/lint.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"

namespace pdr::lint {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Report check_fixture(const std::string& name) {
  return check_text(read_file(std::filesystem::path(PDR_FIXTURES_DIR) / name));
}

// ---------------------------------------------------------------- examples

TEST(LintExamples, AllShippedExamplesAreClean) {
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(PDR_EXAMPLES_DIR)) {
    const auto ext = entry.path().extension();
    if (ext != ".constraints" && ext != ".project") continue;
    ++seen;
    const Report report = check_text(read_file(entry.path()));
    EXPECT_TRUE(report.empty()) << entry.path() << ":\n" << report.to_text();
  }
  EXPECT_GE(seen, 2u) << "expected shipped .constraints/.project examples";
}

TEST(LintExamples, CaseStudyConstraintsAreClean) {
  // The textual example stays lint-clean end to end, like `pdrflow simulate`.
  const Report report =
      check_text(read_file(std::filesystem::path(PDR_EXAMPLES_DIR) / "mccdma.constraints"));
  EXPECT_TRUE(report.empty()) << report.to_text();
}

// ------------------------------------------------- constraints (fixtures)

struct FixtureCase {
  const char* file;
  Rule rule;
};

class LintFixture : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixture, FiresItsRuleCode) {
  const FixtureCase& fc = GetParam();
  const Report report = check_fixture(fc.file);
  EXPECT_TRUE(report.has(fc.rule))
      << fc.file << " must fire " << rule_id(fc.rule) << "; got:\n"
      << report.to_text();
}

INSTANTIATE_TEST_SUITE_P(
    ConstraintsFamily, LintFixture,
    ::testing::Values(
        FixtureCase{"pdr000_parse_error.constraints", Rule::ParseError},
        FixtureCase{"pdr000_parse_error.project", Rule::ParseError},
        FixtureCase{"pdr001_duplicate_region.constraints", Rule::DuplicateRegion},
        FixtureCase{"pdr002_invalid_region_width.constraints", Rule::InvalidRegionWidth},
        FixtureCase{"pdr003_negative_region_margin.constraints", Rule::NegativeRegionMargin},
        FixtureCase{"pdr004_duplicate_module.constraints", Rule::DuplicateModule},
        FixtureCase{"pdr005_undeclared_region.constraints", Rule::UndeclaredRegion},
        FixtureCase{"pdr006_missing_module_kind.constraints", Rule::MissingModuleKind},
        FixtureCase{"pdr007_empty_region.constraints", Rule::EmptyRegion},
        FixtureCase{"pdr008_exclusion_unknown_module.constraints",
                    Rule::ExclusionUnknownModule},
        FixtureCase{"pdr009_self_exclusion.constraints", Rule::SelfExclusion},
        FixtureCase{"pdr010_duplicate_exclusion.constraints", Rule::DuplicateExclusion},
        FixtureCase{"pdr012_relation_unknown_module.constraints",
                    Rule::RelationUnknownModule},
        FixtureCase{"pdr013_self_relation.constraints", Rule::SelfRelation},
        FixtureCase{"pdr014_duplicate_relation.constraints", Rule::DuplicateRelation},
        FixtureCase{"pdr015_contradictory_policy.constraints", Rule::ContradictoryPolicy},
        FixtureCase{"pdr016_unknown_device.constraints", Rule::UnknownDevice},
        FixtureCase{"pdr017_unknown_operator_kind.constraints",
                    Rule::UnknownOperatorKind},
        FixtureCase{"pdr021_region_too_narrow.constraints", Rule::RegionTooNarrow}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.file;
      for (char& c : name)
        if (c == '.' || c == '/') c = '_';
      return name;
    });

TEST(LintConstraints, ValidateReportsEveryViolationAtOnce) {
  // Satellite: ConstraintSet::validate() throws once, listing ALL errors
  // with their rule codes, instead of stopping at the first.
  const std::string text = R"(
    device XC9999
    region D1 { width 0 }
    dynamic qpsk { region D2 kind qpsk_mapper }
  )";
  try {
    (void)aaa::parse_constraints(text);
    FAIL() << "validate() must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PDR016"), std::string::npos) << what;  // unknown device
    EXPECT_NE(what.find("PDR002"), std::string::npos) << what;  // width 0
    EXPECT_NE(what.find("PDR005"), std::string::npos) << what;  // undeclared region
  }
}

TEST(LintConstraints, SniffInputClassifiesBothKinds) {
  EXPECT_EQ(sniff_input("# comment\nproject x\n"), InputKind::Project);
  EXPECT_EQ(sniff_input("device XC2V2000\n"), InputKind::Constraints);
  EXPECT_EQ(sniff_input(""), InputKind::Constraints);
}

TEST(LintReport, JsonExportCarriesCodesAndCounts) {
  const Report report = check_fixture("pdr001_duplicate_region.constraints");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"PDR001\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\""), std::string::npos) << json;
}

// ------------------------------------------------------------- floorplan

fabric::Region make_region(const std::string& name, int lo, int hi) {
  fabric::Region r;
  r.name = name;
  r.col_lo = lo;
  r.col_hi = hi;
  r.reconfigurable = true;
  return r;
}

TEST(LintFloorplan, Pdr020RegionOverlap) {
  const auto device = fabric::device_by_name("XC2V1000");
  const Report report =
      check_floorplan(device, {make_region("D1", 0, 3), make_region("D2", 2, 5)});
  EXPECT_TRUE(report.has(Rule::RegionOverlap)) << report.to_text();
}

TEST(LintFloorplan, Pdr021RegionTooNarrow) {
  const auto device = fabric::device_by_name("XC2V1000");
  const Report report = check_floorplan(device, {make_region("D1", 4, 4)});
  EXPECT_TRUE(report.has(Rule::RegionTooNarrow)) << report.to_text();
}

TEST(LintFloorplan, Pdr022RegionOutOfBounds) {
  const auto device = fabric::device_by_name("XC2V1000");
  const Report report =
      check_floorplan(device, {make_region("D1", device.clb_cols - 1, device.clb_cols + 2)});
  EXPECT_TRUE(report.has(Rule::RegionOutOfBounds)) << report.to_text();
}

TEST(LintFloorplan, Pdr023BusMacroOffBoundary) {
  const auto device = fabric::device_by_name("XC2V1000");
  fabric::Region r = make_region("D1", 4, 7);
  fabric::BusMacro bm;
  bm.name = "bm_mid";
  bm.boundary_col = 6;  // interior of the region, not an edge
  r.bus_macros.push_back(bm);
  const Report report = check_floorplan(device, {r});
  EXPECT_TRUE(report.has(Rule::BusMacroOffBoundary)) << report.to_text();
}

synth::DesignBundle small_bundle() {
  synth::ModularDesignFlow flow(fabric::device_by_name("XC2V1000"));
  flow.add_region("D1", {synth::ModuleSpec{"qpsk", "qpsk_mapper", {}}});
  return flow.run();
}

TEST(LintFloorplan, Pdr024VariantOverflow) {
  synth::DesignBundle bundle = small_bundle();
  ASSERT_TRUE(check_bundle(bundle).empty());
  bundle.dynamic_variants.at("D1").front().usage.slices =
      bundle.device.total_slices() + 1;
  EXPECT_TRUE(check_bundle(bundle).has(Rule::VariantOverflow));
}

TEST(LintFloorplan, Pdr025StaticOverflow) {
  synth::DesignBundle bundle = small_bundle();
  synth::ModuleArtifact oversized;
  oversized.name = "giant_static";
  oversized.usage.slices = bundle.device.total_slices() + 1;
  bundle.static_modules.push_back(oversized);
  EXPECT_TRUE(check_bundle(bundle).has(Rule::StaticOverflow));
}

TEST(LintFloorplan, CleanProgrammaticFloorplanPasses) {
  // Adjacent minimum-width regions with bus macros on both edges: the
  // tightest legal packing — nothing in PDR020..PDR023 may fire.
  const auto device = fabric::device_by_name("XC2V1000");
  fabric::Region left = make_region("D1", 2, 3);
  fabric::Region right = make_region("D2", 4, 5);
  fabric::BusMacro bm_left;
  bm_left.name = "bm_l";
  bm_left.boundary_col = 2;  // bridges static column 1 | region column 2
  left.bus_macros.push_back(bm_left);
  fabric::BusMacro bm_right;
  bm_right.name = "bm_r";
  bm_right.boundary_col = 6;  // bridges region column 5 | static column 6
  right.bus_macros.push_back(bm_right);
  const Report report = check_floorplan(device, {left, right});
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(LintFloorplan, EveryViolationOfABrokenPlanReportedTogether) {
  // One audit pass over a thoroughly broken plan: an overlapping pair, a
  // one-column region and an out-of-bounds region — all flagged at once,
  // not first-error-wins.
  const auto device = fabric::device_by_name("XC2V1000");
  const Report report = check_floorplan(
      device, {make_region("D1", 0, 3), make_region("D2", 2, 5), make_region("D3", 8, 8),
               make_region("D4", device.clb_cols - 1, device.clb_cols)});
  EXPECT_TRUE(report.has(Rule::RegionOverlap)) << report.to_text();
  EXPECT_TRUE(report.has(Rule::RegionTooNarrow)) << report.to_text();
  EXPECT_TRUE(report.has(Rule::RegionOutOfBounds)) << report.to_text();
  EXPECT_GE(report.errors(), 3u);
}

TEST(LintFloorplan, Pdr023BusMacroOnDeviceEdgeHasNoStaticSide) {
  const auto device = fabric::device_by_name("XC2V1000");
  fabric::Region r = make_region("D1", 0, 2);  // flush with the device edge
  fabric::BusMacro bm;
  bm.name = "bm_edge";
  bm.boundary_col = 0;  // the "far side" would be column -1
  r.bus_macros.push_back(bm);
  const Report report = check_floorplan(device, {r});
  ASSERT_TRUE(report.has(Rule::BusMacroOffBoundary)) << report.to_text();
  // The witness names the nonexistent neighbour column, not just "edge":
  // a macro at boundary 0 would bridge columns -1 | 0.
  EXPECT_NE(report.to_text().find("column -1 does not exist"), std::string::npos)
      << report.to_text();
}

TEST(LintFloorplan, Pdr023RightDeviceEdgeWitnessNamesMissingColumn) {
  const auto device = fabric::device_by_name("XC2V1000");
  fabric::Region r = make_region("D1", device.clb_cols - 3, device.clb_cols - 1);
  fabric::BusMacro bm;
  bm.name = "bm_right_edge";
  bm.boundary_col = device.clb_cols;  // far side would be column clb_cols
  r.bus_macros.push_back(bm);
  const Report report = check_floorplan(device, {r});
  ASSERT_TRUE(report.has(Rule::BusMacroOffBoundary)) << report.to_text();
  EXPECT_NE(report.to_text().find("column " + std::to_string(device.clb_cols) +
                                  " does not exist"),
            std::string::npos)
      << report.to_text();
}

TEST(LintFloorplan, Pdr021WitnessReportsBothUnits) {
  // The S1 unit bugfix: the narrow-region witness must speak both
  // slice columns and CLB columns so 'width 1' vs 'width 2sc' confusion
  // is visible in the diagnostic itself.
  const auto device = fabric::device_by_name("XC2V1000");
  const Report report = check_floorplan(device, {make_region("D1", 4, 4)});
  ASSERT_TRUE(report.has(Rule::RegionTooNarrow)) << report.to_text();
  const std::string text = report.to_text();
  EXPECT_NE(text.find("2 slice-columns"), std::string::npos) << text;
  EXPECT_NE(text.find("1 CLB column"), std::string::npos) << text;
}

TEST(LintFloorplan, Pdr023BusMacroIntoNeighbouringRegionFlagged) {
  // A macro on the shared boundary of two reconfigurable regions has no
  // static side to bridge to either.
  const auto device = fabric::device_by_name("XC2V1000");
  fabric::Region left = make_region("D1", 2, 3);
  fabric::Region right = make_region("D2", 4, 5);
  fabric::BusMacro bm;
  bm.name = "bm_shared";
  bm.boundary_col = 4;  // left edge of D2, but the far side is D1
  right.bus_macros.push_back(bm);
  const Report report = check_floorplan(device, {left, right});
  ASSERT_TRUE(report.has(Rule::BusMacroOffBoundary)) << report.to_text();
  EXPECT_NE(report.to_text().find("another"), std::string::npos);
}

// ------------------------------------------------------ report ordering

TEST(LintReport, RenderingIsMergeOrderInvariant) {
  // The canonical-ordering contract: text and JSON depend only on the
  // diagnostic *set*, never on rule-execution or merge order. This is
  // what makes `pdrflow check --json` diffs and the explorer's merged
  // auto-lint byte-stable across --jobs.
  const Diagnostic warn{Rule::DataCrossesReconfig, Severity::Warning, "resource D1",
                        "data crosses a reload", "buffer in the static part"};
  const Diagnostic err_a{Rule::ReconfigDuringExecute, Severity::Error, "resource D1",
                         "load overlaps execution", ""};
  const Diagnostic err_b{Rule::UseBeforeConfigure, Severity::Error, "resource D2",
                         "never configured", ""};

  Report forward;
  forward.add(warn);
  forward.add(err_b);
  forward.add(err_a);
  Report backward;
  backward.add(err_a);
  backward.add(err_b);
  backward.add(warn);

  EXPECT_EQ(forward.to_text(), backward.to_text());
  EXPECT_EQ(forward.to_json(), backward.to_json());

  // Text groups by severity (errors first), then canonical order; the
  // warning added first still renders last.
  const std::string text = forward.to_text();
  const auto pos_a = text.find("PDR100");
  const auto pos_b = text.find("PDR102");
  const auto pos_w = text.find("PDR106");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_w, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_w);

  // JSON is fully canonical (code order), ignoring severity grouping.
  const std::string json = forward.to_json();
  EXPECT_LT(json.find("PDR100"), json.find("PDR102"));
  EXPECT_LT(json.find("PDR102"), json.find("PDR106"));
}

TEST(LintReport, IdenticalRuleAndLocationOrderedByMessage) {
  Report a;
  a.add(Rule::RegionOverlap, Severity::Error, "region D1", "zeta", "");
  a.add(Rule::RegionOverlap, Severity::Error, "region D1", "alpha", "");
  Report b;
  b.add(Rule::RegionOverlap, Severity::Error, "region D1", "alpha", "");
  b.add(Rule::RegionOverlap, Severity::Error, "region D1", "zeta", "");
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_LT(a.to_text().find("alpha"), a.to_text().find("zeta"));
}

// -------------------------------------------------------------- schedule

using aaa::ItemKind;
using aaa::ScheduledItem;

ScheduledItem item(ItemKind kind, const std::string& label, const std::string& resource,
                   TimeNs start, TimeNs end) {
  ScheduledItem it;
  it.kind = kind;
  it.label = label;
  it.resource = resource;
  it.start = start;
  it.end = end;
  return it;
}

aaa::ArchitectureGraph region_arch() {
  aaa::ArchitectureGraph arch;
  arch.add_operator({"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator({"D1", aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D1"});
  arch.add_operator({"D2", aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D2"});
  return arch;
}

Report check(const aaa::Schedule& schedule, const aaa::AlgorithmGraph& algorithm,
             const aaa::ConstraintSet* constraints = nullptr) {
  const aaa::ArchitectureGraph arch = region_arch();
  return check_schedule(schedule, algorithm, arch, constraints);
}

TEST(LintSchedule, Pdr040ResourceOverlap) {
  aaa::Schedule s;
  s.push_item(item(ItemKind::Compute, "a", "CPU", 0, 100));
  s.push_item(item(ItemKind::Compute, "b", "CPU", 50, 150));
  EXPECT_TRUE(check(s, {}).has(Rule::ResourceOverlap));
}

TEST(LintSchedule, Pdr041DependencyViolation) {
  aaa::AlgorithmGraph g;
  const auto a = g.add_sensor("a");
  const auto b = g.add_actuator("b");
  g.add_dependency(a, b, 0);
  aaa::Schedule s;
  ScheduledItem ia = item(ItemKind::Compute, "a", "CPU", 100, 200);
  ia.op = a;
  ScheduledItem ib = item(ItemKind::Compute, "b", "CPU", 0, 50);
  ib.op = b;
  s.push_item(ia);
  s.push_item(ib);
  EXPECT_TRUE(check(s, g).has(Rule::DependencyViolation));
}

TEST(LintSchedule, Pdr042WrongModuleLoaded) {
  aaa::Schedule s;
  ScheduledItem load = item(ItemKind::Reconfig, "load qpsk", "D1", 0, 100);
  load.module = "qpsk";
  ScheduledItem run = item(ItemKind::Compute, "mod", "D1", 200, 300);
  run.variant = "qam16";
  s.push_item(load);
  s.push_item(run);
  EXPECT_TRUE(check(s, {}).has(Rule::WrongModuleLoaded));
}

TEST(LintSchedule, Pdr043ComputeDuringReconfig) {
  aaa::Schedule s;
  ScheduledItem load = item(ItemKind::Reconfig, "load qpsk", "D1", 0, 100);
  load.module = "qpsk";
  ScheduledItem run = item(ItemKind::Compute, "mod", "D1", 50, 80);
  run.variant = "qpsk";
  s.push_item(load);
  s.push_item(run);
  EXPECT_TRUE(check(s, {}).has(Rule::ComputeDuringReconfig));
}

TEST(LintSchedule, Pdr044ExclusionOverlap) {
  aaa::ConstraintSet constraints;
  constraints.exclusions.emplace_back("qpsk", "qam16");
  aaa::Schedule s;
  ScheduledItem l1 = item(ItemKind::Reconfig, "load qpsk", "D1", 0, 10);
  l1.module = "qpsk";
  ScheduledItem l2 = item(ItemKind::Reconfig, "load qam16", "D2", 20, 30);
  l2.module = "qam16";
  s.push_item(l1);
  s.push_item(l2);
  s.makespan = 100;  // both stay resident to the end
  EXPECT_TRUE(check(s, {}, &constraints).has(Rule::ExclusionOverlap));
}

TEST(LintSchedule, Pdr045PrefetchIntoBusyRegion) {
  aaa::Schedule s;
  ScheduledItem run = item(ItemKind::Compute, "mod", "D1", 0, 100);
  run.variant = "qpsk";
  ScheduledItem load = item(ItemKind::Reconfig, "load qam16", "D1", 50, 150);
  load.module = "qam16";
  s.push_item(run);
  s.push_item(load);
  EXPECT_TRUE(check(s, {}).has(Rule::PrefetchIntoBusyRegion));
}

TEST(LintSchedule, Pdr046PortOverlap) {
  aaa::Schedule s;
  ScheduledItem l1 = item(ItemKind::Reconfig, "load qpsk", "D1", 0, 100);
  l1.module = "qpsk";
  ScheduledItem l2 = item(ItemKind::Reconfig, "load qam16", "D2", 50, 150);
  l2.module = "qam16";
  s.push_item(l1);
  s.push_item(l2);
  EXPECT_TRUE(check(s, {}).has(Rule::PortOverlap));
}

TEST(LintSchedule, Pdr047NegativeDuration) {
  aaa::Schedule s;
  s.push_item(item(ItemKind::Compute, "a", "CPU", 100, 50));
  EXPECT_TRUE(check(s, {}).has(Rule::NegativeDuration));
}

TEST(LintSchedule, Pdr048ScrubPeriodExceedsBudget) {
  aaa::ConstraintSet constraints;
  aaa::RegionConstraint region;
  region.name = "D1";
  region.seu_budget_ms = 10;
  constraints.regions.push_back(region);

  // Rewrites at 5 ms and 12 ms over a 30 ms makespan: the tail gap
  // (12 ms .. 30 ms) is 18 ms, past the 10 ms budget.
  aaa::Schedule s;
  ScheduledItem l1 = item(ItemKind::Reconfig, "load qpsk", "D1", 4'000'000, 5'000'000);
  l1.module = "qpsk";
  ScheduledItem l2 = item(ItemKind::Reconfig, "load qam16", "D1", 11'000'000, 12'000'000);
  l2.module = "qam16";
  s.push_item(l1);
  s.push_item(l2);
  s.makespan = 30'000'000;
  const Report r = check(s, {}, &constraints);
  EXPECT_TRUE(r.has(Rule::ScrubPeriodExceedsBudget));
  // Warning severity: the budget is advisory, not a hard hazard.
  EXPECT_EQ(r.errors(), 0u);

  // A third rewrite inside the tail brings every gap under budget.
  ScheduledItem l3 = item(ItemKind::Reconfig, "load qpsk", "D1", 20'000'000, 21'000'000);
  l3.module = "qpsk";
  s.push_item(l3);
  EXPECT_FALSE(check(s, {}, &constraints).has(Rule::ScrubPeriodExceedsBudget));

  // A budgeted region with no rewrite at all is one long exposure window.
  aaa::Schedule idle;
  idle.makespan = 30'000'000;
  EXPECT_TRUE(check(idle, {}, &constraints).has(Rule::ScrubPeriodExceedsBudget));
  // No budget declared -> never flagged.
  constraints.regions[0].seu_budget_ms = -1;
  EXPECT_FALSE(check(idle, {}, &constraints).has(Rule::ScrubPeriodExceedsBudget));
}

TEST(LintSchedule, CleanScheduleHasNoDiagnostics) {
  aaa::Schedule s;
  ScheduledItem load = item(ItemKind::Reconfig, "load qpsk", "D1", 0, 100);
  load.module = "qpsk";
  ScheduledItem run = item(ItemKind::Compute, "mod", "D1", 100, 200);
  run.variant = "qpsk";
  s.push_item(load);
  s.push_item(run);
  s.makespan = 200;
  const Report report = check(s, {});
  EXPECT_TRUE(report.empty()) << report.to_text();
}

// ------------------------------------------------------------- executive

aaa::MacroInstr instr(aaa::MacroOp op, const std::string& what, const std::string& with,
                      TimeNs at) {
  aaa::MacroInstr mi;
  mi.op = op;
  mi.what = what;
  mi.with = with;
  mi.at = at;
  return mi;
}

TEST(LintExecutive, Pdr060SendWithoutRecv) {
  aaa::Executive e;
  e.programs.push_back({"CPU", false, {instr(aaa::MacroOp::Send, "buf", "BUS", 0)}});
  EXPECT_TRUE(check_executive(e).has(Rule::SendWithoutRecv));
}

TEST(LintExecutive, Pdr061RecvWithoutSend) {
  aaa::Executive e;
  e.programs.push_back({"F1", false, {instr(aaa::MacroOp::Recv, "buf", "BUS", 0)}});
  EXPECT_TRUE(check_executive(e).has(Rule::RecvWithoutSend));
}

TEST(LintExecutive, Pdr062OrphanMove) {
  aaa::Executive e;
  e.programs.push_back({"BUS", true, {instr(aaa::MacroOp::Move, "ghost", "CPU", 0)}});
  const Report report = check_executive(e);
  EXPECT_TRUE(report.has(Rule::OrphanMove));
  EXPECT_EQ(report.errors(), 0u) << report.to_text();  // a warning, not an error
}

TEST(LintExecutive, Pdr063SyncCycle) {
  // A waits for x before sending y; B waits for y before sending x.
  aaa::Executive e;
  e.programs.push_back({"A",
                        false,
                        {instr(aaa::MacroOp::Recv, "x", "BUS", 0),
                         instr(aaa::MacroOp::Send, "y", "BUS", 0)}});
  e.programs.push_back({"B",
                        false,
                        {instr(aaa::MacroOp::Recv, "y", "BUS", 0),
                         instr(aaa::MacroOp::Send, "x", "BUS", 0)}});
  EXPECT_TRUE(check_executive(e).has(Rule::SyncCycle));
}

TEST(LintExecutive, Pdr064RecvBeforeSend) {
  aaa::Executive e;
  e.programs.push_back({"A", false, {instr(aaa::MacroOp::Recv, "x", "BUS", 0)}});
  e.programs.push_back({"B", false, {instr(aaa::MacroOp::Send, "x", "BUS", 10)}});
  EXPECT_TRUE(check_executive(e).has(Rule::RecvBeforeSend));
}

TEST(LintExecutive, Pdr065BufferOverwrite) {
  aaa::Executive e;
  e.programs.push_back({"A",
                        false,
                        {instr(aaa::MacroOp::Send, "x", "BUS", 0),
                         instr(aaa::MacroOp::Send, "x", "BUS", 5)}});
  e.programs.push_back({"B",
                        false,
                        {instr(aaa::MacroOp::Recv, "x", "BUS", 10),
                         instr(aaa::MacroOp::Recv, "x", "BUS", 20)}});
  EXPECT_TRUE(check_executive(e).has(Rule::BufferOverwrite));
}

TEST(LintExecutive, CleanHandshakeHasNoDiagnostics) {
  aaa::Executive e;
  e.programs.push_back({"A", false, {instr(aaa::MacroOp::Send, "x", "BUS", 0)}});
  e.programs.push_back({"B", false, {instr(aaa::MacroOp::Recv, "x", "BUS", 10)}});
  const Report report = check_executive(e);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

}  // namespace
}  // namespace pdr::lint
