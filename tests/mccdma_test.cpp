#include <gtest/gtest.h>

#include <cmath>

#include "dsp/convcode.hpp"
#include "mccdma/adaptive.hpp"
#include "mccdma/channel.hpp"
#include "mccdma/estimator.hpp"
#include "mccdma/modulation.hpp"
#include "mccdma/ofdm.hpp"
#include "mccdma/receiver.hpp"
#include "mccdma/spreading.hpp"
#include "mccdma/transmitter.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pdr::mccdma {
namespace {

// --- params ---------------------------------------------------------------------

TEST(Params, DefaultsValidate) {
  McCdmaParams p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.groups(), 4u);
  EXPECT_EQ(p.samples_per_symbol(), 80u);
  EXPECT_EQ(p.symbol_duration(), 4000);  // 80 samples at 20 MHz = 4 us
}

TEST(Params, InvalidCombinationsRejected) {
  McCdmaParams p;
  p.n_subcarriers = 48;
  EXPECT_THROW(p.validate(), pdr::Error);
  p = {};
  p.spreading_factor = 128;
  EXPECT_THROW(p.validate(), pdr::Error);
  p = {};
  p.n_users = 17;
  EXPECT_THROW(p.validate(), pdr::Error);
  p = {};
  p.cyclic_prefix = 64;
  EXPECT_THROW(p.validate(), pdr::Error);
}

// --- modulation --------------------------------------------------------------------

class ModulatorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModulatorTest, MapDemapRoundTripNoiseless) {
  const auto mod = make_modulator(GetParam());
  Rng rng(7);
  std::vector<std::uint8_t> bits(
      static_cast<std::size_t>(mod->bits_per_symbol()) * 100);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  const auto symbols = mod->map(bits);
  EXPECT_EQ(symbols.size(), 100u);
  EXPECT_EQ(mod->demap(symbols), bits);
}

TEST_P(ModulatorTest, UnitAverageEnergy) {
  const auto mod = make_modulator(GetParam());
  const int k = mod->bits_per_symbol();
  // Exhaustive over all symbols of the constellation.
  double energy = 0;
  const int points = 1 << k;
  for (int v = 0; v < points; ++v) {
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) bits[static_cast<std::size_t>(b)] = (v >> (k - 1 - b)) & 1;
    energy += std::norm(mod->map(bits)[0]);
  }
  EXPECT_NEAR(energy / points, 1.0, 1e-9);
}

TEST_P(ModulatorTest, DistinctBitsDistinctPoints) {
  const auto mod = make_modulator(GetParam());
  const int k = mod->bits_per_symbol();
  const int points = 1 << k;
  std::vector<Cplx> seen;
  for (int v = 0; v < points; ++v) {
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(k));
    for (int b = 0; b < k; ++b) bits[static_cast<std::size_t>(b)] = (v >> (k - 1 - b)) & 1;
    const Cplx pt = mod->map(bits)[0];
    for (const Cplx& other : seen) EXPECT_GT(std::abs(pt - other), 1e-6);
    seen.push_back(pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Mods, ModulatorTest, ::testing::Values("bpsk", "qpsk", "qam16", "qam64"));

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(make_bpsk()->bits_per_symbol(), 1);
  EXPECT_EQ(make_qpsk()->bits_per_symbol(), 2);
  EXPECT_EQ(make_qam16()->bits_per_symbol(), 4);
  EXPECT_EQ(make_qam64()->bits_per_symbol(), 6);
}

TEST(Modulation, UnknownNameThrows) { EXPECT_THROW(make_modulator("qam256"), pdr::Error); }

TEST(Modulation, MisalignedBitsThrow) {
  const auto mod = make_qam16();
  std::vector<std::uint8_t> bits(5);
  EXPECT_THROW(mod->map(bits), pdr::Error);
}

TEST(Modulation, QpskBerMatchesTheoryAt6dB) {
  // Gray QPSK over AWGN: BER = Q(sqrt(2 Eb/N0)).
  const auto mod = make_qpsk();
  Rng rng(11);
  AwgnChannel channel(Rng(12));
  const double ebn0_db = 6.0;
  // Es/N0 = Eb/N0 * bits_per_symbol.
  const double esn0_db = ebn0_db + 10.0 * std::log10(2.0);
  std::uint64_t errors = 0, total = 0;
  for (int block = 0; block < 40; ++block) {
    std::vector<std::uint8_t> bits(2000);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    const auto sym = mod->map(bits);
    const auto noisy = channel.apply(sym, esn0_db);
    const auto out = mod->demap(noisy);
    for (std::size_t i = 0; i < bits.size(); ++i)
      if (out[i] != bits[i]) ++errors;
    total += bits.size();
  }
  const double measured = static_cast<double>(errors) / static_cast<double>(total);
  const double theory = theoretical_ber("qpsk", ebn0_db);  // ~2.4e-3
  EXPECT_GT(measured, theory * 0.5);
  EXPECT_LT(measured, theory * 2.0);
}

TEST(Modulation, TheoreticalBerMonotone) {
  for (const char* m : {"bpsk", "qpsk", "qam16", "qam64"}) {
    EXPECT_GT(theoretical_ber(m, 2.0), theoretical_ber(m, 8.0)) << m;
  }
  // At equal Eb/N0, denser constellations are worse.
  EXPECT_GT(theoretical_ber("qam16", 8.0), theoretical_ber("qpsk", 8.0));
  EXPECT_GT(theoretical_ber("qam64", 8.0), theoretical_ber("qam16", 8.0));
}

TEST(Modulation, SoftDemapSignsMatchHardDecisions) {
  for (const char* name : {"qpsk", "qam16"}) {
    const auto mod = make_modulator(name);
    Rng rng(41);
    for (int trial = 0; trial < 50; ++trial) {
      const Cplx y{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5)};
      std::vector<std::uint8_t> hard;
      mod->demap_symbol(y, hard);
      std::vector<double> soft;
      mod->demap_soft_symbol(y, 0.5, soft);
      ASSERT_EQ(soft.size(), hard.size());
      for (std::size_t b = 0; b < hard.size(); ++b) {
        if (std::abs(soft[b]) < 1e-9) continue;  // boundary tie
        EXPECT_EQ(hard[b], soft[b] > 0 ? 0 : 1) << name << " bit " << b;
      }
    }
  }
}

TEST(Modulation, SoftDemapConfidenceScalesWithDistanceAndNoise) {
  const auto mod = make_qpsk();
  std::vector<double> near, far, noisy;
  mod->demap_soft_symbol(Cplx{0.1, 0.1}, 1.0, near);
  mod->demap_soft_symbol(Cplx{1.0, 1.0}, 1.0, far);
  mod->demap_soft_symbol(Cplx{1.0, 1.0}, 4.0, noisy);
  EXPECT_GT(std::abs(far[0]), std::abs(near[0]));    // farther from boundary
  EXPECT_GT(std::abs(far[0]), std::abs(noisy[0]));   // more noise, less confidence
  EXPECT_THROW(mod->demap_soft_symbol(Cplx{0, 0}, 0.0, near), pdr::Error);
}

TEST(Modulation, SoftViterbiOutperformsHardThroughChannel) {
  // End to end: QPSK + AWGN at low SNR; soft-decision Viterbi must make
  // fewer errors than hard-decision on the same noisy observations.
  const auto mod = make_qpsk();
  const dsp::ConvolutionalCode code = dsp::ConvolutionalCode::k7_rate_half();
  AwgnChannel channel(Rng(51));
  Rng rng(52);
  std::uint64_t hard_errors = 0, soft_errors = 0, total = 0;
  const double snr_db = 1.0;
  const double noise_var = std::pow(10.0, -snr_db / 10.0);
  for (int blk = 0; blk < 20; ++blk) {
    std::vector<std::uint8_t> bits(200);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
    const auto coded = code.encode(bits);
    const auto symbols = mod->map(coded);
    const auto noisy = channel.apply(symbols, snr_db);
    const auto hard = code.decode(mod->demap(noisy));
    const auto soft = code.decode_soft(mod->demap_soft(noisy, noise_var));
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (hard[i] != bits[i]) ++hard_errors;
      if (soft[i] != bits[i]) ++soft_errors;
    }
    total += bits.size();
  }
  EXPECT_LT(soft_errors, hard_errors);
  EXPECT_GT(hard_errors, 0u);  // low enough SNR that hard decoding struggles
}

// --- spreading ---------------------------------------------------------------------

TEST(Spreading, RoundTripAllUsers) {
  McCdmaParams p;
  const Spreader spreader(p);
  Rng rng(5);
  std::vector<std::vector<Cplx>> user_symbols(p.n_users);
  for (auto& symbols : user_symbols) {
    symbols.resize(p.symbols_per_user());
    for (auto& s : symbols) s = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  const auto chips = spreader.spread(user_symbols);
  EXPECT_EQ(chips.size(), p.n_subcarriers);
  for (std::size_t u = 0; u < p.n_users; ++u) {
    const auto recovered = spreader.despread(chips, u);
    ASSERT_EQ(recovered.size(), p.symbols_per_user());
    for (std::size_t g = 0; g < recovered.size(); ++g)
      EXPECT_NEAR(std::abs(recovered[g] - user_symbols[u][g]), 0.0, 1e-12);
  }
}

TEST(Spreading, SingleUserNoInterference) {
  McCdmaParams p;
  p.n_users = 1;
  const Spreader spreader(p);
  std::vector<std::vector<Cplx>> user_symbols(1);
  user_symbols[0].assign(p.symbols_per_user(), Cplx{1.0, 0.0});
  const auto chips = spreader.spread(user_symbols);
  const auto rec = spreader.despread(chips, 0);
  for (const auto& s : rec) EXPECT_NEAR(std::abs(s - Cplx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Spreading, FullLoadStillOrthogonal) {
  McCdmaParams p;
  p.n_users = p.spreading_factor;  // fully loaded system
  const Spreader spreader(p);
  Rng rng(9);
  std::vector<std::vector<Cplx>> user_symbols(p.n_users);
  for (auto& symbols : user_symbols) {
    symbols.resize(p.symbols_per_user());
    for (auto& s : symbols) s = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  const auto chips = spreader.spread(user_symbols);
  for (std::size_t u = 0; u < p.n_users; u += 5) {
    const auto rec = spreader.despread(chips, u);
    for (std::size_t g = 0; g < rec.size(); ++g)
      EXPECT_NEAR(std::abs(rec[g] - user_symbols[u][g]), 0.0, 1e-12);
  }
}

TEST(Spreading, SizeMismatchesRejected) {
  const Spreader spreader(McCdmaParams{});
  std::vector<std::vector<Cplx>> wrong(2);
  EXPECT_THROW(spreader.spread(wrong), pdr::Error);
  std::vector<Cplx> chips(10);
  EXPECT_THROW(spreader.despread(chips, 0), pdr::Error);
}

// --- ofdm --------------------------------------------------------------------------

TEST(Ofdm, RoundTrip) {
  McCdmaParams p;
  const OfdmModulator ofdm(p);
  Rng rng(13);
  std::vector<Cplx> chips(p.n_subcarriers);
  for (auto& c : chips) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto samples = ofdm.modulate(chips);
  EXPECT_EQ(samples.size(), p.samples_per_symbol());
  const auto back = ofdm.demodulate(samples);
  for (std::size_t i = 0; i < chips.size(); ++i)
    EXPECT_NEAR(std::abs(back[i] - chips[i]), 0.0, 1e-9);
}

TEST(Ofdm, CyclicPrefixIsTail) {
  McCdmaParams p;
  const OfdmModulator ofdm(p);
  std::vector<Cplx> chips(p.n_subcarriers, Cplx{1.0, 0.0});
  const auto samples = ofdm.modulate(chips);
  for (std::size_t i = 0; i < p.cyclic_prefix; ++i)
    EXPECT_NEAR(std::abs(samples[i] - samples[p.n_subcarriers + i]), 0.0, 1e-12);
}

TEST(Ofdm, EnergyPreservedUnitaryConvention) {
  McCdmaParams p;
  const OfdmModulator ofdm(p);
  Rng rng(14);
  std::vector<Cplx> chips(p.n_subcarriers);
  double e_freq = 0;
  for (auto& c : chips) {
    c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    e_freq += std::norm(c);
  }
  const auto samples = ofdm.modulate(chips);
  double e_body = 0;
  for (std::size_t i = p.cyclic_prefix; i < samples.size(); ++i) e_body += std::norm(samples[i]);
  EXPECT_NEAR(e_body, e_freq, 1e-9 * e_freq);
}

// --- channel ------------------------------------------------------------------------

TEST(Channel, AwgnHitsTargetSnr) {
  AwgnChannel channel(Rng(21));
  std::vector<Cplx> samples(20000, Cplx{1.0, 0.0});
  const auto noisy = channel.apply(samples, 10.0);
  double noise_power = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) noise_power += std::norm(noisy[i] - samples[i]);
  noise_power /= static_cast<double>(samples.size());
  const double measured_snr_db = 10.0 * std::log10(1.0 / noise_power);
  EXPECT_NEAR(measured_snr_db, 10.0, 0.3);
}

TEST(Channel, SnrTraceStaysBounded) {
  SnrTrace::Config cfg;
  cfg.lo_db = 2.0;
  cfg.hi_db = 20.0;
  SnrTrace trace(cfg, Rng(33));
  for (double v : trace.generate(5000)) {
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(Channel, SnrTraceMeanReverts) {
  SnrTrace::Config cfg;
  cfg.initial_db = 4.0;
  cfg.mean_db = 12.0;
  cfg.reversion = 0.05;
  SnrTrace trace(cfg, Rng(34));
  const auto values = trace.generate(8000);
  double late_mean = 0;
  for (std::size_t i = values.size() - 2000; i < values.size(); ++i) late_mean += values[i];
  late_mean /= 2000.0;
  EXPECT_NEAR(late_mean, 12.0, 1.5);
}

TEST(Channel, InvalidConfigsRejected) {
  SnrTrace::Config bad;
  bad.lo_db = 10.0;
  bad.hi_db = 5.0;
  EXPECT_THROW(SnrTrace(bad, Rng(1)), pdr::Error);
}

// --- adaptive controller ----------------------------------------------------------------

TEST(Adaptive, HysteresisPreventsPingPong) {
  AdaptiveController::Config cfg;
  cfg.up_threshold_db = 14.0;
  cfg.down_threshold_db = 10.0;
  cfg.guard_db = 0.0;
  AdaptiveController ctl(cfg);
  EXPECT_EQ(ctl.active(), "qpsk");
  // Oscillating between the thresholds must not switch.
  for (double snr : {11.0, 13.0, 11.0, 13.9, 10.1}) {
    const auto d = ctl.update(snr);
    EXPECT_FALSE(d.switched) << snr;
  }
  EXPECT_EQ(ctl.switches(), 0);
  EXPECT_TRUE(ctl.update(14.5).switched);
  EXPECT_EQ(ctl.active(), "qam16");
  EXPECT_FALSE(ctl.update(10.5).switched);  // above down threshold
  EXPECT_TRUE(ctl.update(9.0).switched);
  EXPECT_EQ(ctl.active(), "qpsk");
  EXPECT_EQ(ctl.switches(), 2);
}

TEST(Adaptive, GuardBandAnnounces) {
  AdaptiveController::Config cfg;
  cfg.up_threshold_db = 14.0;
  cfg.down_threshold_db = 10.0;
  cfg.guard_db = 2.0;
  AdaptiveController ctl(cfg);
  const auto d1 = ctl.update(11.0);  // far from switch
  EXPECT_FALSE(d1.announce.has_value());
  const auto d2 = ctl.update(12.5);  // within guard of 14
  ASSERT_TRUE(d2.announce.has_value());
  EXPECT_EQ(*d2.announce, "qam16");
  const auto d3 = ctl.update(14.2);  // actual switch, no announce
  EXPECT_TRUE(d3.switched);
  EXPECT_FALSE(d3.announce.has_value());
  const auto d4 = ctl.update(11.5);  // qam16 active, drifting down
  ASSERT_TRUE(d4.announce.has_value());
  EXPECT_EQ(*d4.announce, "qpsk");
}

TEST(Adaptive, BadConfigRejected) {
  AdaptiveController::Config cfg;
  cfg.up_threshold_db = 10.0;
  cfg.down_threshold_db = 14.0;
  EXPECT_THROW(AdaptiveController{cfg}, pdr::Error);
}

// --- transmitter + receiver loopback -----------------------------------------------------

class LoopbackTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LoopbackTest, NoiselessLoopbackIsBitExact) {
  McCdmaParams p;
  Transmitter tx(p);
  Receiver rx(p);
  tx.select_modulation(GetParam());
  rx.select_modulation(GetParam());
  BerReport report;
  for (int k = 0; k < 20; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(sym.samples, sym.user_bits, report);
  }
  EXPECT_GT(report.bits, 0u);
  EXPECT_EQ(report.errors, 0u);
}

TEST_P(LoopbackTest, HighSnrLoopbackNearlyClean) {
  McCdmaParams p;
  Transmitter tx(p);
  Receiver rx(p);
  AwgnChannel channel(Rng(55));
  tx.select_modulation(GetParam());
  rx.select_modulation(GetParam());
  BerReport report;
  for (int k = 0; k < 50; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, 35.0), sym.user_bits, report);
  }
  EXPECT_LT(report.ber(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Mods, LoopbackTest, ::testing::Values("bpsk", "qpsk", "qam16", "qam64"));

TEST(Transmitter, BitsPerSymbolTracksModulation) {
  McCdmaParams p;
  Transmitter tx(p);
  tx.select_modulation("qpsk");
  const std::size_t qpsk_bits = tx.bits_per_user_symbol();
  tx.select_modulation("qam16");
  EXPECT_EQ(tx.bits_per_user_symbol(), 2 * qpsk_bits);
}

TEST(Transmitter, SymbolCarriesModulationName) {
  McCdmaParams p;
  Transmitter tx(p);
  tx.select_modulation("qam16");
  EXPECT_EQ(tx.next_symbol().modulation, "qam16");
}

TEST(Transmitter, FixedPointPathMatchesFloatWithinQuantization) {
  McCdmaParams p;
  Transmitter float_tx(p);
  Transmitter fixed_tx(p);
  fixed_tx.set_fixed_point(true);
  EXPECT_TRUE(fixed_tx.fixed_point());

  // Same bits through both paths: samples agree within Q15 quantization.
  std::vector<std::vector<std::uint8_t>> bits(p.n_users);
  Rng rng(61);
  for (auto& ub : bits) {
    ub.resize(float_tx.bits_per_user_symbol());
    for (auto& b : ub) b = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  }
  const TxSymbol a = float_tx.make_symbol(bits);
  const TxSymbol b = fixed_tx.make_symbol(bits);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    EXPECT_NEAR(std::abs(a.samples[i] - b.samples[i]), 0.0, 2e-3);
}

TEST(Transmitter, FixedPointLoopbackStillBitExact) {
  // Quantization noise is far below the QPSK decision distance.
  McCdmaParams p;
  Transmitter tx(p);
  tx.set_fixed_point(true);
  Receiver rx(p);
  BerReport report;
  for (int k = 0; k < 20; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(sym.samples, sym.user_bits, report);
  }
  EXPECT_EQ(report.errors, 0u);
}

TEST(Transmitter, WrongBitCountRejected) {
  McCdmaParams p;
  Transmitter tx(p);
  std::vector<std::vector<std::uint8_t>> bits(p.n_users, std::vector<std::uint8_t>(3));
  EXPECT_THROW(tx.make_symbol(bits), pdr::Error);
}

class ChainBerTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChainBerTest, FullChainBerTracksTheoryWithProcessingGain) {
  // Through spreading + OFDM, a partially loaded system (users < SF)
  // collects an SF/users processing gain; compensating for it, the whole
  // chain's BER must track the Gray-coding theory curve.
  McCdmaParams p;
  Transmitter tx(p);
  Receiver rx(p);
  tx.select_modulation(GetParam());
  rx.select_modulation(GetParam());
  const int bits = make_modulator(GetParam())->bits_per_symbol();
  const double ebn0_db = 4.0;
  const double esn0_db = ebn0_db + 10.0 * std::log10(static_cast<double>(bits)) -
                         10.0 * std::log10(static_cast<double>(p.spreading_factor) / p.n_users);
  AwgnChannel channel(Rng(31));
  BerReport report;
  for (int k = 0; k < 600; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, esn0_db), sym.user_bits, report);
  }
  const double theory = theoretical_ber(GetParam(), ebn0_db);
  EXPECT_GT(report.ber(), theory * 0.5) << "measured " << report.ber();
  EXPECT_LT(report.ber(), theory * 2.0) << "measured " << report.ber();
}

INSTANTIATE_TEST_SUITE_P(Mods, ChainBerTest, ::testing::Values("qpsk", "qam16"));

// --- multipath channel + equalization ------------------------------------------

TEST(Multipath, FlatChannelIsTransparent) {
  MultipathChannel channel({Cplx{1.0, 0.0}}, Rng(1));
  std::vector<Cplx> samples(64, Cplx{0.7, -0.3});
  const auto out = channel.apply(samples, 400.0);  // noiseless
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_NEAR(std::abs(out[i] - samples[i]), 0.0, 1e-12);
}

TEST(Multipath, ExponentialProfileUnitPower) {
  Rng rng(5);
  const auto taps = MultipathChannel::exponential_profile(6, 2.0, rng);
  EXPECT_EQ(taps.size(), 6u);
  double power = 0;
  for (const auto& t : taps) power += std::norm(t);
  EXPECT_NEAR(power, 1.0, 1e-12);
}

TEST(Multipath, FrequencyResponseMatchesFftOfTaps) {
  Rng rng(6);
  const auto taps = MultipathChannel::exponential_profile(4, 1.5, rng);
  MultipathChannel channel(taps, Rng(7));
  const auto h = channel.frequency_response(64);
  EXPECT_EQ(h.size(), 64u);
  // DC bin equals the tap sum.
  Cplx sum{0, 0};
  for (const auto& t : taps) sum += t;
  EXPECT_NEAR(std::abs(h[0] - sum), 0.0, 1e-9);
}

TEST(Multipath, EqualizedLoopbackIsBitExactWithinCp) {
  // Channel shorter than the cyclic prefix + ZF equalizer = exact
  // recovery (the MC-CDMA design point).
  McCdmaParams p;
  Rng rng(11);
  const auto taps = MultipathChannel::exponential_profile(8, 2.0, rng);  // 8 < CP=16
  MultipathChannel channel(taps, Rng(12));
  Transmitter tx(p);
  Receiver rx(p);
  rx.set_channel_response(channel.frequency_response(p.n_subcarriers));
  BerReport report;
  for (int k = 0; k < 20; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, 400.0), sym.user_bits, report);
  }
  EXPECT_EQ(report.errors, 0u);
}

TEST(Multipath, WithoutEqualizerMultipathCorrupts) {
  McCdmaParams p;
  Rng rng(13);
  const auto taps = MultipathChannel::exponential_profile(8, 2.0, rng);
  MultipathChannel channel(taps, Rng(14));
  Transmitter tx(p);
  Receiver rx(p);  // no equalizer installed
  BerReport report;
  for (int k = 0; k < 10; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, 400.0), sym.user_bits, report);
  }
  EXPECT_GT(report.ber(), 0.01);
}

TEST(Multipath, ChannelLongerThanCpCausesIsi) {
  McCdmaParams p;  // CP = 16
  Rng rng(15);
  // Near-flat 48-tap channel: most of the energy arrives after the CP
  // window, so inter-symbol interference must leak through even with a
  // perfect ZF equalizer. QAM-64's small decision distance exposes it.
  const auto taps = MultipathChannel::exponential_profile(48, 100.0, rng);
  MultipathChannel channel(taps, Rng(16));
  Transmitter tx(p);
  Receiver rx(p);
  tx.select_modulation("qam64");
  rx.select_modulation("qam64");
  rx.set_channel_response(channel.frequency_response(p.n_subcarriers));
  BerReport report;
  for (int k = 0; k < 40; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, 400.0), sym.user_bits, report);
  }
  EXPECT_GT(report.errors, 0u);  // even equalized, ISI leaks past the CP
}

TEST(Multipath, EqualizerRejectsSpectralNull) {
  Receiver rx(McCdmaParams{});
  std::vector<Cplx> h(64, Cplx{1.0, 0.0});
  h[5] = {0.0, 0.0};
  EXPECT_THROW(rx.set_channel_response(h), pdr::Error);
  // MMSE tolerates the null (the weight just goes to zero there).
  EXPECT_NO_THROW(rx.set_channel_response(h, Receiver::Equalizer::Mmse, 10.0));
  h[5] = {0.5, 0.0};
  EXPECT_NO_THROW(rx.set_channel_response(h));
  EXPECT_THROW(rx.set_channel_response(std::vector<Cplx>(32, Cplx{1, 0})), pdr::Error);
}

TEST(Multipath, MmseBeatsZfAtLowSnrOnFadedChannel) {
  McCdmaParams p;
  Rng rng(71);
  // A deeply faded channel (few taps, strong frequency selectivity).
  const auto taps = MultipathChannel::exponential_profile(4, 3.0, rng);
  const double snr_db = 6.0;
  mccdma::BerReport zf_report, mmse_report;
  for (int chan = 0; chan < 6; ++chan) {
    Rng taps_rng(100 + static_cast<std::uint64_t>(chan));
    const auto h_taps = MultipathChannel::exponential_profile(4, 3.0, taps_rng);
    MultipathChannel channel(h_taps, Rng(200 + static_cast<std::uint64_t>(chan)));
    Transmitter tx(p);
    Receiver zf_rx(p), mmse_rx(p);
    const auto h = channel.frequency_response(p.n_subcarriers);
    zf_rx.set_channel_response(h, Receiver::Equalizer::Zf);
    mmse_rx.set_channel_response(h, Receiver::Equalizer::Mmse, snr_db);
    for (int k = 0; k < 60; ++k) {
      const TxSymbol sym = tx.next_symbol();
      const auto noisy = channel.apply(sym.samples, snr_db);
      zf_rx.measure(noisy, sym.user_bits, zf_report);
      mmse_rx.measure(noisy, sym.user_bits, mmse_report);
    }
  }
  EXPECT_GT(zf_report.errors, 0u);
  EXPECT_LE(mmse_report.errors, zf_report.errors);
  (void)taps;
}

TEST(Multipath, MmseEqualsZfAtHighSnr) {
  // As SNR -> inf, the MMSE weight converges to the ZF inverse.
  McCdmaParams p;
  Rng rng(81);
  const auto taps = MultipathChannel::exponential_profile(6, 2.0, rng);
  MultipathChannel channel(taps, Rng(82));
  Transmitter tx(p);
  Receiver zf_rx(p), mmse_rx(p);
  const auto h = channel.frequency_response(p.n_subcarriers);
  zf_rx.set_channel_response(h, Receiver::Equalizer::Zf);
  mmse_rx.set_channel_response(h, Receiver::Equalizer::Mmse, 80.0);
  const TxSymbol sym = tx.next_symbol();
  const auto clean = channel.apply(sym.samples, 400.0);
  EXPECT_EQ(zf_rx.receive(clean), mmse_rx.receive(clean));
}

// --- pilot-based channel estimation ------------------------------------------

TEST(Estimator, PilotChipsAreBpsk) {
  const ChannelEstimator est(McCdmaParams{});
  EXPECT_EQ(est.pilot_chips().size(), 64u);
  for (const auto& c : est.pilot_chips()) {
    EXPECT_NEAR(std::abs(c.real()), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Estimator, NoiselessEstimateIsExact) {
  McCdmaParams p;
  const ChannelEstimator est(p);
  Rng rng(21);
  const auto taps = MultipathChannel::exponential_profile(6, 2.0, rng);
  MultipathChannel channel(taps, Rng(22));
  const auto truth = channel.frequency_response(p.n_subcarriers);
  const auto received = channel.apply(est.pilot_samples(), 400.0);
  const auto h = est.estimate(received);
  EXPECT_LT(ChannelEstimator::mse(h, truth), 1e-20);
}

TEST(Estimator, SmoothingReducesNoisyMse) {
  McCdmaParams p;
  const ChannelEstimator est(p);
  Rng rng(23);
  // A short channel varies slowly across subcarriers, so smoothing helps.
  const auto taps = MultipathChannel::exponential_profile(3, 1.0, rng);
  MultipathChannel channel(taps, Rng(24));
  const auto truth = channel.frequency_response(p.n_subcarriers);
  double raw_mse = 0, smooth_mse = 0;
  for (int trial = 0; trial < 10; ++trial) {
    channel.reset();
    const auto received = channel.apply(est.pilot_samples(), 10.0);
    const auto h = est.estimate(received);
    raw_mse += ChannelEstimator::mse(h, truth);
    smooth_mse += ChannelEstimator::mse(ChannelEstimator::smooth(h, 2), truth);
  }
  EXPECT_LT(smooth_mse, raw_mse);
}

TEST(Estimator, EstimatedEqualizerMatchesGenieLoopback) {
  McCdmaParams p;
  Rng rng(25);
  const auto taps = MultipathChannel::exponential_profile(8, 2.0, rng);
  MultipathChannel channel(taps, Rng(26));
  const ChannelEstimator est(p);

  // Estimate from one noiseless pilot, then run data symbols.
  const auto h = est.estimate(channel.apply(est.pilot_samples(), 400.0));
  Transmitter tx(p);
  Receiver rx(p);
  rx.set_channel_response(h);
  BerReport report;
  for (int k = 0; k < 15; ++k) {
    const TxSymbol sym = tx.next_symbol();
    rx.measure(channel.apply(sym.samples, 400.0), sym.user_bits, report);
  }
  EXPECT_EQ(report.errors, 0u);
}

TEST(Estimator, SmoothArgsValidated) {
  std::vector<Cplx> h(8, Cplx{1, 0});
  EXPECT_THROW(ChannelEstimator::smooth(h, -1), pdr::Error);
  EXPECT_EQ(ChannelEstimator::smooth(h, 0).size(), 8u);
  EXPECT_THROW(ChannelEstimator::mse(h, std::vector<Cplx>(4)), pdr::Error);
}

TEST(Receiver, EvmRisesWithNoise) {
  McCdmaParams p;
  Transmitter tx(p);
  Receiver rx(p);
  AwgnChannel channel(Rng(77));
  const TxSymbol sym = tx.next_symbol();
  const double clean = rx.evm(sym.samples);
  const double noisy = rx.evm(channel.apply(sym.samples, 10.0));
  EXPECT_LT(clean, 1e-9);
  EXPECT_GT(noisy, clean);
}

}  // namespace
}  // namespace pdr::mccdma
