#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"

namespace pdr::netlist {
namespace {

TEST(Netlist, CountsAccumulate) {
  Netlist n("m");
  n.add(PrimitiveKind::Lut4, 3).add(PrimitiveKind::Lut4, 2).add(PrimitiveKind::FlipFlop, 4);
  EXPECT_EQ(n.count(PrimitiveKind::Lut4), 5);
  EXPECT_EQ(n.count(PrimitiveKind::FlipFlop), 4);
  EXPECT_EQ(n.count(PrimitiveKind::Bram18), 0);
  EXPECT_EQ(n.total_primitives(), 9);
}

TEST(Netlist, PortsAndBitCounts) {
  Netlist n("m");
  n.add_port("a", 8, PortDir::In).add_port("b", 3, PortDir::In).add_port("y", 16, PortDir::Out);
  EXPECT_EQ(n.input_bits(), 11);
  EXPECT_EQ(n.output_bits(), 16);
  EXPECT_EQ(n.ports().size(), 3u);
}

TEST(Netlist, DuplicatePortRejected) {
  Netlist n("m");
  n.add_port("a", 1, PortDir::In);
  EXPECT_THROW(n.add_port("a", 2, PortDir::Out), pdr::Error);
}

TEST(Netlist, InvalidArgsRejected) {
  EXPECT_THROW(Netlist(""), pdr::Error);
  Netlist n("m");
  EXPECT_THROW(n.add_port("p", 0, PortDir::In), pdr::Error);
  EXPECT_THROW(n.add(PrimitiveKind::Lut4, -1), pdr::Error);
  EXPECT_THROW(n.instantiate(n, -1), pdr::Error);
}

TEST(Netlist, InstantiateMultiplies) {
  Netlist sub("sub");
  sub.add(PrimitiveKind::Lut4, 3).add(PrimitiveKind::FlipFlop, 2);
  Netlist top("top");
  top.instantiate(sub, 4);
  EXPECT_EQ(top.count(PrimitiveKind::Lut4), 12);
  EXPECT_EQ(top.count(PrimitiveKind::FlipFlop), 8);
  ASSERT_EQ(top.submodules().size(), 1u);
  EXPECT_EQ(top.submodules()[0].first, "sub");
  EXPECT_EQ(top.submodules()[0].second, 4);
}

TEST(Netlist, HashStableAndSensitive) {
  Netlist a("m");
  a.add(PrimitiveKind::Lut4, 3);
  Netlist b("m");
  b.add(PrimitiveKind::Lut4, 3);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.add(PrimitiveKind::Lut4, 1);
  EXPECT_NE(a.content_hash(), b.content_hash());
  Netlist c("other");
  c.add(PrimitiveKind::Lut4, 3);
  EXPECT_NE(a.content_hash(), c.content_hash());
}

TEST(Netlist, HashSensitiveToPorts) {
  Netlist a("m"), b("m");
  a.add_port("x", 4, PortDir::In);
  b.add_port("x", 8, PortDir::In);
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(Netlist, ReportMentionsEverything) {
  Netlist n("mapper");
  n.add_port("bits", 4, PortDir::In);
  n.add(PrimitiveKind::Lut4, 7);
  n.instantiate(Netlist("sub"), 2);
  const std::string r = n.report();
  EXPECT_NE(r.find("module mapper"), std::string::npos);
  EXPECT_NE(r.find("bits"), std::string::npos);
  EXPECT_NE(r.find("LUT4"), std::string::npos);
  EXPECT_NE(r.find("uses sub x 2"), std::string::npos);
}

// --- library formulas ---------------------------------------------------------

TEST(Library, Clog2) {
  EXPECT_EQ(clog2(1), 0);
  EXPECT_EQ(clog2(2), 1);
  EXPECT_EQ(clog2(3), 2);
  EXPECT_EQ(clog2(1024), 10);
  EXPECT_THROW(clog2(0), pdr::Error);
}

TEST(Library, Register) {
  const Netlist n = make_register(16);
  EXPECT_EQ(n.count(PrimitiveKind::FlipFlop), 16);
  EXPECT_EQ(n.count(PrimitiveKind::Lut4), 0);
}

TEST(Library, CounterAndAdder) {
  EXPECT_EQ(make_counter(8).count(PrimitiveKind::FlipFlop), 8);
  EXPECT_EQ(make_counter(8).count(PrimitiveKind::Lut4), 8);
  EXPECT_EQ(make_adder(12).count(PrimitiveKind::Lut4), 12);
}

TEST(Library, MuxGrowsWithWays) {
  EXPECT_EQ(make_mux(8, 2).count(PrimitiveKind::Lut4), 8);
  EXPECT_EQ(make_mux(8, 4).count(PrimitiveKind::Lut4), 24);
  EXPECT_THROW(make_mux(8, 1), pdr::Error);
}

TEST(Library, ShiftRegisterUsesSrl16) {
  EXPECT_EQ(make_shift_register(1, 16).count(PrimitiveKind::Lut4), 1);
  EXPECT_EQ(make_shift_register(1, 17).count(PrimitiveKind::Lut4), 2);
  EXPECT_EQ(make_shift_register(8, 32).count(PrimitiveKind::Lut4), 16);
}

TEST(Library, RomSmallUsesLuts) {
  const Netlist n = make_rom(16, 8);
  EXPECT_EQ(n.count(PrimitiveKind::Bram18), 0);
  EXPECT_EQ(n.count(PrimitiveKind::Lut4), 8);
}

TEST(Library, RomLargeUsesBram) {
  const Netlist n = make_rom(2048, 18);
  EXPECT_EQ(n.count(PrimitiveKind::Bram18), 2);  // 36864 bits -> 2 BRAM18
}

TEST(Library, MultiplierBlocks) {
  EXPECT_EQ(make_multiplier(16).count(PrimitiveKind::Mult18), 1);
  EXPECT_EQ(make_multiplier(18).count(PrimitiveKind::Mult18), 1);
  EXPECT_EQ(make_multiplier(32).count(PrimitiveKind::Mult18), 4);
}

TEST(Library, FsmScalesWithStates) {
  const Netlist small = make_fsm(4, 2, 3);
  const Netlist big = make_fsm(32, 2, 3);
  EXPECT_EQ(small.count(PrimitiveKind::FlipFlop), 2);
  EXPECT_EQ(big.count(PrimitiveKind::FlipFlop), 5);
  EXPECT_GT(big.count(PrimitiveKind::Lut4), small.count(PrimitiveKind::Lut4));
  EXPECT_THROW(make_fsm(1, 0, 0), pdr::Error);
}

TEST(Library, FifoSmallAvoidsBram) {
  const Netlist n = make_fifo(16, 8);  // 128 bits
  EXPECT_EQ(n.count(PrimitiveKind::Bram18), 0);
  EXPECT_GT(n.count(PrimitiveKind::Lut4), 0);
}

TEST(Library, FifoLargeUsesBram) {
  const Netlist n = make_fifo(1024, 32);
  EXPECT_GE(n.count(PrimitiveKind::Bram18), 2);
}

TEST(Library, PingPongHasTwoBuffersAndPhaseFsm) {
  const Netlist n = make_ping_pong_buffer(512, 32);
  EXPECT_EQ(n.count(PrimitiveKind::Bram18), 2);
  EXPECT_GT(n.count(PrimitiveKind::FlipFlop), 0);
}

class LibraryWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(LibraryWidthTest, FormulasMonotoneInWidth) {
  const int w = GetParam();
  EXPECT_LE(make_register(w).total_primitives(), make_register(w + 1).total_primitives());
  EXPECT_LE(make_adder(w).total_primitives(), make_adder(w + 1).total_primitives());
  EXPECT_LE(make_counter(w).total_primitives(), make_counter(w + 1).total_primitives());
}

INSTANTIATE_TEST_SUITE_P(Widths, LibraryWidthTest, ::testing::Values(1, 2, 4, 8, 16, 24, 31));

}  // namespace
}  // namespace pdr::netlist
