#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace pdr::obs {
namespace {

// --- tracer ----------------------------------------------------------------------

TEST(Tracer, RecordsSpansInstantsCounters) {
  Tracer t;
  EXPECT_TRUE(t.empty());
  t.span("port", "load qpsk", "load", 1000, 5000);
  t.instant("events", "switch", "decision", 2000);
  t.counter("stats", "stall", 3000, 42.0);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].phase, TracePhase::Complete);
  EXPECT_EQ(t.events()[0].dur, 4000);
  EXPECT_EQ(t.events()[1].phase, TracePhase::Instant);
  EXPECT_EQ(t.events()[2].phase, TracePhase::Counter);
  EXPECT_DOUBLE_EQ(t.events()[2].value, 42.0);
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(Tracer, RejectsNegativeDuration) {
  Tracer t;
  EXPECT_THROW(t.span("port", "bad", "load", 100, 50), pdr::Error);
}

TEST(Tracer, TotalDurationAndCountPerCategory) {
  Tracer t;
  t.span("port", "a", "load", 0, 100);
  t.span("port", "b", "load", 200, 500);
  t.span("staging", "c", "staging", 0, 1000);
  t.instant("port", "note", "load", 50);  // instants carry no duration
  EXPECT_EQ(t.total_duration("load"), 400);
  EXPECT_EQ(t.total_duration("staging"), 1000);
  EXPECT_EQ(t.total_duration("ghost"), 0);
  EXPECT_EQ(t.count("load"), 3u);
  EXPECT_EQ(t.count("staging"), 1u);
}

TEST(Tracer, ChromeJsonShape) {
  Tracer t;
  t.span("port", "load \"qpsk\"", "load", 1500, 2500, {{"module", "qpsk"}});
  t.instant("events", "x", "ev", 100);
  const std::string json = t.to_chrome_json();
  // Structural markers of the trace-event format.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Timestamps in microseconds: 1500 ns -> 1.500 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos);
  // The quote in the name must be escaped.
  EXPECT_NE(json.find("load \\\"qpsk\\\""), std::string::npos);
  EXPECT_NE(json.find("\"module\":\"qpsk\""), std::string::npos);
}

TEST(Tracer, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Tracer, WriteChromeJsonRoundTrips) {
  Tracer t;
  t.span("port", "load", "load", 0, 1000);
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  t.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), t.to_chrome_json());
  std::remove(path.c_str());
}

TEST(Tracer, GlobalTracerIsSingleton) {
  Tracer& a = global_tracer();
  Tracer& b = global_tracer();
  EXPECT_EQ(&a, &b);
}

// --- metrics ---------------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAndRejectsNegative) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x", "a counter");
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.add(-1.0), pdr::Error);
  // Same name returns the same counter.
  EXPECT_EQ(&reg.counter("x"), &c);
}

TEST(Metrics, GaugeSetsAndAdds) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  g.set(10.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {10.0, 100.0, 1000.0});
  for (double v : {5.0, 50.0, 500.0, 5000.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5555.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  // Median must land in the second or third bucket's range.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 1000.0);
  // Everything beyond the last bound collapses to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5000.0);
}

TEST(Metrics, ExponentialBuckets) {
  const auto b = exponential_buckets(1.0, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 1000.0);
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 3), pdr::Error);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 3), pdr::Error);
}

TEST(Metrics, CrossKindRegistrationThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), pdr::Error);
  EXPECT_THROW(reg.histogram("name", {1.0}), pdr::Error);
}

TEST(Metrics, NamesAreSorted) {
  MetricsRegistry reg;
  reg.counter("z");
  reg.gauge("a");
  reg.histogram("m", {1.0});
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "m");
  EXPECT_EQ(names[2], "z");
}

TEST(Metrics, JsonAndTextExposition) {
  MetricsRegistry reg;
  reg.counter("requests", "total demands").add(3.0);
  reg.gauge("used_bytes").set(128.0);
  Histogram& h = reg.histogram("lat", {10.0, 100.0}, "latency");
  h.observe(5.0);
  h.observe(50.0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("# TYPE requests counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP requests total demands"), std::string::npos);
  // Cumulative buckets: le="100" holds both observations.
  EXPECT_NE(text.find("le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
}

TEST(Metrics, GlobalRegistryIsSingleton) { EXPECT_EQ(&global_metrics(), &global_metrics()); }

}  // namespace
}  // namespace pdr::obs
