// pdr::plan coverage: the automatic slice-column floorplanner against the
// shipped demo_tx project — feasibility (PDR020–025-clean, certified),
// the co-optimization objective (never worse than a hand-written fixed
// plan), determinism, and the explorer axis it feeds.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "aaa/project_io.hpp"
#include "fabric/device.hpp"
#include "fabric/floorplan.hpp"
#include "lint/lint.hpp"
#include "plan/planner.hpp"
#include "util/error.hpp"

namespace pdr::plan {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

aaa::Project demo_project() {
  return aaa::parse_project(
      read_file(std::filesystem::path(PDR_EXAMPLES_DIR) / "demo_tx.project"));
}

TEST(Planner, DemoProjectPlanIsCleanAndCertified) {
  const PlanResult result = plan_floorplan(demo_project());
  EXPECT_EQ(result.lint.errors(), 0u) << result.lint.to_text();
  EXPECT_TRUE(result.certified) << result.certificate_error;
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].name, "D1");
  EXPECT_GT(result.makespan, 0);
  EXPECT_GT(result.evaluated, 0);
}

TEST(Planner, PlannedRegionsMeetTheSliceColumnFloor) {
  const PlanResult result = plan_floorplan(demo_project());
  for (const auto& region : result.regions) {
    EXPECT_GE(fabric::to_slice_cols(region.width).value, fabric::kMinReconfigSliceCols)
        << region.name;
    EXPECT_GE(region.width.value, region.worst_variant_cols) << region.name;
    EXPECT_GE(region.col_lo, 0);
    EXPECT_LT(region.col_hi, result.device.clb_cols);
    EXPECT_GT(region.payload_bytes, 0u) << region.name;
    EXPECT_GT(region.load_ns, 0) << region.name;
  }
}

TEST(Planner, PlannedBusMacrosNeverSitOnTheDeviceEdge) {
  // The S2 boundary bugfix as a planner property: every emitted macro
  // has a real static column on its far side.
  const PlanResult result = plan_floorplan(demo_project());
  ASSERT_FALSE(result.fabric_regions.empty());
  for (const auto& region : result.fabric_regions) {
    EXPECT_FALSE(region.bus_macros.empty()) << region.name;
    for (const auto& bm : region.bus_macros) {
      EXPECT_GE(bm.boundary_col, 1) << region.name;
      EXPECT_LE(bm.boundary_col, result.device.clb_cols - 1) << region.name;
    }
  }
}

TEST(Planner, CoOptimizedPlanBeatsOrTiesHandWrittenBaseline) {
  // The acceptance bar: the planner's makespan is never worse than the
  // hand-written 5-column D1 the demo project shipped with.
  const aaa::Project project = demo_project();
  const PlanResult planned = plan_floorplan(project);
  const PlanResult baseline = plan_fixed(project, {{"D1", 5}});
  EXPECT_EQ(baseline.lint.errors(), 0u) << baseline.lint.to_text();
  EXPECT_LE(planned.makespan, baseline.makespan);
}

TEST(Planner, SearchIsDeterministic) {
  // Same seed, same plan — to_string() carries every column, byte count
  // and nanosecond, so equality here is the whole-result contract.
  const aaa::Project project = demo_project();
  const std::string a = plan_floorplan(project).to_string();
  const std::string b = plan_floorplan(project).to_string();
  EXPECT_EQ(a, b);

  PlanOptions other;
  other.seed = 12345;
  const PlanResult reseeded = plan_floorplan(project, other);
  // A different seed may find a different span, but never a worse class
  // of result: still clean and certified.
  EXPECT_EQ(reseeded.lint.errors(), 0u);
  EXPECT_TRUE(reseeded.certified);
}

TEST(Planner, ConstraintsFragmentIsLintCleanAndRoundTrips) {
  const PlanResult result = plan_floorplan(demo_project());
  const std::string fragment = result.constraints_fragment();
  EXPECT_NE(fragment.find("region D1"), std::string::npos) << fragment;
  EXPECT_NE(fragment.find("width"), std::string::npos) << fragment;
}

TEST(Planner, FloorplanAxisYieldsDistinctPricedChoices) {
  const auto choices = floorplan_axis(demo_project(), {}, 3);
  ASSERT_FALSE(choices.empty());
  EXPECT_LE(choices.size(), 3u);
  std::set<std::string> names;
  for (const auto& choice : choices) {
    EXPECT_FALSE(choice.name.empty());
    names.insert(choice.name);
    ASSERT_TRUE(choice.region_load_ns.count("D1")) << choice.name;
    EXPECT_GT(choice.region_load_ns.at("D1"), 0) << choice.name;
  }
  EXPECT_EQ(names.size(), choices.size());
  // Wider plans carry more frames: load times must strictly grow along
  // the widening ladder.
  for (std::size_t i = 1; i < choices.size(); ++i)
    EXPECT_GT(choices[i].region_load_ns.at("D1"), choices[i - 1].region_load_ns.at("D1"));
}

TEST(Planner, FixedPlanRejectsMissingAndOversizedWidths) {
  const aaa::Project project = demo_project();
  EXPECT_THROW((void)plan_fixed(project, {}), pdr::Error);
  EXPECT_THROW((void)plan_fixed(project, {{"D1", 1000}}), pdr::Error);
}

TEST(Planner, ProjectWithoutDynamicRegionsIsRejected) {
  aaa::Project project = demo_project();
  project.architecture = aaa::ArchitectureGraph();
  project.architecture.add_operator(
      aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
  EXPECT_THROW((void)plan_floorplan(project), pdr::Error);
}

TEST(Planner, ResultReportNamesEveryRegionAndTheVerdict) {
  const PlanResult result = plan_floorplan(demo_project());
  const std::string text = result.to_string();
  EXPECT_NE(text.find("D1"), std::string::npos) << text;
  EXPECT_NE(text.find("makespan"), std::string::npos) << text;
  EXPECT_NE(text.find("certified"), std::string::npos) << text;
  const auto loads = result.region_load_ns();
  ASSERT_TRUE(loads.count("D1"));
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(loads.at("D1"), result.regions[0].load_ns);
}

}  // namespace
}  // namespace pdr::plan
