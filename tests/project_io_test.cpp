#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/project_io.hpp"
#include "util/error.hpp"

namespace pdr::aaa {
namespace {

const char* kProject = R"(
project demo_tx

algorithm {
  sensor   src   kind bit_source
  compute  fft   kind ifft  param n 64  param width 16
  conditioned mod {
    alt qpsk  kind qpsk_mapper
    alt qam16 kind qam16_mapper  param n 4
  }
  actuator out   kind interface_in_out
  dep src -> mod bytes 16
  dep mod -> fft bytes 64
  dep fft -> out bytes 256
}

architecture {
  processor   CPU speed 2.0
  fpga_static F1  device XC2V2000
  fpga_region D1  device XC2V2000 region D1
  medium BUS bandwidth 100000000 latency 100
  connect CPU BUS
  connect F1 BUS
  connect D1 BUS
}

durations {
  set bit_source processor 2000
  set bit_source fpga_static 1000
  set ifft processor 60000
  set ifft fpga_static 3200
  set qpsk_mapper fpga_region 1000
  set qpsk_mapper processor 15000
  set qam16_mapper fpga_region 1200
  set qam16_mapper processor 22000
  set interface_in_out processor 500
  set interface_in_out fpga_static 500
  set_for ifft F1 3000
}
)";

TEST(ProjectIo, ParsesAllSections) {
  const Project p = parse_project(kProject);
  EXPECT_EQ(p.name, "demo_tx");
  EXPECT_EQ(p.algorithm.size(), 4u);
  EXPECT_EQ(p.architecture.operators().size(), 3u);
  EXPECT_EQ(p.architecture.media().size(), 1u);

  const Operation& fft = p.algorithm.op(p.algorithm.by_name("fft"));
  EXPECT_EQ(fft.kind, "ifft");
  EXPECT_EQ(fft.params.at("n"), 64);
  EXPECT_EQ(fft.params.at("width"), 16);

  const Operation& mod = p.algorithm.op(p.algorithm.by_name("mod"));
  ASSERT_TRUE(mod.conditioned());
  EXPECT_EQ(mod.alternatives[1].params.at("n"), 4);

  const OperatorNode& cpu = p.architecture.op(p.architecture.by_name("CPU"));
  EXPECT_DOUBLE_EQ(cpu.speed_factor, 2.0);
  const OperatorNode& d1 = p.architecture.op(p.architecture.by_name("D1"));
  EXPECT_EQ(d1.region, "D1");
  EXPECT_EQ(d1.device, "XC2V2000");

  // Name-level duration beats the kind entry.
  EXPECT_EQ(p.durations.lookup("ifft", p.architecture.op(p.architecture.by_name("F1"))), 3000);
}

TEST(ProjectIo, WriteParseRoundTrip) {
  const Project a = parse_project(kProject);
  const Project b = parse_project(write_project(a));
  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.algorithm.size(), a.algorithm.size());
  EXPECT_EQ(b.algorithm.digraph().edge_count(), a.algorithm.digraph().edge_count());
  EXPECT_EQ(b.architecture.operators().size(), a.architecture.operators().size());
  EXPECT_EQ(b.architecture.media().size(), a.architecture.media().size());
  EXPECT_EQ(b.durations.entries().size(), a.durations.entries().size());

  // The round-tripped project produces the identical schedule.
  Adequation ad_a(a.algorithm, a.architecture, a.durations);
  Adequation ad_b(b.algorithm, b.architecture, b.durations);
  const Schedule sa = ad_a.run();
  const Schedule sb = ad_b.run();
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.size(), sb.size());
}

TEST(ProjectIo, ScheduleRunsOnParsedProject) {
  const Project p = parse_project(kProject);
  Adequation adequation(p.algorithm, p.architecture, p.durations);
  const Schedule s = adequation.run();
  validate_schedule(s, p.algorithm, p.architecture);
  EXPECT_GT(s.makespan, 0);
}

struct BadProject {
  const char* label;
  const char* text;
};

class BadProjectTest : public ::testing::TestWithParam<BadProject> {};

TEST_P(BadProjectTest, RejectedWithLineInfo) {
  try {
    parse_project(GetParam().text);
    FAIL() << GetParam().label;
  } catch (const pdr::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << e.what();
  } catch (const std::exception&) {
    // Validation errors from the graphs are acceptable too.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadProjectTest,
    ::testing::Values(
        BadProject{"no_algorithm", "project x\narchitecture {\n processor P\n }\n"},
        BadProject{"no_architecture",
                   "project x\nalgorithm {\n sensor s kind bit_source\n }\n"},
        BadProject{"unknown_section", "wibble {\n}\n"},
        BadProject{"bad_dep_arrow",
                   "algorithm {\n sensor a kind x\n compute b kind x\n dep a to b bytes 4\n }\n"},
        BadProject{"bad_int",
                   "algorithm {\n compute a kind x param n many\n }\narchitecture {\n processor "
                   "P\n }\n"},
        BadProject{"unterminated", "algorithm {\n sensor s kind x\n"},
        BadProject{"bad_operator_kind",
                   "algorithm {\n sensor s kind x\n }\narchitecture {\n gpu G\n }\n"}),
    [](const ::testing::TestParamInfo<BadProject>& info) { return info.param.label; });

TEST(ProjectIo, DisconnectedArchitectureRejected) {
  EXPECT_THROW(parse_project("algorithm {\n sensor s kind x\n }\n"
                             "architecture {\n processor A\n processor B\n }\n"),
               pdr::Error);
}

}  // namespace
}  // namespace pdr::aaa
