// Cross-cutting property and fuzz tests:
//  - any single-bit corruption of a partial bitstream is detected,
//  - randomly generated constraints files round-trip through write/parse,
//  - random conditioned algorithm graphs schedule validly on random
//    multi-region platforms,
//  - random request/announce sequences keep the reconfiguration manager's
//    invariants (monotone port time, verified residency, non-negative
//    stalls).
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "aaa/durations.hpp"
#include "fabric/bitstream.hpp"
#include "rtr/manager.hpp"
#include "synth/bitgen.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdr {
namespace {

using namespace pdr::literals;

// --- bitstream corruption fuzz ----------------------------------------------------

class BitstreamFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamFuzzTest, AnySingleBitFlipIsDetected) {
  const fabric::DeviceModel device = fabric::xc2v2000();
  const fabric::FrameMap map(device);
  const auto frames = map.frames_for_clb_range(44, 45);
  const auto stream = synth::generate_partial_bitstream(device, frames, 0xfeed);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = stream;
    const auto byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stream.size()) - 1));
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_THROW(fabric::BitstreamReader::validate(device, corrupted), pdr::Error)
        << "flip at byte " << byte << " went undetected";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamFuzzTest, ::testing::Range(0, 5));

TEST(BitstreamFuzz, TruncationAtEveryWordBoundaryDetected) {
  const fabric::DeviceModel device = fabric::xc2v2000();
  const fabric::FrameMap map(device);
  const auto stream =
      synth::generate_partial_bitstream(device, map.clb_column_frames(10), 0xbeef);
  for (std::size_t keep = 4; keep < stream.size(); keep += 616) {
    std::vector<std::uint8_t> cut(stream.begin(),
                                  stream.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(fabric::BitstreamReader::validate(device, cut), pdr::Error) << keep;
  }
}

// --- constraints round-trip fuzz ---------------------------------------------------

aaa::ConstraintSet random_constraints(Rng& rng) {
  aaa::ConstraintSet set;
  set.device = rng.chance(0.5) ? "XC2V2000" : "XC2V1000";
  set.port = static_cast<aaa::PortChoice>(rng.uniform_int(0, 2));
  set.manager = static_cast<aaa::Placement>(rng.uniform_int(0, 1));
  set.builder = static_cast<aaa::Placement>(rng.uniform_int(0, 1));
  set.prefetch = static_cast<aaa::PrefetchChoice>(rng.uniform_int(0, 2));
  const int regions = 1 + static_cast<int>(rng.uniform_int(0, 2));
  for (int r = 0; r < regions; ++r) {
    aaa::RegionConstraint rc;
    rc.name = "R" + std::to_string(r);
    rc.width = rng.chance(0.5) ? -1 : static_cast<int>(rng.uniform_int(2, 8));
    rc.margin = static_cast<int>(rng.uniform_int(0, 2));
    set.regions.push_back(rc);
  }
  int module_id = 0;
  for (int r = 0; r < regions; ++r) {
    const int modules = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int m = 0; m < modules; ++m) {
      aaa::ModuleConstraint mc;
      mc.name = "m" + std::to_string(module_id++);
      mc.region = "R" + std::to_string(r);
      mc.kind = rng.chance(0.5) ? "qpsk_mapper" : "fir";
      if (rng.chance(0.5)) mc.params["taps"] = static_cast<int>(rng.uniform_int(2, 32));
      mc.load = rng.chance(0.3) ? aaa::LoadPolicy::Startup : aaa::LoadPolicy::OnDemand;
      mc.unload = rng.chance(0.3) ? aaa::UnloadPolicy::Eager : aaa::UnloadPolicy::Lazy;
      set.modules.push_back(mc);
    }
  }
  if (set.modules.size() >= 2) {
    set.exclusions.emplace_back(set.modules[0].name, set.modules[1].name);
    set.relations.emplace_back(set.modules[0].name, set.modules[1].name);
  }
  return set;
}

class ConstraintsFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintsFuzzTest, WriteParseRoundTripExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    const aaa::ConstraintSet a = random_constraints(rng);
    const aaa::ConstraintSet b = aaa::parse_constraints(aaa::write_constraints(a));
    EXPECT_EQ(b.device, a.device);
    EXPECT_EQ(b.port, a.port);
    EXPECT_EQ(b.manager, a.manager);
    EXPECT_EQ(b.builder, a.builder);
    EXPECT_EQ(b.prefetch, a.prefetch);
    ASSERT_EQ(b.regions.size(), a.regions.size());
    for (std::size_t i = 0; i < a.regions.size(); ++i) {
      EXPECT_EQ(b.regions[i].name, a.regions[i].name);
      EXPECT_EQ(b.regions[i].width, a.regions[i].width);
      EXPECT_EQ(b.regions[i].margin, a.regions[i].margin);
    }
    ASSERT_EQ(b.modules.size(), a.modules.size());
    for (std::size_t i = 0; i < a.modules.size(); ++i) {
      EXPECT_EQ(b.modules[i].name, a.modules[i].name);
      EXPECT_EQ(b.modules[i].kind, a.modules[i].kind);
      EXPECT_EQ(b.modules[i].params, a.modules[i].params);
      EXPECT_EQ(b.modules[i].load, a.modules[i].load);
      EXPECT_EQ(b.modules[i].unload, a.modules[i].unload);
    }
    EXPECT_EQ(b.exclusions, a.exclusions);
    EXPECT_EQ(b.relations, a.relations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintsFuzzTest, ::testing::Range(0, 5));

// --- adequation on random platforms -------------------------------------------------

class PlatformFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PlatformFuzzTest, ConditionedGraphsScheduleOnRandomPlatforms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);

  // Random platform: 1-2 CPUs, one static part, 0-3 regions, one bus.
  aaa::ArchitectureGraph arch;
  const int cpus = 1 + static_cast<int>(rng.uniform_int(0, 1));
  for (int c = 0; c < cpus; ++c)
    arch.add_operator(aaa::OperatorNode{"CPU" + std::to_string(c), aaa::OperatorKind::Processor,
                                        rng.uniform(0.5, 2.0), "", ""});
  arch.add_operator(aaa::OperatorNode{"F1", aaa::OperatorKind::FpgaStatic, 1.0, "XC2V2000", ""});
  const int regions = static_cast<int>(rng.uniform_int(0, 3));
  for (int r = 0; r < regions; ++r) {
    const std::string name = "D" + std::to_string(r + 1);
    arch.add_operator(aaa::OperatorNode{name, aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", name});
  }
  arch.add_medium(aaa::MediumNode{"BUS", rng.uniform(50e6, 400e6), 100});
  for (aaa::NodeId op : arch.operators()) arch.connect(op, arch.by_name("BUS"));

  aaa::DurationTable durations;
  for (const char* kind : {"src", "work", "alt_a", "alt_b"}) {
    durations.set(kind, aaa::OperatorKind::Processor,
                  static_cast<TimeNs>(rng.uniform_int(5'000, 50'000)));
    durations.set(kind, aaa::OperatorKind::FpgaStatic,
                  static_cast<TimeNs>(rng.uniform_int(1'000, 10'000)));
    durations.set(kind, aaa::OperatorKind::FpgaRegion,
                  static_cast<TimeNs>(rng.uniform_int(1'000, 10'000)));
  }

  // Random chain with a couple of conditioned vertices.
  aaa::AlgorithmGraph g;
  const int length = 6 + static_cast<int>(rng.uniform_int(0, 6));
  std::string prev;
  for (int i = 0; i < length; ++i) {
    const std::string name = "n" + std::to_string(i);
    if (i == 0) {
      g.add_operation({name, "src", {}, aaa::OpClass::Sensor, {}});
    } else if (i % 4 == 2) {
      g.add_conditioned(name, {{"va", "alt_a", {}}, {"vb", "alt_b", {}}});
    } else {
      g.add_compute(name, "work");
    }
    if (i > 0) g.add_dependency(prev, name, static_cast<Bytes>(rng.uniform_int(16, 512)));
    prev = name;
  }

  aaa::Adequation adequation(g, arch, durations);
  adequation.set_reconfig_cost(
      [](const std::string&, const std::string&) { return 500_us; });
  for (const bool prefetch : {true, false}) {
    aaa::AdequationOptions options;
    options.prefetch = prefetch;
    const aaa::Schedule s = adequation.run(options);
    aaa::validate_schedule(s, g, arch);
    EXPECT_EQ(s.placement_count(), g.size());
    EXPECT_GE(s.makespan, s.period_lower_bound());
    EXPECT_GE(s.reconfig_exposed, 0);
    EXPECT_LE(s.reconfig_exposed, s.reconfig_total + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlatformFuzzTest, ::testing::Range(0, 15));

// --- randomized layered DAGs across every mapping strategy --------------------------

class StrategyFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyFuzzTest, LayeredDagsScheduleValidlyUnderEveryStrategy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 17);

  // Random layered DAG: 3-6 layers, 2-5 ops per layer, fan-in 1-3, a
  // conditioned vertex roughly every fourth op.
  aaa::AlgorithmGraph g;
  const int layers = 3 + static_cast<int>(rng.uniform_int(0, 3));
  std::vector<std::vector<std::string>> names(static_cast<std::size_t>(layers));
  int made = 0;
  for (int l = 0; l < layers; ++l) {
    const int width = 2 + static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < width; ++i, ++made) {
      const std::string name = "n" + std::to_string(made);
      if (l == 0)
        g.add_operation({name, "src", {}, aaa::OpClass::Sensor, {}});
      else if (made % 4 == 3)
        g.add_conditioned(name, {{"va", "alt_a", {}}, {"vb", "alt_b", {}}});
      else
        g.add_compute(name, "work");
      names[static_cast<std::size_t>(l)].push_back(name);
      if (l > 0) {
        const auto& prev = names[static_cast<std::size_t>(l - 1)];
        const int fan_in = 1 + static_cast<int>(rng.uniform_int(0, 2));
        for (int e = 0; e < fan_in; ++e)
          g.add_dependency(
              prev[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))],
              name, static_cast<Bytes>(rng.uniform_int(16, 512)));
      }
    }
  }

  aaa::ArchitectureGraph arch;
  arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
  arch.add_operator(aaa::OperatorNode{"F1", aaa::OperatorKind::FpgaStatic, 1.0, "XC2V2000", ""});
  arch.add_operator(aaa::OperatorNode{"D1", aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", "D1"});
  arch.add_medium(aaa::MediumNode{"BUS", rng.uniform(50e6, 400e6), 100});
  for (aaa::NodeId op : arch.operators()) arch.connect(op, arch.by_name("BUS"));

  aaa::DurationTable durations;
  for (const char* kind : {"src", "work", "alt_a", "alt_b"}) {
    durations.set(kind, aaa::OperatorKind::Processor,
                  static_cast<TimeNs>(rng.uniform_int(5'000, 50'000)));
    durations.set(kind, aaa::OperatorKind::FpgaStatic,
                  static_cast<TimeNs>(rng.uniform_int(1'000, 10'000)));
    durations.set(kind, aaa::OperatorKind::FpgaRegion,
                  static_cast<TimeNs>(rng.uniform_int(1'000, 10'000)));
  }

  aaa::Adequation adequation(g, arch, durations);
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 500_us; });
  for (const auto strategy :
       {aaa::MappingStrategy::SynDExList, aaa::MappingStrategy::RoundRobin,
        aaa::MappingStrategy::FirstFeasible}) {
    aaa::AdequationOptions options;
    options.strategy = strategy;
    const aaa::Schedule s = adequation.run(options);
    aaa::validate_schedule(s, g, arch);
    EXPECT_EQ(s.placement_count(), g.size()) << aaa::mapping_strategy_name(strategy);
    EXPECT_GE(s.makespan, s.period_lower_bound());

    // The indexed ready-queue must agree with the rescanning reference
    // byte for byte, whatever the strategy and graph shape.
    aaa::AdequationOptions rescan = options;
    rescan.ready_policy = aaa::ReadyPolicy::RescanReference;
    EXPECT_EQ(s.to_csv(), adequation.run(rescan).to_csv())
        << aaa::mapping_strategy_name(strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyFuzzTest, ::testing::Range(0, 10));

// --- manager request-sequence fuzz --------------------------------------------------

class ManagerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ManagerFuzzTest, RandomRequestSequencesKeepInvariants) {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_region("D1", {{"a", "qpsk_mapper", {}}, {"b", "qam16_mapper", {}},
                         {"c", "qam64_mapper", {}}});
  const synth::DesignBundle bundle = flow.run();
  rtr::BitstreamStore store(30e6, 2000);
  rtr::HistoryPredictor policy;
  rtr::ReconfigManager manager(bundle, rtr::ManagerConfig{}, store, policy);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
  const char* modules[] = {"a", "b", "c"};
  TimeNs now = 0;
  TimeNs last_port_free = 0;
  for (int step = 0; step < 60; ++step) {
    now += static_cast<TimeNs>(rng.uniform_int(0, 8'000'000));
    const std::string module = modules[rng.uniform_int(0, 2)];
    if (rng.chance(0.4)) {
      manager.announce("D1", module, now);
    } else {
      const auto outcome = manager.request("D1", module, now);
      EXPECT_GE(outcome.stall, 0);
      EXPECT_GE(outcome.ready_at, now);
      EXPECT_EQ(manager.loaded("D1"), module);
      // Residency is physically real after every demand.
      EXPECT_EQ(manager.verify_resident("D1"), 0);
      now = outcome.ready_at;
    }
    // The port never travels back in time.
    EXPECT_GE(manager.port_free_at(), last_port_free);
    last_port_free = manager.port_free_at();
  }
  const auto& stats = manager.stats();
  EXPECT_EQ(stats.requests, stats.already_loaded + stats.prefetch_hits + stats.prefetch_inflight +
                                stats.cache_hits + stats.misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerFuzzTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pdr
