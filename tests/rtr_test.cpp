#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/arbiter.hpp"
#include "rtr/bitstream_store.hpp"
#include "rtr/cache.hpp"
#include "rtr/manager.hpp"
#include "rtr/prefetch.hpp"
#include "rtr/protocol_builder.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pdr::rtr {
namespace {

using namespace pdr::literals;

synth::DesignBundle test_bundle() {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_static("ifft", "ifft", {{"n", 64}});
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  return flow.run();
}

// --- store -----------------------------------------------------------------------

TEST(BitstreamStore, AddGetFetchTime) {
  BitstreamStore store(1e6, 1000);  // 1 MB/s, 1 us latency
  store.add("m", std::vector<std::uint8_t>(1000, 0xaa));
  EXPECT_TRUE(store.contains("m"));
  EXPECT_FALSE(store.contains("x"));
  EXPECT_EQ(store.size_of("m"), 1000u);
  EXPECT_EQ(store.fetch_time("m"), 1000 + 1'000'000);  // 1 ms stream + latency
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.total_bytes(), 1000u);
}

TEST(BitstreamStore, ReplaceAndErrors) {
  BitstreamStore store(1e6, 0);
  store.add("m", std::vector<std::uint8_t>(10, 1));
  store.add("m", std::vector<std::uint8_t>(20, 2));
  EXPECT_EQ(store.size_of("m"), 20u);
  EXPECT_THROW(store.get("ghost"), pdr::Error);
  EXPECT_THROW(store.add("", std::vector<std::uint8_t>(1)), pdr::Error);
  EXPECT_THROW(store.add("e", {}), pdr::Error);
  EXPECT_THROW(BitstreamStore(0.0, 0), pdr::Error);
}

// --- cache -----------------------------------------------------------------------

TEST(BitstreamCache, HitMissAndLru) {
  BitstreamCache cache(100);
  EXPECT_FALSE(cache.lookup("a"));
  cache.insert("a", 40);
  cache.insert("b", 40);
  EXPECT_TRUE(cache.lookup("a"));  // refreshes a
  cache.insert("c", 40);           // evicts b (LRU)
  EXPECT_TRUE(cache.lookup("a"));
  EXPECT_FALSE(cache.lookup("b"));
  EXPECT_TRUE(cache.lookup("c"));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_LE(cache.used(), cache.capacity());
}

TEST(BitstreamCache, OversizedNeverCached) {
  BitstreamCache cache(10);
  cache.insert("big", 50);
  EXPECT_FALSE(cache.lookup("big"));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(BitstreamCache, InvalidateRemoves) {
  BitstreamCache cache(100);
  cache.insert("a", 10);
  cache.invalidate("a");
  EXPECT_FALSE(cache.lookup("a"));
  cache.invalidate("ghost");  // no-op
}

TEST(BitstreamCache, HitRateAccounting) {
  BitstreamCache cache(100);
  cache.insert("a", 10);
  cache.lookup("a");
  cache.lookup("b");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(BitstreamCache, ReinsertUpdatesSize) {
  BitstreamCache cache(100);
  cache.insert("a", 90);
  cache.insert("a", 10);
  EXPECT_EQ(cache.used(), 10u);
  cache.insert("b", 80);
  EXPECT_TRUE(cache.lookup("a"));
  EXPECT_TRUE(cache.lookup("b"));
}

TEST(BitstreamCache, ReinsertGrowingEvictsOthers) {
  // Re-inserting an entry at a larger size must make room like a fresh
  // insert would, not silently blow the budget.
  BitstreamCache cache(100);
  cache.insert("a", 40);
  cache.insert("b", 40);
  cache.insert("a", 80);  // now only a fits alongside nothing else
  EXPECT_LE(cache.used(), cache.capacity());
  EXPECT_TRUE(cache.lookup("a"));
  EXPECT_FALSE(cache.lookup("b"));
  EXPECT_GT(cache.evictions(), 0);
}

TEST(BitstreamCache, LookupPromotionChangesEvictionOrder) {
  BitstreamCache cache(90);
  cache.insert("a", 30);
  cache.insert("b", 30);
  cache.insert("c", 30);
  EXPECT_TRUE(cache.lookup("a"));  // a becomes most recent; b is now LRU
  cache.insert("d", 30);
  EXPECT_FALSE(cache.lookup("b"));
  EXPECT_TRUE(cache.lookup("a"));
  EXPECT_TRUE(cache.lookup("c"));
  EXPECT_TRUE(cache.lookup("d"));
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(BitstreamCache, InvalidateAfterEvictionIsNoop) {
  // A module staged earlier may have been evicted by later inserts by the
  // time it is invalidated; the invalidate must not disturb the survivors.
  BitstreamCache cache(50);
  cache.insert("staged", 30);
  cache.insert("x", 30);  // evicts staged
  EXPECT_FALSE(cache.lookup("staged"));
  cache.invalidate("staged");
  EXPECT_TRUE(cache.lookup("x"));
  EXPECT_EQ(cache.used(), 30u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(BitstreamCache, ZeroCapacityCachesNothing) {
  BitstreamCache cache(0);
  cache.insert("a", 1);
  EXPECT_FALSE(cache.lookup("a"));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used(), 0u);
  cache.invalidate("a");  // no-op, must not throw
  EXPECT_EQ(cache.evictions(), 0);
}

// --- prefetch policies -------------------------------------------------------------

TEST(Prefetch, NoneNeverPredicts) {
  NonePrefetch p;
  EXPECT_FALSE(p.predict("D1", "qpsk").has_value());
  EXPECT_STREQ(p.name(), "none");
}

TEST(Prefetch, ScheduleLookaheadFollowsQueue) {
  ScheduleLookahead p;
  p.feed("D1", {"qpsk", "qpsk", "qam16", "qpsk"});
  // Currently qpsk resident; next different demand is qam16.
  EXPECT_EQ(p.predict("D1", "qpsk").value(), "qam16");
  p.observe("D1", "qpsk");
  p.observe("D1", "qpsk");
  EXPECT_EQ(p.predict("D1", "qpsk").value(), "qam16");
  p.observe("D1", "qam16");
  EXPECT_EQ(p.predict("D1", "qam16").value(), "qpsk");
  p.observe("D1", "qpsk");
  EXPECT_FALSE(p.predict("D1", "qpsk").has_value());  // queue exhausted
  EXPECT_EQ(p.pending("D1"), 0u);
}

TEST(Prefetch, ScheduleLookaheadUnknownRegionEmpty) {
  ScheduleLookahead p;
  EXPECT_FALSE(p.predict("D9", "x").has_value());
  EXPECT_EQ(p.pending("D9"), 0u);
}

TEST(Prefetch, HistoryLearnsTransitions) {
  HistoryPredictor p;
  EXPECT_FALSE(p.predict("D1", "qpsk").has_value());
  p.observe("D1", "qpsk");
  p.observe("D1", "qam16");
  p.observe("D1", "qpsk");
  p.observe("D1", "qam16");
  EXPECT_EQ(p.transition_count("qpsk", "qam16"), 2);
  EXPECT_EQ(p.predict("D1", "qpsk").value(), "qam16");
  EXPECT_EQ(p.predict("D1", "qam16").value(), "qpsk");
}

TEST(Prefetch, HistorySeededFromRelations) {
  aaa::ConstraintSet cset = aaa::parse_constraints(
      "region D1 { width 2 }\n"
      "dynamic a { region D1\n kind fir }\n"
      "dynamic b { region D1\n kind fir }\n"
      "relation a then b\n");
  HistoryPredictor p(cset);
  EXPECT_EQ(p.predict("D1", "a").value(), "b");
}

TEST(Prefetch, FactoryMatchesChoice) {
  aaa::ConstraintSet cset = aaa::parse_constraints(
      "prefetch history\nregion D1 { width 2 }\ndynamic a { region D1\n kind fir }\n");
  EXPECT_STREQ(make_prefetch_policy(cset)->name(), "history");
  cset.prefetch = aaa::PrefetchChoice::None;
  EXPECT_STREQ(make_prefetch_policy(cset)->name(), "none");
  cset.prefetch = aaa::PrefetchChoice::Schedule;
  EXPECT_STREQ(make_prefetch_policy(cset)->name(), "schedule");
}

// --- protocol builder ---------------------------------------------------------------

TEST(ProtocolBuilder, ValidatesAndTimes) {
  const synth::DesignBundle bundle = test_bundle();
  const auto& stream = bundle.variant("D1", "qpsk").bitstream;
  ProtocolBuilder fpga_builder(aaa::Placement::Fpga, fabric::PortKind::Icap, 40e6, 1e9);
  const BuildResult r = fpga_builder.build(bundle.device, stream);
  EXPECT_EQ(r.stream.size(), stream.size());
  EXPECT_GT(r.frames, 0);

  ProtocolBuilder cpu_builder(aaa::Placement::Cpu, fabric::PortKind::SelectMap, 40e6, 1e9);
  EXPECT_GT(cpu_builder.build(bundle.device, stream).build_time, r.build_time);
}

TEST(ProtocolBuilder, RejectsCorruptedMemory) {
  const synth::DesignBundle bundle = test_bundle();
  auto stream = bundle.variant("D1", "qpsk").bitstream;
  stream[stream.size() / 2] ^= 0x10;
  ProtocolBuilder builder(aaa::Placement::Fpga, fabric::PortKind::Icap, 40e6, 1e9);
  EXPECT_THROW(builder.build(bundle.device, stream), pdr::Error);
}

// --- manager ---------------------------------------------------------------------------

struct ManagerFixture {
  synth::DesignBundle bundle = test_bundle();
  BitstreamStore store{50e6, 1000};
  ScheduleLookahead policy;
  ManagerConfig config;
  std::unique_ptr<ReconfigManager> manager;

  explicit ManagerFixture(ManagerConfig cfg = {}) : config(cfg) {
    manager = std::make_unique<ReconfigManager>(bundle, config, store, policy);
  }
};

TEST(Manager, RegistersVariantBitstreams) {
  ManagerFixture f;
  EXPECT_TRUE(f.store.contains("qpsk"));
  EXPECT_TRUE(f.store.contains("qam16"));
  EXPECT_EQ(f.manager->loaded("D1"), "");
  EXPECT_THROW(f.manager->loaded("D9"), pdr::Error);
}

TEST(Manager, ColdMissPaysFullLatency) {
  ManagerFixture f;
  const TimeNs cold = f.manager->cold_load_latency("qpsk");
  const auto outcome = f.manager->request("D1", "qpsk", 1000);
  EXPECT_EQ(outcome.kind, RequestKind::Miss);
  EXPECT_EQ(outcome.ready_at, 1000 + cold);
  EXPECT_EQ(outcome.stall, cold);
  EXPECT_EQ(f.manager->loaded("D1"), "qpsk");
  EXPECT_EQ(f.manager->stats().misses, 1);
}

TEST(Manager, RepeatRequestIsFree) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const auto outcome = f.manager->request("D1", "qpsk", 5_ms);
  EXPECT_EQ(outcome.kind, RequestKind::AlreadyLoaded);
  EXPECT_EQ(outcome.stall, 0);
}

TEST(Manager, LoadPhysicallyConfiguresRegion) {
  ManagerFixture f;
  f.manager->request("D1", "qam16", 0);
  const auto frames = f.bundle.floorplan.region_frames("D1");
  EXPECT_TRUE(f.manager->memory().region_owned_by(frames, "qam16"));
  f.manager->request("D1", "qpsk", 10_ms);
  EXPECT_TRUE(f.manager->memory().region_owned_by(frames, "qpsk"));
}

TEST(Manager, AnnounceThenRequestIsPrefetchHit) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const TimeNs t1 = f.manager->port_free_at();
  const auto done = f.manager->announce("D1", "qam16", t1);
  ASSERT_TRUE(done.has_value());
  // Demand after staging finished: only the port transfer remains.
  const auto outcome = f.manager->request("D1", "qam16", *done + 1_ms);
  EXPECT_EQ(outcome.kind, RequestKind::PrefetchHit);
  EXPECT_EQ(outcome.stall, f.manager->staged_load_latency("qam16"));
  EXPECT_LT(outcome.stall, f.manager->cold_load_latency("qam16"));
  EXPECT_EQ(f.manager->stats().prefetch_hits, 1);
  EXPECT_EQ(f.manager->stats().prefetches_issued, 1);
}

TEST(Manager, AnnounceDoesNotTouchTheRegion) {
  // Staging must not disturb the module that is still computing: only a
  // demand rewrites the region's frames.
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const auto frames = f.bundle.floorplan.region_frames("D1");
  f.manager->announce("D1", "qam16", 10_ms);
  EXPECT_EQ(f.manager->loaded("D1"), "qpsk");
  EXPECT_TRUE(f.manager->memory().region_owned_by(frames, "qpsk"));
}

TEST(Manager, AnnounceInFlightGivesPartialStall) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const TimeNs t1 = f.manager->port_free_at();
  const auto done = f.manager->announce("D1", "qam16", t1);
  ASSERT_TRUE(done.has_value());
  // Demand shortly before staging completes: the staged path wins and the
  // stall is the small remainder plus the port transfer.
  const TimeNs just_before = *done - 1000;
  const auto outcome = f.manager->request("D1", "qam16", just_before);
  EXPECT_EQ(outcome.kind, RequestKind::PrefetchInFlight);
  EXPECT_EQ(outcome.stall, 1000 + f.manager->staged_load_latency("qam16"));
  EXPECT_LT(outcome.stall, f.manager->cold_load_latency("qam16"));
}

TEST(Manager, BarelyStartedStagingFallsBackToColdPath) {
  // A demand arriving right after the announce must never be slower than
  // no prefetch at all: the manager streams the cold pipelined path.
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const TimeNs t1 = f.manager->port_free_at();
  f.manager->announce("D1", "qam16", t1);
  const auto outcome = f.manager->request("D1", "qam16", t1 + 10);
  EXPECT_EQ(outcome.kind, RequestKind::Miss);
  EXPECT_EQ(outcome.stall, f.manager->cold_load_latency("qam16"));
  EXPECT_EQ(f.manager->stats().prefetches_wasted, 1);
}

TEST(Manager, AnnounceIgnoredWithNonePolicy) {
  synth::DesignBundle bundle = test_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch none;
  ReconfigManager manager(bundle, ManagerConfig{}, store, none);
  manager.request("D1", "qpsk", 0);
  EXPECT_FALSE(manager.announce("D1", "qam16", 10_ms).has_value());
  EXPECT_EQ(manager.stats().prefetches_issued, 0);
}

TEST(Manager, AnnounceForResidentModuleIsNoop) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  EXPECT_FALSE(f.manager->announce("D1", "qpsk", 10_ms).has_value());
}

TEST(Manager, DuplicateAnnounceReturnsSameCompletion) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const auto a = f.manager->announce("D1", "qam16", f.manager->port_free_at());
  const auto b = f.manager->announce("D1", "qam16", f.manager->port_free_at());
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(f.manager->stats().prefetches_issued, 1);
}

TEST(Manager, MispredictedStagingDoesNotHurtResidentModule) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  f.manager->announce("D1", "qam16", f.manager->port_free_at());
  // Demand stays on qpsk: the staged qam16 is simply unused; the resident
  // module is untouched and free.
  const auto outcome = f.manager->request("D1", "qpsk", f.manager->port_free_at() + 1_ms);
  EXPECT_EQ(outcome.kind, RequestKind::AlreadyLoaded);
  EXPECT_EQ(outcome.stall, 0);
}

TEST(Manager, ReplacedStagingCountedWasted) {
  // Three variants so a second announce can replace the first.
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}},
                         {"qam16", "qam16_mapper", {}},
                         {"qam64", "qam64_mapper", {}}});
  const synth::DesignBundle bundle = flow.run();
  BitstreamStore store(50e6, 1000);
  ScheduleLookahead policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);

  manager.request("D1", "qpsk", 0);
  manager.announce("D1", "qam16", 10_ms);
  manager.announce("D1", "qam64", 20_ms);  // replaces staged qam16
  EXPECT_EQ(manager.stats().prefetches_wasted, 1);
  EXPECT_EQ(manager.stats().prefetches_issued, 2);
  const auto outcome = manager.request("D1", "qam64", 40_ms);
  EXPECT_EQ(outcome.kind, RequestKind::PrefetchHit);
}

TEST(Manager, CpuManagerAddsInterruptLatency) {
  ManagerConfig fpga_cfg;
  ManagerFixture on_fpga(fpga_cfg);
  ManagerConfig cpu_cfg;
  cpu_cfg.manager = aaa::Placement::Cpu;
  cpu_cfg.interrupt_latency = 50_us;
  ManagerFixture on_cpu(cpu_cfg);
  EXPECT_EQ(on_cpu.manager->cold_load_latency("qpsk"),
            on_fpga.manager->cold_load_latency("qpsk") + 50_us);
}

TEST(Manager, CpuBuilderThrottlesWhenSlowest) {
  ManagerConfig cfg;
  cfg.builder = aaa::Placement::Cpu;
  cfg.cpu_builder_bytes_per_s = 1e6;  // 1 MB/s software framing, slowest stage
  ManagerFixture slow(cfg);
  ManagerFixture fast;
  EXPECT_GT(slow.manager->cold_load_latency("qpsk"), fast.manager->cold_load_latency("qpsk"));
}

TEST(Manager, CacheSkipsMemoryFetch) {
  ManagerConfig cfg;
  cfg.cache_capacity = 1_MiB;
  ManagerFixture f(cfg);
  const auto first = f.manager->request("D1", "qpsk", 0);
  f.manager->request("D1", "qam16", first.ready_at + 1_ms);
  // qpsk is cached now; reloading it avoids the store fetch.
  const auto third = f.manager->request("D1", "qpsk", f.manager->port_free_at() + 1_ms);
  EXPECT_LT(third.stall, first.stall);
  EXPECT_GT(f.manager->cache().hits(), 0);
}

TEST(Manager, CacheServedDemandReportedAsCacheHit) {
  // Regression: cache-served demands used to be folded into `misses`,
  // understating the cache's effect in every stats table.
  ManagerConfig cfg;
  cfg.cache_capacity = 1_MiB;
  ManagerFixture f(cfg);
  f.manager->request("D1", "qpsk", 0);                             // cold miss
  f.manager->request("D1", "qam16", f.manager->port_free_at() + 1_ms);  // cold miss
  const auto outcome = f.manager->request("D1", "qpsk", f.manager->port_free_at() + 1_ms);
  EXPECT_EQ(outcome.kind, RequestKind::CacheHit);
  EXPECT_EQ(outcome.stall, f.manager->staged_load_latency("qpsk"));
  const ManagerStats& s = f.manager->stats();
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.requests, 3);
  EXPECT_STREQ(request_kind_name(RequestKind::CacheHit), "cache_hit");
}

TEST(Manager, AutoPrefetchUsesPolicyPrediction) {
  ManagerFixture f;
  f.policy.feed("D1", {"qpsk", "qam16"});
  f.manager->request("D1", "qpsk", 0);
  f.manager->auto_prefetch("D1", f.manager->port_free_at());
  EXPECT_EQ(f.manager->stats().prefetches_issued, 1);
  const auto outcome = f.manager->request("D1", "qam16", f.manager->port_free_at() + 1_ms);
  EXPECT_EQ(outcome.kind, RequestKind::PrefetchHit);
}

TEST(Manager, StatsAccumulate) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  f.manager->request("D1", "qam16", 20_ms);
  f.manager->request("D1", "qam16", 40_ms);
  const ManagerStats& s = f.manager->stats();
  EXPECT_EQ(s.requests, 3);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.already_loaded, 1);
  EXPECT_GT(s.total_stall, 0);
  EXPECT_GT(s.bytes_loaded, 0u);
}

TEST(Manager, SundanceConfigIsCaseA) {
  const ManagerConfig cfg = sundance_manager_config();
  EXPECT_EQ(cfg.manager, aaa::Placement::Fpga);
  EXPECT_EQ(cfg.builder, aaa::Placement::Fpga);
  EXPECT_EQ(cfg.port_kind, fabric::PortKind::Icap);
}

TEST(Manager, RequestKindNames) {
  EXPECT_STREQ(request_kind_name(RequestKind::Miss), "miss");
  EXPECT_STREQ(request_kind_name(RequestKind::PrefetchHit), "prefetch_hit");
}

// --- residency, blanking, readback, scrubbing -----------------------------------

TEST(Manager, SetResidentSkipsPort) {
  ManagerFixture f;
  f.manager->set_resident("D1", "qpsk");
  EXPECT_EQ(f.manager->loaded("D1"), "qpsk");
  EXPECT_EQ(f.manager->port_free_at(), 0);  // no port time consumed
  const auto outcome = f.manager->request("D1", "qpsk", 100);
  EXPECT_EQ(outcome.kind, RequestKind::AlreadyLoaded);
}

TEST(Manager, BlankClearsResidencyAndOccupiesPort) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const TimeNs done = f.manager->blank("D1", f.manager->port_free_at());
  EXPECT_GT(done, 0);
  EXPECT_EQ(f.manager->loaded("D1"), "");
  EXPECT_EQ(f.manager->stats().blanks, 1);
  // The next demand is a full miss again.
  const auto outcome = f.manager->request("D1", "qpsk", done + 1_ms);
  EXPECT_EQ(outcome.kind, RequestKind::Miss);
}

TEST(Manager, BlankAccountsBytesAndVerifies) {
  // Regression: blank() used to poke the port directly, bypassing
  // apply_load() — so blanks were invisible in bytes_loaded and escaped
  // the readback verification every demand load gets.
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const Bytes before = f.manager->stats().bytes_loaded;
  f.manager->blank("D1", f.manager->port_free_at());
  EXPECT_GT(f.manager->stats().bytes_loaded, before);
  // The readback path ran: the region's frames are owned by the blank
  // stream, not left tagged with the old module.
  const auto frames = f.bundle.floorplan.region_frames("D1");
  EXPECT_TRUE(f.manager->memory().region_owned_by(frames, "__blank_D1"));
  EXPECT_FALSE(f.manager->memory().region_owned_by(frames, "qpsk"));
}

TEST(Manager, TraceReconcilesWithStats) {
  // The tentpole invariant: demand-load spans (category "load") must sum
  // exactly to ManagerStats::total_load_time; blanks and scrubs are
  // port-occupying but live under their own categories.
  ManagerFixture f;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  f.manager->set_observability(&tracer, &metrics);

  f.manager->request("D1", "qpsk", 0);                                  // miss
  f.manager->announce("D1", "qam16", f.manager->port_free_at());        // staging span
  f.manager->request("D1", "qam16", f.manager->port_free_at() + 20_ms); // prefetch hit
  f.manager->request("D1", "qam16", f.manager->port_free_at() + 1_ms);  // already loaded
  f.manager->blank("D1", f.manager->port_free_at());                    // blank span
  f.manager->request("D1", "qpsk", f.manager->port_free_at() + 1_ms);   // miss again

  const ManagerStats& s = f.manager->stats();
  EXPECT_EQ(tracer.total_duration("load"), s.total_load_time);
  EXPECT_EQ(tracer.count("staging"), static_cast<std::size_t>(s.prefetches_issued));
  EXPECT_EQ(tracer.count("blank"), static_cast<std::size_t>(s.blanks));
  EXPECT_GT(tracer.total_duration("blank"), 0);
  // Counters mirror the struct.
  EXPECT_DOUBLE_EQ(metrics.counter("rtr.manager.requests").value(), s.requests);
  EXPECT_DOUBLE_EQ(metrics.counter("rtr.manager.miss").value(), s.misses);
  EXPECT_DOUBLE_EQ(metrics.counter("rtr.manager.bytes_loaded").value(),
                   static_cast<double>(s.bytes_loaded));
  // The stall histogram saw every demand that touched the port.
  EXPECT_EQ(metrics.histogram("rtr.manager.stall_ns", obs::latency_buckets_ns()).count(),
            static_cast<std::uint64_t>(s.requests - s.already_loaded));
}

TEST(Manager, VerifyDetectsSeuAndScrubRepairs) {
  ManagerFixture f;
  f.manager->request("D1", "qam16", 0);
  EXPECT_EQ(f.manager->verify_resident("D1"), 0);

  // Inject two upsets in different frames.
  const auto frames = f.bundle.floorplan.region_frames("D1");
  auto& memory = const_cast<fabric::ConfigMemory&>(f.manager->memory());
  memory.flip_bit(frames[3], 10, 2);
  memory.flip_bit(frames[17], 0, 7);
  EXPECT_EQ(f.manager->verify_resident("D1"), 2);

  const TimeNs done = f.manager->scrub("D1", f.manager->port_free_at());
  EXPECT_GT(done, 0);
  EXPECT_EQ(f.manager->verify_resident("D1"), 0);
  EXPECT_EQ(f.manager->stats().scrubs, 1);
  EXPECT_EQ(f.manager->loaded("D1"), "qam16");  // residency unchanged
}

TEST(Manager, ScrubWithoutResidentThrows) {
  ManagerFixture f;
  EXPECT_THROW(f.manager->scrub("D1", 0), pdr::Error);
  EXPECT_THROW(f.manager->verify_resident("D1"), pdr::Error);
}

// --- request arbiter --------------------------------------------------------------

synth::DesignBundle two_region_bundle() {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  flow.add_region("D2", {{"fir_a", "custom", {{"luts", 100}, {"ffs", 50}}},
                         {"fir_b", "custom", {{"luts", 150}, {"ffs", 60}}}});
  return flow.run();
}

TEST(Arbiter, DrainsByPriorityThenFifo) {
  const synth::DesignBundle bundle = two_region_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);
  RequestArbiter arbiter(manager);

  arbiter.submit("D2", "fir_a", 0, /*priority=*/0);
  arbiter.submit("D1", "qpsk", 10, /*priority=*/5);
  EXPECT_EQ(arbiter.pending(), 2u);
  const auto drained = arbiter.drain(100);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].request.region, "D1");  // higher priority first
  EXPECT_EQ(drained[1].request.region, "D2");
  // Requests serialize on the port: the second starts after the first.
  EXPECT_GE(drained[1].outcome.ready_at, drained[0].outcome.ready_at);
  EXPECT_EQ(arbiter.pending(), 0u);
}

TEST(Arbiter, CoalescesDuplicates) {
  const synth::DesignBundle bundle = two_region_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);
  RequestArbiter arbiter(manager);

  arbiter.submit("D1", "qpsk", 0, 0);
  arbiter.submit("D1", "qpsk", 5, 9);  // same target, higher priority
  EXPECT_EQ(arbiter.pending(), 1u);
  EXPECT_EQ(arbiter.coalesced(), 1);
  arbiter.submit("D1", "qam16", 6, 0);  // different module: kept
  EXPECT_EQ(arbiter.pending(), 2u);
  const auto drained = arbiter.drain(10);
  // The coalesced request carries the raised priority -> drains first.
  EXPECT_EQ(drained[0].request.module, "qpsk");
  EXPECT_EQ(drained[0].request.priority, 9);
}

TEST(Arbiter, QueueWaitAccounted) {
  const synth::DesignBundle bundle = two_region_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);
  RequestArbiter arbiter(manager);

  arbiter.submit("D1", "qpsk", 0, 0);
  arbiter.submit("D2", "fir_a", 0, 0);
  const auto drained = arbiter.drain(1000);
  EXPECT_EQ(drained[0].queue_wait, 1000);
  // The second waited for the first's reconfiguration too.
  EXPECT_EQ(drained[1].queue_wait, drained[0].outcome.ready_at);
  EXPECT_EQ(arbiter.total_queue_wait(), drained[0].queue_wait + drained[1].queue_wait);
}

// Four variants per region: enough distinct targets that duplicate
// coalescing never collapses a fairness backlog mid-test.
synth::DesignBundle four_variant_bundle() {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_region("D1", {{"a0", "custom", {{"luts", 100}, {"ffs", 50}}},
                         {"a1", "custom", {{"luts", 110}, {"ffs", 50}}},
                         {"a2", "custom", {{"luts", 120}, {"ffs", 50}}},
                         {"a3", "custom", {{"luts", 130}, {"ffs", 50}}}});
  flow.add_region("D2", {{"b0", "custom", {{"luts", 100}, {"ffs", 50}}},
                         {"b1", "custom", {{"luts", 110}, {"ffs", 50}}},
                         {"b2", "custom", {{"luts", 120}, {"ffs", 50}}},
                         {"b3", "custom", {{"luts", 130}, {"ffs", 50}}}});
  return flow.run();
}

TEST(Arbiter, SingleClientPassesThroughInSubmissionOrder) {
  // One client's equal-priority stream must drain exactly as submitted,
  // with the same outcomes a direct manager session would produce.
  const synth::DesignBundle bundle = four_variant_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);
  RequestArbiter arbiter(manager);
  const std::vector<std::string> sequence = {"a0", "a1", "a2", "a3"};
  for (std::size_t i = 0; i < sequence.size(); ++i)
    arbiter.submit("D1", sequence[i], static_cast<TimeNs>(i), 0);
  const auto drained = arbiter.drain(0);
  ASSERT_EQ(drained.size(), sequence.size());

  BitstreamStore direct_store(50e6, 1000);
  NonePrefetch direct_policy;
  ReconfigManager direct(bundle, ManagerConfig{}, direct_store, direct_policy);
  TimeNs now = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(drained[i].request.module, sequence[i]) << i;
    const auto expected = direct.request("D1", sequence[i], now);
    EXPECT_EQ(drained[i].outcome.kind, expected.kind) << i;
    EXPECT_EQ(drained[i].outcome.ready_at, expected.ready_at) << i;
    now = expected.ready_at;
  }
}

TEST(Arbiter, TwoClientsAtEqualPriorityStayWithinOneRequestOfEachOther) {
  // Fairness: two clients (one per region) interleaving equal-priority
  // submissions must drain with bounded skew — at no prefix of the drain
  // order is either client more than one request ahead.
  const synth::DesignBundle bundle = four_variant_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);
  RequestArbiter arbiter(manager);
  const std::vector<std::string> d1 = {"a0", "a1", "a2", "a3"};
  const std::vector<std::string> d2 = {"b0", "b1", "b2", "b3"};
  for (std::size_t i = 0; i < d1.size(); ++i) {
    arbiter.submit("D1", d1[i], static_cast<TimeNs>(2 * i), 0);
    arbiter.submit("D2", d2[i], static_cast<TimeNs>(2 * i + 1), 0);
  }
  const auto drained = arbiter.drain(0);
  ASSERT_EQ(drained.size(), d1.size() + d2.size());
  int skew = 0;
  for (const auto& item : drained) {
    skew += item.request.region == "D1" ? 1 : -1;
    EXPECT_GE(skew, 0);  // FIFO: D1 submitted first each round
    EXPECT_LE(skew, 1);  // ...but never pulls a full round ahead
  }
  EXPECT_EQ(skew, 0);
  // Priority still dominates fairness: a late high-priority request from
  // one client overtakes the other client's whole backlog.
  arbiter.submit("D1", "a0", 100, 0);
  arbiter.submit("D2", "b0", 101, 0);
  arbiter.submit("D2", "b1", 102, 7);
  const auto urgent = arbiter.drain(manager.port_free_at());
  ASSERT_EQ(urgent.size(), 3u);
  EXPECT_EQ(urgent[0].request.module, "b1");
}

TEST(Arbiter, RejectsUnnamedTargets) {
  const synth::DesignBundle bundle = two_region_bundle();
  BitstreamStore store(50e6, 1000);
  NonePrefetch policy;
  ReconfigManager manager(bundle, ManagerConfig{}, store, policy);
  RequestArbiter arbiter(manager);
  EXPECT_THROW(arbiter.submit("", "m", 0), pdr::Error);
  EXPECT_THROW(arbiter.submit("D1", "", 0), pdr::Error);
}

TEST(Manager, ScrubSerializesOnPort) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const TimeNs t0 = f.manager->port_free_at();
  const TimeNs s1 = f.manager->scrub("D1", t0);
  const TimeNs s2 = f.manager->scrub("D1", t0);  // requested while busy
  EXPECT_GE(s2, s1 + (s1 - t0));                 // second waits for the first
}

TEST(Manager, ScrubKeepsInFlightStagingAndSerializesOnPort) {
  // A scrub issued mid-staging must not cancel the prefetch: the staging
  // buffer is on-chip state, independent of the fabric frames the scrub
  // rewrites. The two only contend for the port at demand time.
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const TimeNs t0 = f.manager->port_free_at();
  const auto staging_done = f.manager->announce("D1", "qam16", t0);
  ASSERT_TRUE(staging_done.has_value());
  const TimeNs scrub_done = f.manager->scrub("D1", t0);
  EXPECT_GT(scrub_done, t0);
  EXPECT_EQ(f.manager->loaded("D1"), "qpsk");
  EXPECT_EQ(f.manager->verify_resident("D1"), 0);
  // The staged entry survived: the demand is a hit (or in flight), never
  // a full miss, and still waits out the scrub's port occupancy.
  const auto out = f.manager->request("D1", "qam16", t0);
  EXPECT_NE(out.kind, RequestKind::Miss);
  EXPECT_GE(out.ready_at, scrub_done);
  EXPECT_EQ(f.manager->loaded("D1"), "qam16");
}

TEST(Manager, BlankInvalidatesStagingAndVerifyThrows) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  f.manager->announce("D1", "qam16", f.manager->port_free_at());
  const TimeNs done = f.manager->blank("D1", f.manager->port_free_at());
  EXPECT_EQ(f.manager->loaded("D1"), "");
  // Readback verification has no expected payload for a blank region.
  EXPECT_THROW(f.manager->verify_resident("D1"), pdr::Error);
  // The staged qam16 died with the blank: the next demand is a miss.
  const auto out = f.manager->request("D1", "qam16", done + 1_ms);
  EXPECT_EQ(out.kind, RequestKind::Miss);
}

TEST(Manager, StatsToStringListsCountersAndHealth) {
  ManagerFixture f;
  f.manager->request("D1", "qpsk", 0);
  const std::string text = f.manager->stats().to_string();
  for (const char* key : {"requests", "misses", "retries", "fallbacks", "crc_rejects",
                          "scrub_repairs", "health_transitions", "total_load_time"})
    EXPECT_NE(text.find(key), std::string::npos) << key;
  EXPECT_NE(text.find("health D1"), std::string::npos);
  EXPECT_NE(text.find("healthy"), std::string::npos);
  // Bit-for-bit stable for identical runs.
  ManagerFixture g;
  g.manager->request("D1", "qpsk", 0);
  EXPECT_EQ(text, g.manager->stats().to_string());
}

}  // namespace
}  // namespace pdr::rtr
