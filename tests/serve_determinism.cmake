# Black-box check of the fleet-service determinism contract: the same
# request log (with a fault campaign armed) drained serially and on 4/8
# workers must print byte-identical stdout. Invoked by the
# cli_serve_determinism ctest entry with -DPDRFLOW=<path> -DSOURCE_DIR=<repo>.
set(requests ${SOURCE_DIR}/examples/fleet.requests)
set(faults ${SOURCE_DIR}/examples/fleet.faults)
foreach(jobs 1 4 8)
  execute_process(COMMAND ${PDRFLOW} serve --requests ${requests} --faults ${faults}
                          --jobs ${jobs}
                  OUTPUT_VARIABLE out_${jobs} RESULT_VARIABLE rc_${jobs}
                  ERROR_VARIABLE err_${jobs})
  if(NOT rc_${jobs} EQUAL 0)
    message(FATAL_ERROR "serve --jobs ${jobs} failed (exit ${rc_${jobs}}):\n${err_${jobs}}")
  endif()
endforeach()
if(NOT out_1 STREQUAL out_4)
  message(FATAL_ERROR "serve --jobs 4 stdout differs from --jobs 1:\n"
                      "--- jobs 1 ---\n${out_1}\n--- jobs 4 ---\n${out_4}")
endif()
if(NOT out_1 STREQUAL out_8)
  message(FATAL_ERROR "serve --jobs 8 stdout differs from --jobs 1:\n"
                      "--- jobs 1 ---\n${out_1}\n--- jobs 8 ---\n${out_8}")
endif()
message(STATUS "serve stdout byte-identical at jobs=1, 4 and 8")
