#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "aaa/durations.hpp"
#include "aaa/macrocode.hpp"
#include "sim/event_queue.hpp"
#include "sim/executive_player.hpp"
#include "sim/timeline.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pdr::sim {
namespace {

using namespace pdr::literals;

// --- event queue -------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&](TimeNs) { order.push_back(3); });
  q.schedule(10, [&](TimeNs) { order.push_back(1); });
  q.schedule(20, [&](TimeNs) { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(7, [&order, i](TimeNs) { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// The EventQueue.SameTimestamp* family pins the documented tie-breaking
// invariant (event_queue.hpp): same-timestamp events pop in insertion
// order. The repo-wide seeded-determinism guarantee (and the scenario
// runner's serial-vs-parallel byte-identity) rests on it — do not weaken.

TEST(EventQueue, SameTimestampPopsInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  // Interleave two timestamps so the heap must order by (at, seq), not
  // just by insertion position.
  q.schedule(20, [&](TimeNs) { order.push_back(20); });
  q.schedule(10, [&](TimeNs) { order.push_back(100); });
  q.schedule(20, [&](TimeNs) { order.push_back(21); });
  q.schedule(10, [&](TimeNs) { order.push_back(101); });
  q.schedule(20, [&](TimeNs) { order.push_back(22); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{100, 101, 20, 21, 22}));
}

TEST(EventQueue, SameTimestampSelfScheduledRunsAfterAlreadyQueued) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(10, [&](TimeNs now) {
    order.push_back("first");
    // Scheduled *at the current timestamp* while executing: runs after
    // everything already queued for t=10, in scheduling order.
    q.schedule(now, [&](TimeNs) { order.push_back("spawned-a"); });
    q.schedule(now, [&](TimeNs) { order.push_back("spawned-b"); });
  });
  q.schedule(10, [&](TimeNs) { order.push_back("second"); });
  q.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"first", "second", "spawned-a", "spawned-b"}));
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueue, SameTimestampStableAcrossLabeledAndUnlabeled) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, "labeled", [&](TimeNs) { order.push_back(0); });
  q.schedule(5, [&](TimeNs) { order.push_back(1); });
  q.schedule(5, "labeled-too", [&](TimeNs) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&](TimeNs now) {
    ++fired;
    q.schedule(now + 5, [&](TimeNs) { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueue, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&](TimeNs) { ++fired; });
  q.schedule(100, [&](TimeNs) { ++fired; });
  EXPECT_EQ(q.run(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule(10, [](TimeNs) {});
  q.run();
  EXPECT_THROW(q.schedule(5, [](TimeNs) {}), pdr::Error);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  TimeNs seen = -1;
  q.schedule(10, [&](TimeNs) { q.schedule_in(7, [&](TimeNs now) { seen = now; }); });
  q.run();
  EXPECT_EQ(seen, 17);
}

// --- timeline --------------------------------------------------------------------

TEST(Timeline, BusyAndTotals) {
  Timeline t;
  t.add("F1", "a", SpanKind::Compute, 0, 10);
  t.add("F1", "b", SpanKind::Compute, 10, 30);
  t.add("D1", "r", SpanKind::Reconfig, 5, 25);
  t.add("D1", "s", SpanKind::Stall, 25, 30);
  EXPECT_EQ(t.horizon(), 30);
  EXPECT_EQ(t.busy().at("F1"), 30);
  EXPECT_EQ(t.busy().at("D1"), 20);  // stall excluded
  EXPECT_EQ(t.total(SpanKind::Reconfig), 20);
  EXPECT_EQ(t.total(SpanKind::Stall), 5);
}

TEST(Timeline, RejectsNegativeSpans) {
  Timeline t;
  EXPECT_THROW(t.add("x", "bad", SpanKind::Compute, 10, 5), pdr::Error);
}

TEST(Timeline, GanttAndCsv) {
  Timeline t;
  t.add("F1", "a", SpanKind::Compute, 0, 10);
  const std::string g = t.gantt(40);
  EXPECT_NE(g.find("F1"), std::string::npos);
  EXPECT_NE(g.find("#"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("resource,label,kind,start_ns,end_ns"), std::string::npos);
  EXPECT_NE(csv.find("F1,a,compute,0,10"), std::string::npos);
}

TEST(Timeline, EmptyGantt) {
  Timeline t;
  EXPECT_EQ(t.gantt(), "(empty timeline)\n");
}

TEST(Timeline, SvgRendersLanesAndSpans) {
  Timeline t;
  t.add("F1", "fft", SpanKind::Compute, 0, 1000);
  t.add("D1", "load qam16", SpanKind::Reconfig, 200, 800);
  t.add("SHB", "buf", SpanKind::Transfer, 100, 300);
  const std::string svg = t.to_svg(600);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  for (const char* name : {"F1", "D1", "SHB"})
    EXPECT_NE(svg.find(name), std::string::npos) << name;
  EXPECT_NE(svg.find("<title>load qam16 [reconfig]"), std::string::npos);
  // One rect per span.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 5;
  }
  EXPECT_EQ(rects, 3u);
  EXPECT_THROW(t.to_svg(10), pdr::Error);
}

// --- executive player -----------------------------------------------------------------

struct PlayerFixture {
  aaa::AlgorithmGraph algo;
  aaa::ArchitectureGraph arch;
  aaa::DurationTable durations;
  aaa::Schedule schedule;
  aaa::Executive executive;

  PlayerFixture() {
    algo.add_operation({"src", "bit_source", {}, aaa::OpClass::Sensor, {}});
    algo.add_compute("fft", "ifft", {{"n", 64}});
    algo.add_operation({"out", "interface_in_out", {}, aaa::OpClass::Actuator, {}});
    algo.add_dependency("src", "fft", 64);
    algo.add_dependency("fft", "out", 256);
    arch = aaa::make_sundance_architecture();
    durations = aaa::mccdma_durations();
    aaa::Adequation adequation(algo, arch, durations);
    adequation.pin("src", "DSP");  // force a DSP -> FPGA transfer
    schedule = adequation.run();
    executive = aaa::generate_executive(schedule, algo, arch);
  }
};

TEST(ExecutivePlayer, SingleIterationMatchesScheduleShape) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  const PlayResult r = player.run(1);
  EXPECT_EQ(r.iterations, 1);
  // One iteration of the executive replays the schedule's dependency
  // structure; its makespan matches the adequation's prediction.
  EXPECT_EQ(r.makespan, f.schedule.makespan);
}

TEST(ExecutivePlayer, ManyIterationsPipelineThroughput) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  const PlayResult r = player.run(50);
  EXPECT_EQ(r.iterations, 50);
  EXPECT_GT(r.makespan, f.schedule.makespan);
  // Steady-state period can't beat the busiest resource, nor exceed the
  // single-iteration makespan.
  EXPECT_LE(r.iteration_period, f.schedule.makespan);
  EXPECT_GT(r.iteration_period, 0);
}

TEST(ExecutivePlayer, TimelineRecordsAllKinds) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  const PlayResult r = player.run(3);
  EXPECT_GT(r.timeline.total(SpanKind::Compute), 0);
  EXPECT_GT(r.timeline.total(SpanKind::Transfer), 0);
}

TEST(EventQueue, LabeledEventsTraced) {
  EventQueue q;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  q.set_observability(&tracer, &metrics);
  int fired = 0;
  q.schedule(10, "tick", [&](TimeNs) { ++fired; });
  q.schedule_in(20, "tock", [&](TimeNs) { ++fired; });
  q.schedule(30, [&](TimeNs) { ++fired; });  // unlabeled still counts
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(tracer.count("sim_event"), 3u);
  EXPECT_DOUBLE_EQ(metrics.counter("sim.events_executed").value(), 3.0);
  // Labels become the instant-event names, in execution order.
  EXPECT_EQ(tracer.events()[0].name, "tick");
  EXPECT_EQ(tracer.events()[1].name, "tock");
  EXPECT_EQ(tracer.events()[2].name, "event");
}

TEST(Timeline, ExportToTracerKeepsKindsAndTimes) {
  Timeline tl;
  tl.add("D1", "work", SpanKind::Compute, 0, 100);
  tl.add("bus", "move", SpanKind::Transfer, 50, 80);
  obs::Tracer tracer;
  tl.export_to(tracer, "exec_");
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.total_duration(std::string("exec_") + span_kind_name(SpanKind::Compute)), 100);
  EXPECT_EQ(tracer.total_duration(std::string("exec_") + span_kind_name(SpanKind::Transfer)), 30);
  EXPECT_EQ(tracer.events()[0].track, "D1");
  EXPECT_EQ(tracer.events()[1].track, "bus");
}

TEST(ExecutivePlayer, ObservabilityExportsRunSummary) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  player.set_observability(&tracer, &metrics);
  const PlayResult r = player.run(2);
  // Every timeline span got replayed into the tracer under exec_*.
  EXPECT_EQ(tracer.size(), r.timeline.spans().size());
  EXPECT_DOUBLE_EQ(metrics.counter("sim.player.runs").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("sim.player.makespan_ns").value(),
                   static_cast<double>(r.makespan));
}

TEST(ExecutivePlayer, ReconfigInstructionsCostAndCount) {
  // Build an executive whose region program contains a Reconfig.
  aaa::AlgorithmGraph algo;
  algo.add_operation({"src", "bit_source", {}, aaa::OpClass::Sensor, {}});
  algo.add_conditioned("mod", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  algo.add_dependency("src", "mod", 16);
  aaa::ArchitectureGraph arch = aaa::make_sundance_architecture();
  const aaa::DurationTable durations = aaa::mccdma_durations();
  aaa::Adequation adequation(algo, arch, durations);
  adequation.pin("mod", "D1");
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  const aaa::Schedule schedule = adequation.run();
  const aaa::Executive executive = aaa::generate_executive(schedule, algo, arch);

  ExecutivePlayer player(executive, arch);
  player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  const PlayResult r = player.run(2);
  EXPECT_EQ(r.reconfigs, 2);  // one per loop iteration
  EXPECT_EQ(r.timeline.total(SpanKind::Reconfig), 200_us);
}

/// Fixture with a Reconfig-bearing executive for variant-selection tests.
struct ConditionedFixture {
  aaa::AlgorithmGraph algo;
  aaa::ArchitectureGraph arch;
  aaa::Executive executive;

  ConditionedFixture() {
    algo.add_operation({"src", "bit_source", {}, aaa::OpClass::Sensor, {}});
    algo.add_conditioned("mod", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
    algo.add_dependency("src", "mod", 16);
    arch = aaa::make_sundance_architecture();
    const aaa::DurationTable durations = aaa::mccdma_durations();
    aaa::Adequation adequation(algo, arch, durations);
    adequation.pin("mod", "D1");
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
    const aaa::Schedule schedule = adequation.run();
    executive = aaa::generate_executive(schedule, algo, arch);
  }
};

TEST(ExecutivePlayer, ConstantSelectionPaysOneReconfig) {
  const ConditionedFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  player.set_variant_selector(
      [](int, const std::string&, const std::string&) { return std::string("qpsk"); });
  const PlayResult r = player.run(10);
  EXPECT_EQ(r.reconfigs, 1);          // first iteration loads qpsk
  EXPECT_EQ(r.reconfigs_skipped, 9);  // sticky thereafter
}

TEST(ExecutivePlayer, AlternatingSelectionPaysEveryIteration) {
  const ConditionedFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  player.set_variant_selector([](int iteration, const std::string&, const std::string&) {
    return iteration % 2 == 0 ? std::string("qpsk") : std::string("qam16");
  });
  const PlayResult r = player.run(10);
  EXPECT_EQ(r.reconfigs, 10);
  EXPECT_EQ(r.reconfigs_skipped, 0);
  EXPECT_EQ(r.timeline.total(SpanKind::Reconfig), 10 * 100_us);
}

TEST(ExecutivePlayer, SurvivesFailedReconfigs) {
  const ConditionedFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  int calls = 0;
  player.set_reconfig_cost([&calls](const std::string&, const std::string&) -> TimeNs {
    if (++calls == 1) raise("test", "injected load failure");
    return 100_us;
  });
  player.set_variant_selector([](int iteration, const std::string&, const std::string&) {
    return iteration % 2 == 0 ? std::string("qpsk") : std::string("qam16");
  });
  player.set_survive_reconfig_failures(true);
  const PlayResult r = player.run(4);
  // Iteration 0's load fails and is absorbed; the region stays empty, so the
  // three remaining iterations each pay a real reconfiguration.
  EXPECT_EQ(r.reconfigs_failed, 1);
  EXPECT_EQ(r.reconfigs, 3);
  EXPECT_EQ(r.reconfigs_skipped, 0);
  EXPECT_EQ(r.timeline.total(SpanKind::Reconfig), 3 * 100_us);
}

TEST(ExecutivePlayer, FailedReconfigThrowsByDefault) {
  const ConditionedFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  player.set_reconfig_cost([](const std::string&, const std::string&) -> TimeNs {
    raise("test", "injected load failure");
  });
  EXPECT_THROW(player.run(1), pdr::Error);
}

TEST(ExecutivePlayer, StickySelectionBeatsStaticReplay) {
  // Static replay reloads the scheduled module every iteration; sticky
  // runtime selection amortizes it — the run is strictly shorter.
  const ConditionedFixture f;
  ExecutivePlayer static_player(f.executive, f.arch);
  static_player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  const PlayResult static_run = static_player.run(10);

  ExecutivePlayer sticky_player(f.executive, f.arch);
  sticky_player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  sticky_player.set_variant_selector(
      [](int, const std::string&, const std::string& scheduled) { return scheduled; });
  const PlayResult sticky_run = sticky_player.run(10);

  EXPECT_EQ(static_run.reconfigs, 10);
  EXPECT_EQ(sticky_run.reconfigs, 1);
  EXPECT_LT(sticky_run.makespan, static_run.makespan);
}

TEST(ExecutivePlayer, PeriodRespectsScheduleLowerBound) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  const PlayResult r = player.run(60);
  EXPECT_GE(r.iteration_period, f.schedule.period_lower_bound());
  EXPECT_LE(r.iteration_period, f.schedule.makespan);
}

TEST(ExecutivePlayer, DeadlockDetected) {
  // A hand-built executive where the operator waits for a buffer nobody
  // sends.
  aaa::Executive executive;
  aaa::MacroProgram p;
  p.resource = "F1";
  aaa::MacroInstr recv;
  recv.op = aaa::MacroOp::Recv;
  recv.what = "ghost_buffer";
  p.body.push_back(recv);
  executive.programs.push_back(p);

  const aaa::ArchitectureGraph arch = aaa::make_sundance_architecture();
  ExecutivePlayer player(executive, arch);
  try {
    player.run(1);
    FAIL() << "expected deadlock";
  } catch (const pdr::Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ghost_buffer"), std::string::npos);
  }
}

TEST(ExecutivePlayer, RejectsNonPositiveIterations) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  EXPECT_THROW(player.run(0), pdr::Error);
}

class PlayerIterationsTest : public ::testing::TestWithParam<int> {};

TEST_P(PlayerIterationsTest, MakespanMonotoneInIterations) {
  const PlayerFixture f;
  ExecutivePlayer player(f.executive, f.arch);
  const PlayResult a = player.run(GetParam());
  const PlayResult b = player.run(GetParam() + 1);
  EXPECT_LT(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(Iterations, PlayerIterationsTest, ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace pdr::sim
