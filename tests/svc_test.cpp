#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_spec.hpp"
#include "rtr/manager.hpp"
#include "rtr/prefetch.hpp"
#include "svc/breaker.hpp"
#include "svc/fleet_cache.hpp"
#include "svc/request_log.hpp"
#include "svc/service.hpp"
#include "svc/service_rules.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pdr::svc {
namespace {

using namespace pdr::literals;

synth::DesignBundle test_bundle() {
  synth::ModularDesignFlow flow(fabric::xc2v2000());
  flow.add_static("ifft", "ifft", {{"n", 64}});
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  return flow.run();
}

// --- circuit breaker -------------------------------------------------------------

TEST(Breaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker({.failure_threshold = 3, .cooldown_ticks = 2, .probe_budget = 1});
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.record_failure();
  breaker.record_failure();
  // A success resets the consecutive count.
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 1);
  EXPECT_FALSE(breaker.would_allow());
  EXPECT_FALSE(breaker.allow_request());
}

TEST(Breaker, CooldownProbeAndRecovery) {
  CircuitBreaker breaker({.failure_threshold = 1, .cooldown_ticks = 2, .probe_budget = 1});
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  breaker.tick();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  breaker.tick();
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  // One probe slot: the first admission consumes it, the second is refused
  // without consuming anything.
  EXPECT_TRUE(breaker.would_allow());
  EXPECT_TRUE(breaker.allow_request());
  EXPECT_FALSE(breaker.would_allow());
  EXPECT_FALSE(breaker.allow_request());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  ASSERT_EQ(breaker.transitions().size(), 3u);
  EXPECT_NE(breaker.transitions()[0].find("closed->open"), std::string::npos);
  EXPECT_NE(breaker.transitions()[1].find("open->half_open"), std::string::npos);
  EXPECT_NE(breaker.transitions()[2].find("half_open->closed"), std::string::npos);
}

TEST(Breaker, FailedProbeReopens) {
  CircuitBreaker breaker({.failure_threshold = 1, .cooldown_ticks = 1, .probe_budget = 1});
  breaker.record_failure();
  breaker.tick();
  ASSERT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_TRUE(breaker.allow_request());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 2);
}

// --- fleet cache -----------------------------------------------------------------

TEST(FleetCacheTest, SingleFlightUnderThreads) {
  FleetCache cache(0);
  std::atomic<int> fetches{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> results(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache, &fetches, &results, t] {
      results[t] = cache.get_or_fetch("qam16", static_cast<std::uint64_t>(t), [&fetches] {
        ++fetches;
        return std::vector<std::uint8_t>{1, 2, 3, 4};
      });
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(fetches.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.resident_modules, 1u);
  EXPECT_EQ(stats.resident_bytes, 4u);
}

TEST(FleetCacheTest, SweepEvictsLowestStampFirst) {
  FleetCache cache(5);  // fits one 4-byte module, not two
  const auto fetch4 = [] { return std::vector<std::uint8_t>(4, 0xAB); };
  (void)cache.get_or_fetch("older", 1, fetch4);
  (void)cache.get_or_fetch("newer", 2, fetch4);
  const auto evicted = cache.sweep();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "older");
  EXPECT_FALSE(cache.resident("older"));
  EXPECT_TRUE(cache.resident("newer"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(FleetCacheTest, StampTakesMaxOverCallers) {
  FleetCache cache(5);
  const auto fetch4 = [] { return std::vector<std::uint8_t>(4, 0xAB); };
  (void)cache.get_or_fetch("a", 1, fetch4);
  (void)cache.get_or_fetch("b", 2, fetch4);
  (void)cache.get_or_fetch("a", 9, fetch4);  // refresh a's stamp past b's
  const auto evicted = cache.sweep();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "b");
}

TEST(FleetCacheTest, InvalidateDropsEntryAndNextFetchRetries) {
  FleetCache cache(0);
  int fetches = 0;
  const auto fetch = [&fetches] {
    ++fetches;
    return std::vector<std::uint8_t>{7};
  };
  (void)cache.get_or_fetch("m", 1, fetch);
  cache.invalidate("m");
  EXPECT_FALSE(cache.resident("m"));
  (void)cache.get_or_fetch("m", 2, fetch);
  EXPECT_EQ(fetches, 2);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(FleetCacheTest, ThrowingFetchDoesNotPoisonTheKey) {
  FleetCache cache(0);
  EXPECT_THROW((void)cache.get_or_fetch(
                   "m", 1, []() -> std::vector<std::uint8_t> { pdr::raise("test", "boom"); }),
               pdr::Error);
  const auto got = cache.get_or_fetch("m", 2, [] { return std::vector<std::uint8_t>{5}; });
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size(), 1u);
}

// --- request log DSL -------------------------------------------------------------

TEST(RequestLogTest, ParsesFieldsInAnyOrder) {
  const RequestLog log = parse_request_log(
      "# stream\n"
      "fleet devices 4\n"
      "request module qam16 at_us 250 region D1 class maintenance device any\n"
      "request at_us 100 device 2 region D1 module qpsk class demand priority 5 deadline_us 800\n");
  EXPECT_EQ(log.devices, 4);
  ASSERT_EQ(log.requests.size(), 2u);
  // Sorted by arrival, not file order.
  EXPECT_EQ(log.requests[0].at, 100_us);
  EXPECT_EQ(log.requests[0].device, 2);
  EXPECT_EQ(log.requests[0].module, "qpsk");
  EXPECT_EQ(log.requests[0].klass, RequestClass::Demand);
  EXPECT_EQ(log.requests[0].priority, 5);
  EXPECT_EQ(log.requests[0].deadline, 800_us);
  EXPECT_EQ(log.requests[1].at, 250_us);
  EXPECT_EQ(log.requests[1].device, kAnyDevice);
  EXPECT_EQ(log.requests[1].klass, RequestClass::Maintenance);
  EXPECT_EQ(log.requests[1].deadline, 0);
}

TEST(RequestLogTest, RejectsBadInput) {
  EXPECT_THROW(parse_request_log("request at_us 1 region D1 module m\n"), pdr::Error);  // no fleet
  EXPECT_THROW(parse_request_log("fleet devices 0\n"), pdr::Error);
  EXPECT_THROW(parse_request_log("fleet devices 2\nrequest region D1 module m\n"), pdr::Error);
  EXPECT_THROW(parse_request_log("fleet devices 2\nrequest at_us 1 module m\n"), pdr::Error);
  EXPECT_THROW(parse_request_log("fleet devices 2\nrequest at_us 1 region D1\n"), pdr::Error);
  EXPECT_THROW(
      parse_request_log("fleet devices 2\nrequest at_us 1 region D1 module m class bogus\n"),
      pdr::Error);
  EXPECT_THROW(
      parse_request_log("fleet devices 2\nrequest at_us 1 region D1 module m deadline_us 0\n"),
      pdr::Error);
  try {
    parse_request_log("fleet devices 2\nfrobnicate\n");
    FAIL() << "expected pdr::Error";
  } catch (const pdr::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(RequestLogTest, WriteParseRoundTrip) {
  RequestLog log;
  log.devices = 3;
  log.requests.push_back({100_us, 1, "D1", "qpsk", RequestClass::Demand, 4, 9_ms});
  log.requests.push_back({250_us, kAnyDevice, "D1", "qam16", RequestClass::Maintenance, 0, 0});
  const std::string text = write_request_log(log);
  const RequestLog back = parse_request_log(text);
  EXPECT_EQ(back.devices, log.devices);
  ASSERT_EQ(back.requests.size(), log.requests.size());
  for (std::size_t i = 0; i < log.requests.size(); ++i) {
    EXPECT_EQ(back.requests[i].at, log.requests[i].at) << i;
    EXPECT_EQ(back.requests[i].device, log.requests[i].device) << i;
    EXPECT_EQ(back.requests[i].region, log.requests[i].region) << i;
    EXPECT_EQ(back.requests[i].module, log.requests[i].module) << i;
    EXPECT_EQ(back.requests[i].klass, log.requests[i].klass) << i;
    EXPECT_EQ(back.requests[i].priority, log.requests[i].priority) << i;
    EXPECT_EQ(back.requests[i].deadline, log.requests[i].deadline) << i;
  }
}

TEST(RequestLogTest, SniffsLogsByLeadingDirective) {
  EXPECT_TRUE(looks_like_request_log("# comment\nfleet devices 2\n"));
  EXPECT_FALSE(looks_like_request_log("region D1 {\n}\n"));
  EXPECT_FALSE(looks_like_request_log(""));
}

TEST(RequestLogTest, GeneratorIsDeterministicAndRoundTrips) {
  TrafficOptions options;
  options.devices = 5;
  options.requests = 40;
  options.seed = 42;
  options.deadline = 20_ms;
  const std::vector<std::pair<std::string, std::vector<std::string>>> catalog = {
      {"D1", {"qpsk", "qam16"}}};
  const RequestLog a = generate_request_log(options, catalog);
  const RequestLog b = generate_request_log(options, catalog);
  EXPECT_EQ(write_request_log(a), write_request_log(b));
  options.seed = 43;
  const RequestLog c = generate_request_log(options, catalog);
  EXPECT_NE(write_request_log(a), write_request_log(c));
  ASSERT_EQ(a.requests.size(), 40u);
  const RequestLog back = parse_request_log(write_request_log(a));
  EXPECT_EQ(back.requests.size(), a.requests.size());
  for (std::size_t i = 1; i < a.requests.size(); ++i)
    EXPECT_LE(a.requests[i - 1].at, a.requests[i].at);
}

// --- fleet service ---------------------------------------------------------------

TEST(FleetServiceTest, CleanDrainCompletesEverything) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  FleetService service(bundle, config);
  const RequestLog log = parse_request_log(
      "fleet devices 2\n"
      "request at_us 0    device 0 region D1 module qam16 class demand priority 1\n"
      "request at_us 0    device 1 region D1 module qam16 class demand priority 1\n"
      "request at_us 9000 device 0 region D1 module qam16 class demand\n"
      "request at_us 9000 device 1 region D1 module qpsk  class maintenance\n");
  const ServiceReport report = service.run(log);
  EXPECT_EQ(report.completed, 4);
  EXPECT_EQ(report.degraded + report.failed + report.timed_out + report.rejected_queue_full +
                report.rejected_breaker_open + report.shed,
            0);
  EXPECT_EQ(report.admitted, 4);
  // The shared cache fetched qam16 exactly once for the whole fleet.
  EXPECT_EQ(report.cache.fetches, 1u);
  EXPECT_EQ(report.cache_planned_fetches, 1);
  EXPECT_EQ(report.cache_planned_hits, 2);  // every later qam16 demand rides the cache tier
  ASSERT_EQ(report.device_summaries.size(), 2u);
  for (const auto& dev : report.device_summaries) {
    EXPECT_EQ(dev.breaker, BreakerState::Closed);
    EXPECT_EQ(dev.breaker_opens, 0);
  }
}

TEST(FleetServiceTest, WarmupBurstFetchesOncePerModule) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  config.jobs = 4;
  FleetService service(bundle, config);
  const RequestLog log = parse_request_log(
      "fleet devices 4\n"
      "request at_us 0 device 0 region D1 module qam16 class demand\n"
      "request at_us 0 device 1 region D1 module qam16 class demand\n"
      "request at_us 0 device 2 region D1 module qam16 class demand\n"
      "request at_us 0 device 3 region D1 module qam16 class demand\n");
  const ServiceReport report = service.run(log);
  EXPECT_EQ(report.completed, 4);
  EXPECT_EQ(report.cache.fetches, 1u);
  EXPECT_EQ(report.cache.served, 3u);
  EXPECT_EQ(report.cache_planned_fetches, 1);
  EXPECT_EQ(report.cache_planned_hits, 3);
}

TEST(FleetServiceTest, BackpressureShedsMaintenanceThenRejects) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  config.queue_capacity = 1;
  // Starve the store so the first cold load pins the port for many ticks
  // and the queue genuinely backs up.
  config.store_bandwidth_bytes_per_s = 1e6;
  FleetService service(bundle, config);
  // All in one admission tick: maintenance enqueues, the first demand
  // sheds it, the second finds the queue full of demand and is rejected.
  // Two more demands arrive while the port is still busy with the cold
  // load: one occupies the queue slot, the next is rejected.
  const RequestLog log = parse_request_log(
      "fleet devices 1\n"
      "request at_us 100  device 0 region D1 module qpsk  class maintenance\n"
      "request at_us 200  device 0 region D1 module qam16 class demand priority 2\n"
      "request at_us 300  device 0 region D1 module qam16 class demand priority 2\n"
      "request at_us 1500 device 0 region D1 module qam16 class demand priority 1\n"
      "request at_us 2500 device 0 region D1 module qam16 class demand priority 1\n");
  const ServiceReport report = service.run(log);
  EXPECT_EQ(report.shed, 1);
  EXPECT_EQ(report.rejected_queue_full, 2);
  EXPECT_EQ(report.completed, 2);
  // The maintenance reached the queue before being shed: it counts as
  // admitted alongside the two demands that executed.
  EXPECT_EQ(report.admitted, 3);
  EXPECT_EQ(report.failed + report.degraded + report.timed_out, 0);
  // The shed maintenance and rejected demands never reached a shard.
  for (const auto& rec : report.records) {
    if (rec.disposition == Disposition::Shed ||
        rec.disposition == Disposition::RejectedQueueFull) {
      EXPECT_EQ(rec.device, -1);
    }
  }
}

TEST(FleetServiceTest, DeadlineMissesClassifyAsTimedOut) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  FleetService service(bundle, config);
  // A cold qam16 load takes milliseconds; a 50 us deadline cannot hold.
  const RequestLog log = parse_request_log(
      "fleet devices 1\n"
      "request at_us 0 device 0 region D1 module qam16 class demand deadline_us 50\n");
  const ServiceReport report = service.run(log);
  EXPECT_EQ(report.timed_out, 1);
  EXPECT_EQ(report.completed, 0);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_GT(report.records[0].stall, 50_us);
  // Served late, not dropped: the module did land.
  EXPECT_EQ(report.device_summaries[0].resident.at("D1"), "qam16");
}

// S3 satellite: the deadline comparison is strictly '>' — a load whose
// stall lands exactly on the deadline tick is Completed; one nanosecond
// less of budget flips it to TimedOut. Logs are built as structs (not
// the _us DSL) so the probe-measured stall carries over to the deadline
// without microsecond rounding.
TEST(FleetServiceTest, DeadlineTieBreakExactTieCompletes) {
  const auto bundle = test_bundle();
  const auto run_with_deadline = [&](TimeNs deadline) {
    RequestLog log;
    log.devices = 1;
    ServiceRequest req;
    req.at = 0;
    req.device = 0;
    req.region = "D1";
    req.module = "qam16";
    req.klass = RequestClass::Demand;
    req.deadline = deadline;
    log.requests.push_back(req);
    FleetService service(bundle, ServiceConfig{});
    return service.run(log);
  };
  // Probe: measure the exact cold-load stall with no deadline armed.
  const ServiceReport probe = run_with_deadline(0);
  ASSERT_EQ(probe.records.size(), 1u);
  const TimeNs stall = probe.records[0].stall;
  ASSERT_GT(stall, 0);

  // deadline == stall: the exact tie is Completed, with exact counts.
  const ServiceReport tie = run_with_deadline(stall);
  EXPECT_EQ(tie.completed, 1);
  EXPECT_EQ(tie.timed_out, 0);
  ASSERT_EQ(tie.records.size(), 1u);
  EXPECT_EQ(tie.records[0].disposition, Disposition::Completed);
  EXPECT_EQ(tie.records[0].stall, stall);

  // One nanosecond tighter and the same load misses.
  const ServiceReport miss = run_with_deadline(stall - 1);
  EXPECT_EQ(miss.completed, 0);
  EXPECT_EQ(miss.timed_out, 1);
  ASSERT_EQ(miss.records.size(), 1u);
  EXPECT_EQ(miss.records[0].disposition, Disposition::TimedOut);
}

TEST(FleetServiceTest, DeadlineTieBreakAppliesToMaintenanceScrub) {
  // The maintenance path has its own disposition site; pin the same
  // strict-'>' tie-break there.
  const auto bundle = test_bundle();
  const auto run_with_deadline = [&](TimeNs deadline) {
    RequestLog log;
    log.devices = 1;
    ServiceRequest load;
    load.at = 0;
    load.device = 0;
    load.region = "D1";
    load.module = "qpsk";
    log.requests.push_back(load);
    ServiceRequest scrub;
    scrub.at = 50'000'000;  // well after the demand load settles
    scrub.device = 0;
    scrub.region = "D1";
    scrub.module = "qpsk";
    scrub.klass = RequestClass::Maintenance;
    scrub.deadline = deadline;
    log.requests.push_back(scrub);
    FleetService service(bundle, ServiceConfig{});
    return service.run(log);
  };
  const ServiceReport probe = run_with_deadline(0);
  ASSERT_EQ(probe.records.size(), 2u);
  const TimeNs stall = probe.records[1].stall;
  ASSERT_GT(stall, 0);
  const ServiceReport tie = run_with_deadline(stall);
  EXPECT_EQ(tie.records[1].disposition, Disposition::Completed);
  EXPECT_EQ(tie.timed_out, 0);
  const ServiceReport miss = run_with_deadline(stall - 1);
  EXPECT_EQ(miss.records[1].disposition, Disposition::TimedOut);
  EXPECT_EQ(miss.timed_out, 1);
}

TEST(FleetServiceTest, DeadlineTieBreakIsByteIdenticalAcrossJobs) {
  // Exact-tie deadlines are the sharpest determinism probe: any
  // jobs-dependent reordering that shifts ready_at by one tick flips a
  // disposition and changes the report text.
  const auto bundle = test_bundle();
  constexpr int kDevices = 4;
  const auto make_log = [&](TimeNs deadline) {
    RequestLog log;
    log.devices = kDevices;
    for (int d = 0; d < kDevices; ++d) {
      ServiceRequest req;
      req.at = 0;
      req.device = d;
      req.region = "D1";
      req.module = "qam16";
      req.klass = RequestClass::Demand;
      req.deadline = deadline;
      log.requests.push_back(req);
    }
    return log;
  };
  FleetService probe_service(bundle, ServiceConfig{});
  const ServiceReport probe = probe_service.run(make_log(0));
  ASSERT_EQ(probe.records.size(), static_cast<std::size_t>(kDevices));
  const TimeNs stall = probe.records[0].stall;
  ASSERT_GT(stall, 0);
  const auto run_with_jobs = [&](int jobs) {
    ServiceConfig config;
    config.jobs = jobs;
    FleetService service(bundle, config);
    return service.run(make_log(stall)).to_string();
  };
  const std::string serial = run_with_jobs(1);
  EXPECT_NE(serial.find("completed"), std::string::npos);
  EXPECT_EQ(run_with_jobs(4), serial);
  EXPECT_EQ(run_with_jobs(8), serial);
}

// One device, a store-damage window on qam16 and exact arrival spacing
// walk the breaker through its whole lifecycle with exact disposition
// counts:
//   t=1ms   demand qam16: fetch CRC-fails, retry, fall back -> Degraded (failure 1)
//   t=20ms  demand qam16: same -> Degraded (failure 2) => breaker opens
//   t=40ms  demand qam16 while Open: degraded route via qpsk (no breaker feed)
//   t=41ms  maintenance while Open: Shed
//   t=45ms  store repaired
//   t=60ms  demand qam16: half-open probe succeeds -> Completed => breaker closes
//   t=80ms  demand qam16 (resident): Completed
TEST(FleetServiceTest, BreakerLifecycleWithExactCounts) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown_ticks = 30;
  config.breaker.probe_budget = 1;
  config.manager.recovery.enabled = true;
  config.manager.recovery.max_retries = 1;
  config.manager.recovery.retry_backoff = 100_us;
  config.manager.recovery.backoff_factor = 1.0;
  FleetService service(bundle, config);
  service.arm_faults(fault::parse_fault_spec(
      "seed 5\n"
      "horizon_ms 100\n"
      "store damage qam16 at_ms 0\n"
      "store repair qam16 at_ms 45\n"));
  const RequestLog log = parse_request_log(
      "fleet devices 1\n"
      "request at_us 1000  device 0 region D1 module qam16 class demand\n"
      "request at_us 20000 device 0 region D1 module qam16 class demand\n"
      "request at_us 40000 device 0 region D1 module qam16 class demand\n"
      "request at_us 41000 device 0 region D1 module qpsk  class maintenance\n"
      "request at_us 60000 device 0 region D1 module qam16 class demand\n"
      "request at_us 80000 device 0 region D1 module qam16 class demand\n");
  const ServiceReport report = service.run(log);

  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.degraded, 3);
  EXPECT_EQ(report.shed, 1);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.timed_out, 0);
  EXPECT_EQ(report.rejected_queue_full, 0);
  EXPECT_EQ(report.rejected_breaker_open, 0);
  EXPECT_EQ(report.store_damages, 1);
  EXPECT_EQ(report.store_repairs, 1);

  ASSERT_EQ(report.device_summaries.size(), 1u);
  const DeviceSummary& dev = report.device_summaries[0];
  EXPECT_EQ(dev.breaker, BreakerState::Closed);
  EXPECT_EQ(dev.breaker_opens, 1);
  ASSERT_EQ(dev.breaker_transitions.size(), 3u);
  EXPECT_NE(dev.breaker_transitions[0].find("closed->open"), std::string::npos);
  EXPECT_NE(dev.breaker_transitions[1].find("open->half_open"), std::string::npos);
  EXPECT_NE(dev.breaker_transitions[2].find("half_open->closed"), std::string::npos);
  // Two failed demands, one retry each, then the safe-module fallback.
  EXPECT_EQ(dev.stats.retries, 2);
  EXPECT_EQ(dev.stats.fallbacks, 2);
  // qam16 finally landed after the repair.
  EXPECT_EQ(dev.resident.at("D1"), "qam16");

  // The degraded-route serving at t=40ms never fed the breaker (else the
  // success would have reset the failure count before the open).
  ASSERT_EQ(report.records.size(), 6u);
  EXPECT_EQ(report.records[0].disposition, Disposition::Degraded);
  EXPECT_EQ(report.records[1].disposition, Disposition::Degraded);
  EXPECT_EQ(report.records[2].disposition, Disposition::Degraded);
  EXPECT_EQ(report.records[3].disposition, Disposition::Shed);
  EXPECT_EQ(report.records[4].disposition, Disposition::Completed);
  EXPECT_EQ(report.records[5].disposition, Disposition::Completed);
}

// Same scenario in strict mode (--no-degraded): the open-breaker demand
// is rejected instead of served degraded.
TEST(FleetServiceTest, StrictModeRejectsInsteadOfDegrading) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  config.degraded_routes = false;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown_ticks = 30;
  config.manager.recovery.enabled = true;
  config.manager.recovery.max_retries = 1;
  config.manager.recovery.retry_backoff = 100_us;
  config.manager.recovery.backoff_factor = 1.0;
  FleetService service(bundle, config);
  service.arm_faults(fault::parse_fault_spec(
      "seed 5\n"
      "horizon_ms 100\n"
      "store damage qam16 at_ms 0\n"));
  const RequestLog log = parse_request_log(
      "fleet devices 1\n"
      "request at_us 1000  device 0 region D1 module qam16 class demand\n"
      "request at_us 20000 device 0 region D1 module qam16 class demand\n"
      "request at_us 40000 device 0 region D1 module qam16 class demand\n");
  const ServiceReport report = service.run(log);
  EXPECT_EQ(report.degraded, 2);
  EXPECT_EQ(report.rejected_breaker_open, 1);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records[2].disposition, Disposition::RejectedBreakerOpen);
  EXPECT_EQ(report.records[2].device, -1);
}

TEST(FleetServiceTest, AnyDeviceRoutesAroundOpenBreaker) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  config.breaker.failure_threshold = 1;
  config.breaker.cooldown_ticks = 1000;  // stay open for the whole run
  config.manager.recovery.enabled = true;
  config.manager.recovery.max_retries = 0;
  FleetService service(bundle, config);
  service.arm_faults(fault::parse_fault_spec(
      "seed 5\n"
      "horizon_ms 100\n"
      "store damage qam16 at_ms 0\n"));
  // Device 0 trips its breaker on the damaged module; the later routed
  // request must land on device 1 even though device 0's queue is
  // shorter-or-equal (reroute flagged).
  const RequestLog log = parse_request_log(
      "fleet devices 2\n"
      "request at_us 1000  device 0   region D1 module qam16 class demand\n"
      "request at_us 30000 device any region D1 module qpsk  class demand\n");
  const ServiceReport report = service.run(log);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].disposition, Disposition::Degraded);
  EXPECT_EQ(report.records[1].disposition, Disposition::Completed);
  EXPECT_EQ(report.records[1].device, 1);
  EXPECT_TRUE(report.records[1].rerouted);
  EXPECT_EQ(report.rerouted, 1);
  EXPECT_EQ(report.device_summaries[0].breaker, BreakerState::Open);
  EXPECT_EQ(report.device_summaries[1].breaker, BreakerState::Closed);
}

TEST(FleetServiceTest, ReportIsByteIdenticalAcrossJobs) {
  const auto bundle = test_bundle();
  TrafficOptions options;
  options.devices = 6;
  options.requests = 60;
  options.seed = 42;
  options.horizon = 80_ms;
  options.deadline = 25_ms;
  const RequestLog log =
      generate_request_log(options, {{"D1", {"qpsk", "qam16"}}});
  const fault::FaultSpec spec = fault::parse_fault_spec(
      "seed 9\n"
      "horizon_ms 120\n"
      "seu D1 rate 300\n"
      "store damage qam16 at_ms 10\n"
      "store repair qam16 at_ms 30\n");
  const auto run_with_jobs = [&](int jobs) {
    ServiceConfig config;
    config.jobs = jobs;
    config.manager.recovery.enabled = true;
    config.manager.recovery.jitter_frac = 0.25;
    FleetService service(bundle, config);
    service.arm_faults(spec);
    return service.run(log).to_string();
  };
  const std::string serial = run_with_jobs(1);
  EXPECT_EQ(run_with_jobs(4), serial);
  EXPECT_EQ(run_with_jobs(8), serial);
}

TEST(FleetServiceTest, ObservabilityMergesUnderDevicePrefixes) {
  const auto bundle = test_bundle();
  ServiceConfig config;
  config.jobs = 2;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  FleetService service(bundle, config);
  service.set_observability(&tracer, &metrics);
  const RequestLog log = parse_request_log(
      "fleet devices 2\n"
      "request at_us 0 device 0 region D1 module qam16 class demand\n"
      "request at_us 0 device 1 region D1 module qam16 class demand\n");
  const ServiceReport report = service.run(log);
  EXPECT_EQ(report.completed, 2);
  const std::string trace = tracer.to_chrome_json();
  EXPECT_NE(trace.find("dev0/"), std::string::npos);
  EXPECT_NE(trace.find("dev1/"), std::string::npos);
  const std::string exported = metrics.to_json();
  EXPECT_NE(exported.find("svc.completed"), std::string::npos);
  EXPECT_NE(exported.find("svc.cache.fetches"), std::string::npos);
}

TEST(FleetServiceTest, RunsOnceAndValidatesSpecNames) {
  const auto bundle = test_bundle();
  FleetService service(bundle, ServiceConfig{});
  EXPECT_THROW(service.arm_faults(fault::parse_fault_spec("seu D9 rate 10\n")), pdr::Error);
  EXPECT_THROW(service.arm_faults(fault::parse_fault_spec("store damage bogus at_ms 1\n")),
               pdr::Error);
  const RequestLog log = parse_request_log(
      "fleet devices 1\n"
      "request at_us 0 device 0 region D1 module qpsk class demand\n");
  (void)service.run(log);
  EXPECT_THROW((void)service.run(log), pdr::Error);
}

// --- PDR12x lint family ----------------------------------------------------------

class ServiceRulesTest : public ::testing::Test {
 protected:
  ServiceRulesTest()
      : bundle_(test_bundle()),
        store_(16.7e6, 10_us),
        manager_(bundle_, rtr::ManagerConfig{}, store_, policy_) {}

  lint::Report check(const std::string& text) {
    return check_request_log_text(text, bundle_, manager_);
  }

  synth::DesignBundle bundle_;
  rtr::BitstreamStore store_;
  rtr::NonePrefetch policy_;
  rtr::ReconfigManager manager_;
};

TEST_F(ServiceRulesTest, CleanLogPasses) {
  const auto report = check(
      "fleet devices 2\n"
      "request at_us 0 device 1 region D1 module qpsk class demand priority 2 deadline_us 50000\n"
      "request at_us 5 device any region D1 module qam16 class maintenance\n");
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST_F(ServiceRulesTest, FlagsUnknownRegion) {
  const auto report = check(
      "fleet devices 1\n"
      "request at_us 0 region D9 module qpsk\n");
  EXPECT_TRUE(report.has(lint::Rule::UnknownServiceRegion)) << report.to_text();
  EXPECT_EQ(report.errors(), 1u);
}

TEST_F(ServiceRulesTest, FlagsUnknownModule) {
  const auto report = check(
      "fleet devices 1\n"
      "request at_us 0 region D1 module qam64\n");
  EXPECT_TRUE(report.has(lint::Rule::UnknownServiceModule)) << report.to_text();
  EXPECT_EQ(report.errors(), 1u);
}

TEST_F(ServiceRulesTest, WarnsOnImpossibleDeadline) {
  // Below even the staged (best-case) load latency.
  const auto report = check(
      "fleet devices 1\n"
      "request at_us 0 region D1 module qam16 deadline_us 1\n");
  EXPECT_TRUE(report.has(lint::Rule::ServiceDeadlineTooTight)) << report.to_text();
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 1u);
}

TEST_F(ServiceRulesTest, WarnsOnPriorityInversion) {
  const auto report = check(
      "fleet devices 1\n"
      "request at_us 0  region D1 module qpsk  class demand priority 1\n"
      "request at_us 10 region D1 module qam16 class maintenance priority 5\n");
  EXPECT_TRUE(report.has(lint::Rule::ServicePriorityInversion)) << report.to_text();
  EXPECT_EQ(report.warnings(), 1u);
}

TEST_F(ServiceRulesTest, FlagsDeviceOutOfRange) {
  const auto report = check(
      "fleet devices 2\n"
      "request at_us 0 device 5 region D1 module qpsk\n");
  EXPECT_TRUE(report.has(lint::Rule::ServiceDeviceOutOfRange)) << report.to_text();
}

TEST_F(ServiceRulesTest, ParseFailureBecomesPdr000) {
  const auto report = check("fleet devices 1\nfrobnicate\n");
  EXPECT_TRUE(report.has(lint::Rule::ParseError));
  EXPECT_EQ(report.errors(), 1u);
}

}  // namespace
}  // namespace pdr::svc
