# Black-box check of the ScenarioRunner determinism contract: the same
# sweep run serially and on 4 workers must print byte-identical stdout.
# Invoked by the cli_sweep_determinism ctest entry with -DPDRFLOW=<path>.
execute_process(COMMAND ${PDRFLOW} sweep --symbols 512 --jobs 1
                OUTPUT_VARIABLE serial_out RESULT_VARIABLE serial_rc
                ERROR_VARIABLE serial_err)
execute_process(COMMAND ${PDRFLOW} sweep --symbols 512 --jobs 4
                OUTPUT_VARIABLE parallel_out RESULT_VARIABLE parallel_rc
                ERROR_VARIABLE parallel_err)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial sweep failed (exit ${serial_rc}):\n${serial_err}")
endif()
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel sweep failed (exit ${parallel_rc}):\n${parallel_err}")
endif()
if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "sweep --jobs 4 stdout differs from --jobs 1:\n"
                      "--- serial ---\n${serial_out}\n--- parallel ---\n${parallel_out}")
endif()
message(STATUS "sweep stdout byte-identical at jobs=1 and jobs=4 "
               "(${serial_rc}/${parallel_rc})")
