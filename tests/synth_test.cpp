#include <gtest/gtest.h>

#include "fabric/bitstream.hpp"
#include "synth/elaborate.hpp"
#include "synth/flow.hpp"
#include "synth/map.hpp"
#include "synth/place.hpp"
#include "util/error.hpp"

namespace pdr::synth {
namespace {

using fabric::xc2v1000;
using fabric::xc2v2000;

// --- elaborate -------------------------------------------------------------------

class ElaborateKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ElaborateKindTest, ProducesNonEmptyNetlistWithPorts) {
  const netlist::Netlist n = elaborate_operator(GetParam());
  EXPECT_GT(n.total_primitives(), 0) << GetParam();
  EXPECT_FALSE(n.ports().empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ElaborateKindTest,
                         ::testing::ValuesIn(known_operator_kinds()));

TEST(Elaborate, UnknownKindThrows) { EXPECT_THROW(elaborate_operator("warp_drive"), pdr::Error); }

TEST(Elaborate, BadParamThrows) {
  EXPECT_THROW(elaborate_operator("ifft", {{"n", 48}}), pdr::Error);   // not a power of 2
  EXPECT_THROW(elaborate_operator("ifft", {{"n", -64}}), pdr::Error);  // negative
  EXPECT_THROW(elaborate_operator("cyclic_prefix", {{"n", 64}, {"cp", 64}}), pdr::Error);
}

TEST(Elaborate, IfftScalesWithSize) {
  const auto small = map_netlist(elaborate_operator("ifft", {{"n", 16}}));
  const auto big = map_netlist(elaborate_operator("ifft", {{"n", 256}}));
  EXPECT_GT(big.slices, small.slices);
  EXPECT_GT(big.mults, small.mults);
}

TEST(Elaborate, Qam16BiggerThanQpsk) {
  const auto qpsk = map_netlist(elaborate_operator("qpsk_mapper"));
  const auto qam16 = map_netlist(elaborate_operator("qam16_mapper"));
  const auto qam64 = map_netlist(elaborate_operator("qam64_mapper"));
  EXPECT_GT(qam16.slices, qpsk.slices);
  EXPECT_GT(qam64.slices, qam16.slices);
}

TEST(Elaborate, ModulationKindHelpers) {
  EXPECT_TRUE(is_modulation_kind("qpsk_mapper"));
  EXPECT_FALSE(is_modulation_kind("ifft"));
  EXPECT_EQ(modulation_bits_per_symbol("qpsk_mapper"), 2);
  EXPECT_EQ(modulation_bits_per_symbol("qam16_mapper"), 4);
  EXPECT_THROW(modulation_bits_per_symbol("ifft"), pdr::Error);
}

TEST(Elaborate, CustomKindUsesParams) {
  const auto n = elaborate_operator("custom", {{"luts", 100}, {"ffs", 50}, {"brams", 2}});
  EXPECT_EQ(n.count(netlist::PrimitiveKind::Lut4), 100);
  EXPECT_EQ(n.count(netlist::PrimitiveKind::FlipFlop), 50);
  EXPECT_EQ(n.count(netlist::PrimitiveKind::Bram18), 2);
}

TEST(Elaborate, WrapExecutiveAddsOverheadAndHandshake) {
  const netlist::Netlist bare = elaborate_operator("qpsk_mapper");
  const netlist::Netlist wrapped = wrap_executive(bare);
  EXPECT_GT(map_netlist(wrapped).slices, map_netlist(bare).slices);
  EXPECT_GT(wrapped.input_bits(), bare.input_bits());  // hs_req + in_reconf
  // The wrapper must not require BRAM (regions may lack BRAM columns).
  EXPECT_EQ(wrapped.count(netlist::PrimitiveKind::Bram18),
            bare.count(netlist::PrimitiveKind::Bram18));
}

// --- map --------------------------------------------------------------------------

TEST(Map, SlicePacking) {
  netlist::Netlist n("m");
  n.add(netlist::PrimitiveKind::Lut4, 16);
  n.add(netlist::PrimitiveKind::FlipFlop, 4);
  const ResourceUsage u = map_netlist(n);
  // 16 LUTs / 2 per slice / 0.8 packing = 10 slices.
  EXPECT_EQ(u.slices, 10);
  EXPECT_EQ(u.luts, 16);
  EXPECT_EQ(u.ffs, 4);
}

TEST(Map, FfBoundPacking) {
  netlist::Netlist n("m");
  n.add(netlist::PrimitiveKind::FlipFlop, 32);
  EXPECT_EQ(map_netlist(n).slices, 20);  // 32/2/0.8
}

TEST(Map, UsageAddition) {
  ResourceUsage a{10, 20, 10, 1, 2, 8};
  const ResourceUsage b{5, 4, 3, 2, 1, 0};
  a += b;
  EXPECT_EQ(a.slices, 15);
  EXPECT_EQ(a.brams, 3);
  EXPECT_EQ(a.tbufs, 8);
}

TEST(Map, UtilizationUsesScarcestResource) {
  const fabric::DeviceModel d = xc2v2000();
  ResourceUsage u;
  u.slices = d.total_slices() / 10;
  u.brams = d.total_brams() / 2;  // scarcer
  EXPECT_NEAR(utilization_percent(u, d), 50.0, 1.0);
}

TEST(Map, FitsChecksEveryDimension) {
  ResourceUsage u{100, 0, 0, 2, 1, 0};
  EXPECT_TRUE(fits(u, 100, 2, 1));
  EXPECT_FALSE(fits(u, 99, 2, 1));
  EXPECT_FALSE(fits(u, 100, 1, 1));
  EXPECT_FALSE(fits(u, 100, 2, 0));
}

TEST(Map, ColumnsNeeded) {
  const fabric::DeviceModel d = xc2v2000();  // 224 slices per column
  ResourceUsage u;
  u.slices = 1;
  EXPECT_EQ(columns_needed(u, d), 1);
  u.slices = 224;
  EXPECT_EQ(columns_needed(u, d), 1);
  u.slices = 225;
  EXPECT_EQ(columns_needed(u, d), 2);
}

TEST(Map, FitsRegionRespectsBramBudget) {
  fabric::Floorplan plan(xc2v2000());
  plan.add_region("edge", 43, 47, true, 8, 8);  // no BRAM columns inside
  ResourceUsage u;
  u.slices = 10;
  u.brams = 1;
  EXPECT_FALSE(fits_region(u, plan, "edge"));
  u.brams = 0;
  EXPECT_TRUE(fits_region(u, plan, "edge"));
}

// --- place -----------------------------------------------------------------------

TEST(Place, DynamicVariantCoversRegionAndChargesBusMacros) {
  fabric::Floorplan plan(xc2v2000());
  plan.add_region("D1", 43, 47, true, 16, 16);
  Placer placer(plan);
  const netlist::Netlist nl = wrap_executive(elaborate_operator("qpsk_mapper"));
  const PlacedModule p = placer.place_dynamic("qpsk", nl, "D1");
  EXPECT_EQ(p.region, "D1");
  EXPECT_EQ(p.col_lo, 43);
  EXPECT_EQ(p.col_hi, 47);
  EXPECT_EQ(p.frames.size(), plan.region_frames("D1").size());
  EXPECT_EQ(p.usage.tbufs,
            static_cast<int>(plan.region("D1").bus_macros.size()) * fabric::kBusMacroWidth);
}

TEST(Place, DynamicIntoStaticRegionRejected) {
  fabric::Floorplan plan(xc2v2000());
  plan.add_region("S", 0, 5, false);
  Placer placer(plan);
  EXPECT_THROW(placer.place_dynamic("x", elaborate_operator("qpsk_mapper"), "S"), pdr::Error);
}

TEST(Place, OversizedVariantRejected) {
  fabric::Floorplan plan(xc2v2000());
  plan.add_region("D1", 46, 47, true, 8, 8);  // 2 columns = 448 slices
  Placer placer(plan);
  const auto huge = elaborate_operator("custom", {{"luts", 4000}, {"ffs", 4000}});
  EXPECT_THROW(placer.place_dynamic("huge", huge, "D1"), pdr::Error);
}

TEST(Place, StaticFirstFitAllocatesDisjointColumns) {
  fabric::Floorplan plan(xc2v2000());
  plan.add_region("D1", 43, 47, true, 8, 8);
  Placer placer(plan);
  const int before = placer.free_static_columns();
  const PlacedModule a = placer.place_static(elaborate_operator("ifft", {{"n", 64}}));
  const PlacedModule b = placer.place_static(elaborate_operator("interleaver"));
  EXPECT_LT(a.col_hi, 43);
  EXPECT_TRUE(b.col_lo > a.col_hi || b.col_hi < a.col_lo);
  EXPECT_LT(placer.free_static_columns(), before);
}

TEST(Place, StaticExhaustionThrows) {
  fabric::Floorplan plan(xc2v1000());
  plan.add_region("D1", 2, 31, true, 8, 8);  // leave only columns 0..1
  Placer placer(plan);
  const auto big = elaborate_operator("custom", {{"luts", 3000}, {"ffs", 100}});
  EXPECT_THROW(placer.place_static(big), pdr::Error);
}

// --- flow -------------------------------------------------------------------------

TEST(Flow, EndToEndBundleInvariants) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_static("ifft", "ifft", {{"n", 64}});
  flow.add_static("iface", "interface_in_out");
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  const DesignBundle bundle = flow.run();

  EXPECT_EQ(bundle.static_modules.size(), 2u);
  ASSERT_EQ(bundle.dynamic_variants.count("D1"), 1u);
  const auto& variants = bundle.dynamic_variants.at("D1");
  ASSERT_EQ(variants.size(), 2u);

  // All variants cover the same frames -> interchangeable bitstreams.
  EXPECT_EQ(variants[0].placement.frames.size(), variants[1].placement.frames.size());
  EXPECT_EQ(variants[0].bitstream.size(), variants[1].bitstream.size());
  EXPECT_NE(variants[0].bitstream, variants[1].bitstream);

  // Bitstreams validate against the device.
  for (const auto& v : variants)
    EXPECT_NO_THROW(fabric::BitstreamReader::validate(bundle.device, v.bitstream));
  EXPECT_NO_THROW(fabric::BitstreamReader::validate(bundle.device, bundle.initial_bitstream));

  // Report is filled.
  EXPECT_EQ(bundle.report.modules, 4);
  EXPECT_EQ(bundle.report.dynamic_variants, 2);
  EXPECT_GT(bundle.report.total_bitstream_bytes, 0u);
}

TEST(Flow, VariantLookup) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_region("D1", {{"a", "qpsk_mapper", {}}, {"b", "qam16_mapper", {}}});
  const DesignBundle bundle = flow.run();
  EXPECT_EQ(bundle.variant("D1", "a").name, "a");
  EXPECT_EQ(bundle.variant_names("D1"), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(bundle.variant("D1", "c"), pdr::Error);
  EXPECT_THROW(bundle.variant("D9", "a"), pdr::Error);
}

TEST(Flow, FixedWidthRespected) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}}, 0, 5);
  const DesignBundle bundle = flow.run();
  EXPECT_EQ(bundle.floorplan.region("D1").width_cols(), 5);
}

TEST(Flow, FixedWidthTooSmallRejected) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_region("big", {{"x", "custom", {{"luts", 3000}, {"ffs", 3000}}}}, 0, 2);
  EXPECT_THROW(flow.run(), pdr::Error);
}

TEST(Flow, TwoRegionsPackedFromRightEdge) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_region("D1", {{"a", "qpsk_mapper", {}}});
  // LUT-only variant: edge regions contain no MULT/BRAM columns.
  flow.add_region("D2", {{"b", "custom", {{"luts", 200}, {"ffs", 100}}}});
  const DesignBundle bundle = flow.run();
  const auto& d1 = bundle.floorplan.region("D1");
  const auto& d2 = bundle.floorplan.region("D2");
  EXPECT_EQ(d1.col_hi, bundle.device.clb_cols - 1);
  EXPECT_EQ(d2.col_hi, d1.col_lo - 1);
}

TEST(Flow, StaticUsageAccumulates) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_static("a", "scrambler");
  flow.add_static("b", "ifft", {{"n", 64}});
  flow.add_region("D1", {{"m", "qpsk_mapper", {}}});
  const DesignBundle bundle = flow.run();
  const ResourceUsage total = bundle.static_usage();
  EXPECT_EQ(total.slices,
            bundle.static_modules[0].usage.slices + bundle.static_modules[1].usage.slices);
}

TEST(Flow, EmptyRegionRejected) {
  ModularDesignFlow flow(xc2v2000());
  EXPECT_THROW(flow.add_region("D1", {}), pdr::Error);
}

// --- timing -----------------------------------------------------------------------

TEST(Timing, LogicLevelsGrowWithConeDepth) {
  netlist::Netlist shallow("s");
  shallow.add(netlist::PrimitiveKind::Lut4, 8);
  shallow.add(netlist::PrimitiveKind::FlipFlop, 8);
  netlist::Netlist deep("d");
  deep.add(netlist::PrimitiveKind::Lut4, 256);
  deep.add(netlist::PrimitiveKind::FlipFlop, 8);
  EXPECT_LT(estimate_logic_levels(shallow), estimate_logic_levels(deep));
}

TEST(Timing, PureRegistersHaveNoLogicLevels) {
  netlist::Netlist n("regs");
  n.add(netlist::PrimitiveKind::FlipFlop, 32);
  EXPECT_EQ(estimate_logic_levels(n), 0);
  const TimingEstimate est = estimate_timing(n);
  EXPECT_GT(est.fmax_mhz, 500.0);  // just clk-to-out + setup
}

TEST(Timing, BusMacroCrossingLowersFmax) {
  const netlist::Netlist nl = elaborate_operator("qam16_mapper");
  const TimingEstimate inside = estimate_timing(nl, TimingModel{}, false);
  const TimingEstimate crossing = estimate_timing(nl, TimingModel{}, true);
  EXPECT_LT(crossing.fmax_mhz, inside.fmax_mhz);
  EXPECT_GT(crossing.critical_path_ns, inside.critical_path_ns);
}

TEST(Timing, MultiplierPathDominatesWhenPresent) {
  netlist::Netlist n("mul");
  n.add(netlist::PrimitiveKind::Mult18, 1);
  n.add(netlist::PrimitiveKind::FlipFlop, 4);
  const TimingEstimate est = estimate_timing(n);
  const TimingModel model;
  EXPECT_GE(est.critical_path_ns, model.mult_delay_ns);
}

TEST(Timing, EstimatesInPlausibleFpgaRange) {
  // Every case-study operator should land between 20 and 700 MHz — the
  // plausible Virtex-II range.
  for (const auto& kind : known_operator_kinds()) {
    const TimingEstimate est = estimate_timing(elaborate_operator(kind));
    EXPECT_GT(est.fmax_mhz, 20.0) << kind;
    EXPECT_LT(est.fmax_mhz, 700.0) << kind;
  }
}

TEST(Timing, FlowFillsEstimates) {
  ModularDesignFlow flow(xc2v2000());
  flow.add_static("ifft", "ifft", {{"n", 64}});
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}});
  const DesignBundle bundle = flow.run();
  EXPECT_GT(bundle.static_modules[0].timing.fmax_mhz, 0.0);
  EXPECT_GT(bundle.variant("D1", "qpsk").timing.fmax_mhz, 0.0);
  // Dynamic variants pay the bus-macro crossing.
  const TimingEstimate bare = estimate_timing(wrap_executive(elaborate_operator("qpsk_mapper")));
  EXPECT_LT(bundle.variant("D1", "qpsk").timing.fmax_mhz, bare.fmax_mhz);
}

}  // namespace
}  // namespace pdr::synth
