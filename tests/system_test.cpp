#include <gtest/gtest.h>

#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "util/units.hpp"

namespace pdr::mccdma {
namespace {

using namespace pdr::literals;

/// The case study is expensive to build (full bitstream generation), so
/// share one across tests.
const CaseStudy& case_study() {
  static const CaseStudy cs = build_case_study();
  return cs;
}

TEST(CaseStudy, ConstraintsParseAndMatchPaper) {
  const auto& cs = case_study();
  EXPECT_EQ(cs.constraints.device, "XC2V2000");
  EXPECT_EQ(cs.constraints.port, aaa::PortChoice::Icap);
  EXPECT_EQ(cs.constraints.modules.size(), 2u);
  EXPECT_NE(cs.constraints.find_module("qpsk"), nullptr);
  EXPECT_NE(cs.constraints.find_module("qam16"), nullptr);
  EXPECT_EQ(cs.constraints.exclusions.size(), 1u);
}

TEST(CaseStudy, RegionIsEightPercentOfDevice) {
  const auto& cs = case_study();
  // Paper: "the second one takes 8% of the FPGA".
  const double fraction = cs.bundle.floorplan.region_fraction("D1");
  EXPECT_NEAR(fraction, 0.08, 0.01);
}

TEST(CaseStudy, ReconfigurationTakesAboutFourMs) {
  const auto& cs = case_study();
  // Paper: "The reconfiguration time needed to reconfigure Op_Dyn takes
  // about 4ms".
  const auto cost = case_study_reconfig_cost(cs.bundle);
  EXPECT_NEAR(to_ms(cost("D1", "qpsk")), 4.0, 0.5);
  EXPECT_NEAR(to_ms(cost("D1", "qam16")), 4.0, 0.5);
}

TEST(CaseStudy, AlgorithmGraphMatchesFigure4) {
  const auto& cs = case_study();
  EXPECT_NO_THROW(cs.algorithm.validate());
  const auto& mod = cs.algorithm.op(cs.algorithm.by_name("modulation"));
  ASSERT_TRUE(mod.conditioned());
  EXPECT_EQ(mod.alternatives[0].name, "qpsk");
  EXPECT_EQ(mod.alternatives[1].name, "qam16");
  // All Figure-4 blocks present.
  for (const char* name : {"data_in", "scramble", "conv_code", "interleave", "modulation",
                           "spread", "ifft", "cyclic_prefix", "frame", "shb_out"})
    EXPECT_TRUE(cs.algorithm.find(name).has_value()) << name;
}

TEST(CaseStudy, DynamicSchemeCostsMoreThanSingleFixedMapper) {
  // Paper Table 1: resources are "more important with a dynamic
  // reconfiguration scheme" because of the generated generic structure.
  const auto& cs = case_study();
  const auto bare_qpsk = synth::map_netlist(synth::elaborate_operator("qpsk_mapper"));
  const auto& dyn_qpsk = cs.bundle.variant("D1", "qpsk").usage;
  EXPECT_GT(dyn_qpsk.slices, bare_qpsk.slices);
  EXPECT_GT(dyn_qpsk.tbufs, 0);  // bus macros
}

TEST(CaseStudy, AdequationPlacesChainOnFpga) {
  const auto& cs = case_study();
  aaa::Adequation adequation(cs.algorithm, cs.architecture, cs.durations);
  adequation.apply_constraints(cs.constraints);
  adequation.set_reconfig_cost(case_study_reconfig_cost(cs.bundle));
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "qpsk";
  const aaa::Schedule schedule = adequation.run(options);
  aaa::validate_schedule(schedule, cs.algorithm, cs.architecture);
  // The modulation lands on the region; the heavy datapath on the FPGA.
  EXPECT_EQ(schedule.placement_name(cs.algorithm.by_name("modulation")), "D1");
  EXPECT_EQ(schedule.placement_name(cs.algorithm.by_name("ifft")), "F1");
  EXPECT_EQ(schedule.reconfig_count, 0);  // preloaded qpsk
}

TEST(System, RunsAndAccountsSymbols) {
  SystemConfig config;
  config.seed = 7;
  config.ber_sample_every = 0;  // timing only
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(2000);
  EXPECT_EQ(r.symbols, 2000u);
  EXPECT_GT(r.payload_bits, 0u);
  EXPECT_GE(r.elapsed, 2000 * case_study().params.symbol_duration());
  EXPECT_GT(r.throughput_bps(), 0.0);
}

TEST(System, PrefetchReducesStallVsOnDemand) {
  SystemConfig config;
  config.seed = 2006;
  config.ber_sample_every = 0;
  TransmitterSystem with_prefetch(case_study(), config);
  const SystemReport a = with_prefetch.run(20000);

  config.prefetch = aaa::PrefetchChoice::None;
  TransmitterSystem without_prefetch(case_study(), config);
  const SystemReport b = without_prefetch.run(20000);

  EXPECT_EQ(a.switches, b.switches);  // same SNR trace, same decisions
  EXPECT_GT(b.stall_total, 0);
  EXPECT_LT(a.stall_total, b.stall_total);
  EXPECT_GT(a.manager.prefetch_hits + a.manager.prefetch_inflight, 0);
  EXPECT_EQ(b.manager.prefetch_hits, 0);
  EXPECT_LE(a.elapsed, b.elapsed);
}

TEST(System, SwitchesMatchManagerActivity) {
  SystemConfig config;
  config.seed = 99;
  config.ber_sample_every = 0;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(20000);
  // Every switch demanded a module. The initial qpsk is declared
  // `load startup` (shipped in the full bitstream), so it is not a
  // runtime request.
  EXPECT_EQ(r.manager.requests, r.switches);
}

TEST(System, StartupLoadPolicyAvoidsInitialStall) {
  SystemConfig config;
  config.seed = 123;
  config.ber_sample_every = 0;
  TransmitterSystem system(case_study(), config);
  // Run too short for any SNR switch: zero stall because qpsk shipped in
  // the initial bitstream.
  const SystemReport r = system.run(16);
  EXPECT_EQ(r.switches, 0);
  EXPECT_EQ(r.stall_total, 0);
  EXPECT_EQ(system.manager().loaded("D1"), "qpsk");
}

TEST(System, BerSaneUnderAdaptiveModulation) {
  SystemConfig config;
  config.seed = 3;
  config.ber_sample_every = 4;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(4000);
  // The controller holds QAM-16 only at high SNR, so both BERs stay low.
  EXPECT_LT(r.ber_qpsk.ber(), 1e-2);
  EXPECT_LT(r.ber_qam16.ber(), 5e-2);
  EXPECT_GT(r.ber_qpsk.bits + r.ber_qam16.bits, 0u);
}

TEST(System, HistoryPolicyStagesAfterSwitches) {
  SystemConfig config;
  config.seed = 2006;
  config.prefetch = aaa::PrefetchChoice::History;
  config.ber_sample_every = 0;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(30000);
  // With two modules, the Markov predictor stages the way back after
  // every switch: later switches become staged loads.
  EXPECT_GT(r.switches, 2);
  EXPECT_GT(r.manager.prefetch_hits + r.manager.prefetch_inflight, 0);
  EXPECT_LE(r.manager.misses, 1);  // only the first switch can miss
}

TEST(System, ScrubbingRunsAndKeepsResidencyVerified) {
  using namespace pdr::literals;
  SystemConfig config;
  config.seed = 8;
  config.ber_sample_every = 0;
  config.scrub_period = 10_ms;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(20000);  // ~80 ms air time
  EXPECT_GT(r.manager.scrubs, 3);
  EXPECT_EQ(system.manager().verify_resident("D1"), 0);
  // Scrubbing may delay reconfigurations (port contention) but the run
  // completes with bounded stall.
  EXPECT_LT(r.stall_fraction(), 0.6);
}

TEST(System, DeterministicForSeed) {
  SystemConfig config;
  config.seed = 42;
  config.ber_sample_every = 0;
  TransmitterSystem a(case_study(), config);
  TransmitterSystem b(case_study(), config);
  const SystemReport ra = a.run(5000);
  const SystemReport rb = b.run(5000);
  EXPECT_EQ(ra.switches, rb.switches);
  EXPECT_EQ(ra.elapsed, rb.elapsed);
  EXPECT_EQ(ra.stall_total, rb.stall_total);
}

TEST(System, MultipathWithGenieEqualizerKeepsBerSane) {
  SystemConfig config;
  config.seed = 77;
  config.multipath = true;
  config.ber_sample_every = 4;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(4000);
  EXPECT_EQ(r.pilots_sent, 0u);  // genie mode
  EXPECT_GT(r.ber_qpsk.bits + r.ber_qam16.bits, 0u);
  EXPECT_LT(r.ber_qpsk.ber(), 5e-2);
}

TEST(System, PilotsEstimateChannelAndCostAirtime) {
  SystemConfig config;
  config.seed = 78;
  config.multipath = true;
  config.pilot_every = 16;
  config.ber_sample_every = 4;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(3200);
  EXPECT_EQ(r.pilots_sent, 3200u / 16u);
  // Air time covers data + pilots + stalls.
  EXPECT_EQ(r.elapsed, static_cast<TimeNs>(3200 + r.pilots_sent) *
                               case_study().params.symbol_duration() +
                           r.stall_total);
  // Estimated equalization keeps the link usable.
  EXPECT_LT(r.ber_qpsk.ber(), 8e-2);
}

TEST(System, StallFractionConsistent) {
  SystemConfig config;
  config.seed = 5;
  config.ber_sample_every = 0;
  TransmitterSystem system(case_study(), config);
  const SystemReport r = system.run(10000);
  EXPECT_NEAR(r.stall_fraction(),
              static_cast<double>(r.stall_total) / static_cast<double>(r.elapsed), 1e-12);
  EXPECT_EQ(r.elapsed, 10000 * case_study().params.symbol_duration() + r.stall_total);
}

}  // namespace
}  // namespace pdr::mccdma
