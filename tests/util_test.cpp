#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/arg_parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pdr {
namespace {

using namespace pdr::literals;

// --- units -----------------------------------------------------------------

TEST(Units, LiteralsCompose) {
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_EQ(4_ms, TimeNs{4'000'000});
  EXPECT_EQ(1_KiB, Bytes{1024});
  EXPECT_EQ(1_MiB, Bytes{1024 * 1024});
}

TEST(Units, ToMsToUs) {
  EXPECT_DOUBLE_EQ(to_ms(4_ms), 4.0);
  EXPECT_DOUBLE_EQ(to_us(1500_ns), 1.5);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1 byte at 1 GB/s = exactly 1 ns.
  EXPECT_EQ(transfer_time_ns(1, 1e9), 1);
  // 1 byte at 3 GB/s = 0.33 ns -> rounds up to 1.
  EXPECT_EQ(transfer_time_ns(1, 3e9), 1);
  // zero bandwidth guard.
  EXPECT_EQ(transfer_time_ns(100, 0.0), 0);
}

TEST(Units, TransferTimeScalesLinearly) {
  const TimeNs one = transfer_time_ns(1000, 1e6);
  const TimeNs two = transfer_time_ns(2000, 1e6);
  EXPECT_NEAR(static_cast<double>(two), 2.0 * static_cast<double>(one), 2.0);
}

// --- error ------------------------------------------------------------------

TEST(Error, RaiseThrowsWithContext) {
  try {
    raise("somewhere", "broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "somewhere: broke");
  }
}

TEST(Error, CheckMacroPassesAndFails) {
  EXPECT_NO_THROW(PDR_CHECK(1 + 1 == 2, "t", "fine"));
  EXPECT_THROW(PDR_CHECK(false, "t", "nope"), Error);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(2024);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a(), b());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- strings -------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("XC2V2000"), "xc2v2000"); }

TEST(Strings, Strprintf) { EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x"); }

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(human_bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(Strings, IdentifierSanitizes) {
  EXPECT_EQ(identifier("a-b c"), "a_b_c");
  EXPECT_EQ(identifier("2fast"), "x2fast");
  EXPECT_EQ(identifier(""), "x");
}

// --- table ---------------------------------------------------------------------

TEST(Table, MarkdownAlignsColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1);
  t.row().add("b").add(12345);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| alpha |"), std::string::npos);
  EXPECT_NE(md.find("| 12345 |"), std::string::npos);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.row().add("x,y");
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().add("one");
  EXPECT_THROW(t.add("two"), Error);
}

TEST(Table, RejectsAddBeforeRow) {
  Table t({"c"});
  EXPECT_THROW(t.add("x"), Error);
}

TEST(Table, DoubleFormatting) {
  Table t({"v"});
  t.row().add(3.14159, 3);
  EXPECT_NE(t.to_markdown().find("3.142"), std::string::npos);
}

TEST(Table, EmptyHeaderRejected) { EXPECT_THROW(Table t({}), Error); }

// --- stats -------------------------------------------------------------------

TEST(Stats, EmptyIsZero) {
  const Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyStateIsExplicit) {
  // The plain accessors return 0.0 on an empty accumulator for report
  // convenience, but serializers must be able to tell "no samples" from
  // "measured 0.0" — that's what empty() and the opt_* accessors are for.
  const Stats empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.opt_mean().has_value());
  EXPECT_FALSE(empty.opt_min().has_value());
  EXPECT_FALSE(empty.opt_max().has_value());
  EXPECT_FALSE(empty.opt_stddev().has_value());

  Stats one;
  one.add(2.5);
  EXPECT_FALSE(one.empty());
  ASSERT_TRUE(one.opt_mean().has_value());
  EXPECT_DOUBLE_EQ(*one.opt_mean(), 2.5);
  ASSERT_TRUE(one.opt_min().has_value());
  EXPECT_DOUBLE_EQ(*one.opt_min(), 2.5);
  ASSERT_TRUE(one.opt_max().has_value());
  EXPECT_DOUBLE_EQ(*one.opt_max(), 2.5);
  // A standard deviation needs two samples; one sample stays nullopt
  // rather than pretending the spread was measured as zero.
  EXPECT_FALSE(one.opt_stddev().has_value());

  one.add(3.5);
  ASSERT_TRUE(one.opt_stddev().has_value());
  EXPECT_NEAR(*one.opt_stddev(), std::sqrt(0.5), 1e-12);
}

TEST(Stats, KnownValues) {
  Stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  Stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, MatchesDirectComputationOnRandomData) {
  Rng rng(12345);
  Stats s;
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    samples.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - mean) * (v - mean);
  var /= static_cast<double>(samples.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

// --- arg parser ------------------------------------------------------------

/// Builds a mutable argv from literals (ArgParser::extract compacts it).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    argc = static_cast<int>(ptrs.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** data() { return ptrs.data(); }
};

TEST(ArgParser, StrictParsesFlagsAndPositionals) {
  Argv a({"design.constraints", "--out", "dir", "--verbose"});
  const util::ArgParser args("build", a.argc, a.data(),
                             {{"--out", true}, {"--verbose", false}}, 1);
  EXPECT_EQ(args.positional_count(), 1u);
  EXPECT_EQ(args.positional(0), "design.constraints");
  EXPECT_EQ(args.string_or("--out", ""), "dir");
  EXPECT_TRUE(args.has("--verbose"));
  EXPECT_FALSE(args.has("--quiet"));
}

TEST(ArgParser, StrictRejectsUnknownFlag) {
  Argv a({"--bogus"});
  EXPECT_THROW(util::ArgParser("build", a.argc, a.data(), {{"--out", true}}, 0), Error);
}

TEST(ArgParser, StrictRejectsMissingValueAndPositionalMismatch) {
  Argv missing_value({"--out"});
  EXPECT_THROW(
      util::ArgParser("build", missing_value.argc, missing_value.data(), {{"--out", true}}, 0),
      Error);
  Argv too_few({"--out", "dir"});
  EXPECT_THROW(util::ArgParser("build", too_few.argc, too_few.data(), {{"--out", true}}, 1),
               Error);
}

TEST(ArgParser, StrictNumericParsing) {
  Argv a({"--jobs", "12abc", "--rate", "1.5"});
  const util::ArgParser args("sweep", a.argc, a.data(), {{"--jobs", true}, {"--rate", true}}, 0);
  EXPECT_THROW(args.uint_or("--jobs", 1), Error);  // "12abc" is an error, not 12
  EXPECT_DOUBLE_EQ(args.double_or("--rate", 0.0), 1.5);
  EXPECT_EQ(args.uint_or("--absent", 7), 7u);
}

TEST(ArgParser, ListOrSplitsOnCommas) {
  Argv a({"--seeds", "1,2,3"});
  const util::ArgParser args("sweep", a.argc, a.data(), {{"--seeds", true}}, 0);
  EXPECT_EQ(args.list_or("--seeds", {}), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(args.list_or("--absent", {"x"}), (std::vector<std::string>{"x"}));
}

TEST(ArgParser, ExtractConsumesDeclaredFlagsAndCompactsArgv) {
  Argv a({"bench", "--trace-out", "t.json", "--benchmark_filter=BM_x", "--jobs", "4"});
  const util::ArgParser args =
      util::ArgParser::extract("bench", a.argc, a.data(), {{"--trace-out", true}, {"--jobs", true}});
  EXPECT_EQ(args.string_or("--trace-out", ""), "t.json");
  EXPECT_EQ(args.uint_or("--jobs", 1), 4u);
  // argv compacted in place: argv[0] and the unknown flag survive.
  ASSERT_EQ(a.argc, 2);
  EXPECT_STREQ(a.data()[0], "bench");
  EXPECT_STREQ(a.data()[1], "--benchmark_filter=BM_x");
}

TEST(ArgParser, ExtractLeavesUndeclaredArgvAlone) {
  Argv a({"bench", "positional", "--other"});
  const util::ArgParser args = util::ArgParser::extract("bench", a.argc, a.data(), {{"--jobs", true}});
  EXPECT_FALSE(args.has("--jobs"));
  EXPECT_EQ(a.argc, 3);
}

}  // namespace
}  // namespace pdr
