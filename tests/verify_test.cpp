// pdr::verify contracts:
//
//  - Soundness on the positive side: every schedule the adequation engine
//    produces certifies (zero false positives), and a certified schedule
//    replays through the executive player with zero hazard faults — the
//    differential oracle, fuzz-tested over seeded generator DAGs.
//  - Completeness on the seeded-hazard side: a mutation corpus plants one
//    hazard of each PDR1xx class into a certified schedule and asserts
//    the verifier reports exactly that rule with a correct witness
//    (the mutated items, genuinely overlapping intervals).
//  - The runtime half: rtr::ReconfigManager::enable_certified_replay()
//    accepts the certified load sequence and throws on divergence, with
//    maintenance loads (blank/scrub) exempt.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"
#include "bench/generators.hpp"
#include "rtr/bitstream_store.hpp"
#include "rtr/manager.hpp"
#include "rtr/prefetch.hpp"
#include "sim/executive_player.hpp"
#include "synth/flow.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "verify/verify.hpp"

namespace pdr {
namespace {

using namespace pdr::literals;
using aaa::ItemKind;
using aaa::ScheduledItem;
using verify::Certificate;
using verify::Violation;

// --- fixture: one conditioned vertex forced through a dynamic region --------

aaa::DurationTable region_durations() {
  aaa::DurationTable t;
  for (const char* kind : {"src", "sink"}) t.set(kind, aaa::OperatorKind::Processor, 1'000);
  for (const char* kind : {"alt_a", "alt_b"}) {
    t.set(kind, aaa::OperatorKind::Processor, 50'000);
    t.set(kind, aaa::OperatorKind::FpgaRegion, 2'000);
  }
  return t;
}

aaa::ArchitectureGraph region_arch(int regions = 1) {
  aaa::ArchitectureGraph arch;
  arch.add_operator(aaa::OperatorNode{"CPU", aaa::OperatorKind::Processor, 1.0, "", ""});
  for (int i = 1; i <= regions; ++i) {
    const std::string name = "D" + std::to_string(i);
    arch.add_operator(aaa::OperatorNode{name, aaa::OperatorKind::FpgaRegion, 1.0, "XC2V2000", name});
  }
  arch.add_medium(aaa::MediumNode{"BUS", 100e6, 100});
  arch.connect("CPU", "BUS");
  for (int i = 1; i <= regions; ++i) arch.connect("D" + std::to_string(i), "BUS");
  return arch;
}

aaa::AlgorithmGraph conditioned_chain() {
  aaa::AlgorithmGraph g;
  g.add_operation({"a", "src", {}, aaa::OpClass::Sensor, {}});
  g.add_conditioned("m", {{"alt_a", "alt_a", {}}, {"alt_b", "alt_b", {}}});
  g.add_operation({"c", "sink", {}, aaa::OpClass::Actuator, {}});
  g.add_dependency("a", "m", 100);
  g.add_dependency("m", "c", 100);
  return g;
}

/// Schedules the conditioned chain with sensor/actuator pinned on the CPU
/// so the region's input and output both cross the bus: one reconfig, one
/// region compute, two transfers — every timeline the verifier sweeps.
aaa::Schedule region_schedule(const aaa::AlgorithmGraph& g, const aaa::ArchitectureGraph& arch,
                              const aaa::DurationTable& t,
                              const aaa::AdequationOptions& options = {}) {
  aaa::Adequation adequation(g, arch, t);
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 1_us; });
  adequation.pin("a", "CPU");
  adequation.pin("c", "CPU");
  return adequation.run(options);
}

constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

std::size_t find_item(const aaa::Schedule& s, ItemKind kind, const std::string& resource,
                      std::size_t skip = 0) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.kind(i) != kind || s.resource(i) != resource) continue;
    if (skip == 0) return i;
    --skip;
  }
  return kNoItem;
}

const Violation* find_violation(const Certificate& cert, lint::Rule rule) {
  for (const auto& v : cert.violations)
    if (v.rule == rule) return &v;
  return nullptr;
}

// --- certification of valid schedules ----------------------------------------

TEST(Certificate, AdequationScheduleCertifies) {
  const aaa::AlgorithmGraph g = conditioned_chain();
  const aaa::ArchitectureGraph arch = region_arch();
  const aaa::DurationTable t = region_durations();
  const aaa::Schedule s = region_schedule(g, arch, t);
  ASSERT_GT(s.reconfig_count, 0);

  const Certificate cert = verify::verify_schedule(s, g, arch);
  EXPECT_TRUE(cert.certified()) << cert.first_error();
  EXPECT_TRUE(cert.violations.empty());
  EXPECT_EQ(cert.error_count(), 0u);
  EXPECT_EQ(cert.first_error(), "");
  EXPECT_NE(cert.summary().find("certified"), std::string::npos);

  // The positive artifact: one port booking, loads sequence {alt_a}, a
  // residency interval stretching from the load to the horizon.
  ASSERT_EQ(cert.port_bookings.size(), 1u);
  EXPECT_EQ(cert.port_bookings.front().module, "alt_a");
  const auto loads = cert.expected_loads();
  ASSERT_EQ(loads.count("D1"), 1u);
  EXPECT_EQ(loads.at("D1"), (std::vector<std::string>{"alt_a"}));
  ASSERT_EQ(cert.residencies.size(), 1u);
  EXPECT_EQ(cert.residencies.front().region, "D1");
  EXPECT_EQ(cert.residencies.front().module, "alt_a");
  EXPECT_EQ(cert.residencies.front().from, cert.port_bookings.front().end);
  EXPECT_GE(cert.residencies.front().to, s.makespan);
}

TEST(Certificate, SelectionChangesTheExpectedLoadSequence) {
  const aaa::AlgorithmGraph g = conditioned_chain();
  const aaa::ArchitectureGraph arch = region_arch();
  const aaa::DurationTable t = region_durations();
  aaa::AdequationOptions options;
  options.selection["m"] = "alt_b";
  const aaa::Schedule s = region_schedule(g, arch, t, options);
  const Certificate cert = verify::verify_schedule(s, g, arch);
  ASSERT_TRUE(cert.certified()) << cert.first_error();
  EXPECT_EQ(cert.expected_loads().at("D1"), (std::vector<std::string>{"alt_b"}));
}

TEST(Certificate, PreloadAssumptionsMustMirrorTheSchedulers) {
  const aaa::AlgorithmGraph g = conditioned_chain();
  const aaa::ArchitectureGraph arch = region_arch();
  const aaa::DurationTable t = region_durations();
  aaa::AdequationOptions options;
  options.preloaded["D1"] = "alt_a";
  const aaa::Schedule s = region_schedule(g, arch, t, options);
  ASSERT_EQ(s.reconfig_count, 0);  // the preload made the region's load free

  // Verified against the same assumption: certified, residency from t=0.
  verify::VerifyOptions mirrored;
  mirrored.preloaded["D1"] = "alt_a";
  const Certificate good = verify::verify_schedule(s, g, arch, mirrored);
  EXPECT_TRUE(good.certified()) << good.first_error();
  ASSERT_EQ(good.residencies.size(), 1u);
  EXPECT_EQ(good.residencies.front().from, 0);

  // Verified with the assumption dropped: the variant executes in a region
  // the schedule never configures — use-before-configure.
  const Certificate bad = verify::verify_schedule(s, g, arch);
  EXPECT_FALSE(bad.certified());
  const Violation* v = find_violation(bad, lint::Rule::UseBeforeConfigure);
  ASSERT_NE(v, nullptr) << bad.first_error();
  EXPECT_FALSE(v->pair);
}

// --- mutation corpus: each seeded hazard is caught with its witness ----------

struct Mutant {
  aaa::AlgorithmGraph g;
  aaa::ArchitectureGraph arch;
  aaa::DurationTable t;
  aaa::Schedule s;

  explicit Mutant(int regions = 1)
      : g(conditioned_chain()), arch(region_arch(regions)), t(region_durations()),
        s(region_schedule(g, arch, t)) {}

  Certificate verify(const verify::VerifyOptions& options = {}) const {
    return verify::verify_schedule(s, g, arch, options);
  }
};

TEST(MutationCorpus, Pdr100ReconfigDuringExecute) {
  Mutant m;
  const std::size_t load = find_item(m.s, ItemKind::Reconfig, "D1");
  const std::size_t compute = find_item(m.s, ItemKind::Compute, "D1");
  ASSERT_NE(load, kNoItem);
  ASSERT_NE(compute, kNoItem);
  // Slide the load into the middle of the computation it precedes.
  const TimeNs duration = m.s.end(load) - m.s.start(load);
  m.s.set_start(load, m.s.start(compute) + 500);
  m.s.set_end(load, m.s.start(load) + duration);

  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::ReconfigDuringExecute);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_TRUE(v->pair);
  EXPECT_EQ(v->resource, "D1");
  EXPECT_EQ(v->first.label, m.s.label(compute));
  EXPECT_EQ(v->second.label, m.s.label(load));
  EXPECT_LT(v->overlap_from(), v->overlap_to());  // a genuine overlap window
  EXPECT_EQ(v->overlap_from(), m.s.start(load));
  EXPECT_EQ(v->overlap_to(), std::min(m.s.end(load), m.s.end(compute)));
}

TEST(MutationCorpus, Pdr101ExecuteDuringReconfig) {
  Mutant m;
  const std::size_t load = find_item(m.s, ItemKind::Reconfig, "D1");
  const std::size_t compute = find_item(m.s, ItemKind::Compute, "D1");
  ASSERT_NE(load, kNoItem);
  ASSERT_NE(compute, kNoItem);
  // Start the computation while the region's frames are being rewritten.
  const TimeNs duration = m.s.end(compute) - m.s.start(compute);
  m.s.set_start(compute, m.s.start(load) + 1);
  m.s.set_end(compute, m.s.start(compute) + duration);

  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::ExecuteDuringReconfig);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_TRUE(v->pair);
  EXPECT_EQ(v->first.label, m.s.label(load));
  EXPECT_EQ(v->second.label, m.s.label(compute));
  EXPECT_LT(v->overlap_from(), v->overlap_to());
}

TEST(MutationCorpus, Pdr102UseBeforeConfigure) {
  Mutant m;
  m.s.erase_items_if([](const ScheduledItem& i) { return i.kind == ItemKind::Reconfig; });
  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::UseBeforeConfigure);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_FALSE(v->pair);  // the defect is an absent load: one-item witness
  EXPECT_EQ(v->resource, "D1");
  EXPECT_EQ(v->first.variant, "alt_a");
  EXPECT_TRUE(cert.port_bookings.empty());
}

TEST(MutationCorpus, Pdr103StaleModuleExecution) {
  Mutant m;
  const std::size_t load = find_item(m.s, ItemKind::Reconfig, "D1");
  ASSERT_NE(load, kNoItem);
  m.s.set_module(load, "alt_b");  // the schedule loads the wrong personality
  m.s.set_label(load, "load alt_b");

  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::StaleModuleExecution);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_TRUE(v->pair);
  EXPECT_EQ(v->first.label, "load alt_b");  // witness: the stale load...
  EXPECT_EQ(v->second.variant, "alt_a");    // ...and the starved operation
  EXPECT_NE(v->message.find("holds module 'alt_b'"), std::string::npos);
}

TEST(MutationCorpus, Pdr104MediumTransferOverlap) {
  Mutant m;
  const std::size_t first = find_item(m.s, ItemKind::Transfer, "BUS");
  const std::size_t second = find_item(m.s, ItemKind::Transfer, "BUS", 1);
  ASSERT_NE(first, kNoItem);
  ASSERT_NE(second, kNoItem);
  // Slide the later transfer onto the earlier one.
  const TimeNs duration = m.s.end(second) - m.s.start(second);
  m.s.set_start(second, m.s.start(first));
  m.s.set_end(second, m.s.start(second) + duration);

  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::MediumTransferOverlap);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_EQ(v->resource, "BUS");
  EXPECT_LT(v->overlap_from(), v->overlap_to());
}

TEST(MutationCorpus, Pdr105PortDoubleBooking) {
  Mutant m(/*regions=*/2);
  const std::size_t load = find_item(m.s, ItemKind::Reconfig, "D1");
  ASSERT_NE(load, kNoItem);
  // A second region's load booked over the same port window.
  ScheduledItem twin = m.s.item(load);
  twin.resource = "D2";
  twin.module = "alt_b";
  twin.label = "load alt_b";
  m.s.push_item(twin);

  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::PortDoubleBooking);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_EQ(v->resource, "configuration port");
  EXPECT_LT(v->overlap_from(), v->overlap_to());
  EXPECT_NE(v->message.find("D1"), std::string::npos);
  EXPECT_NE(v->message.find("D2"), std::string::npos);
  // Both loads still appear in the booking sequence, in canonical order.
  EXPECT_EQ(cert.port_bookings.size(), 2u);
}

TEST(MutationCorpus, Pdr106ProducerDataCrossesReconfig) {
  Mutant m;
  const std::size_t compute = find_item(m.s, ItemKind::Compute, "D1");
  ASSERT_NE(compute, kNoItem);
  // Delay the region's outbound transfer, then rewrite the region while
  // the produced data still sits in it.
  const TimeNs compute_end = m.s.end(compute);
  for (std::size_t i = 0; i < m.s.size(); ++i) {
    if (m.s.kind(i) == ItemKind::Transfer && m.s.start(i) >= compute_end) {
      m.s.set_start(i, m.s.start(i) + 5'000);
      m.s.set_end(i, m.s.end(i) + 5'000);
    }
  }
  ScheduledItem rewrite;
  rewrite.kind = ItemKind::Reconfig;
  rewrite.resource = "D1";
  rewrite.module = "alt_b";
  rewrite.label = "load alt_b";
  rewrite.start = compute_end + 1'000;
  rewrite.end = compute_end + 2'000;
  m.s.push_item(rewrite);

  const Certificate cert = m.verify();
  const Violation* v = find_violation(cert, lint::Rule::DataCrossesReconfig);
  ASSERT_NE(v, nullptr) << cert.summary();
  // A warning, not an error: the executive's static-part buffering makes
  // this runnable, so certification must not reject it (else every
  // media-delayed transfer would prune a valid design point).
  EXPECT_EQ(v->severity, lint::Severity::Warning);
  EXPECT_TRUE(cert.certified()) << cert.first_error();
  EXPECT_EQ(v->first.label, m.s.label(compute));
  EXPECT_EQ(v->second.label, "load alt_b");
  EXPECT_NE(cert.summary().find("warning"), std::string::npos);
}

TEST(MutationCorpus, Pdr106ConsumerSideExemptsItsOwnLoad) {
  const aaa::AlgorithmGraph g = conditioned_chain();
  const aaa::ArchitectureGraph arch = region_arch();

  // Hand-built timeline: data for 'm' arrives at t=2000, 'm' starts at
  // t=5000. In between the region is configured twice: a foreign module
  // (displaces the waiting data -> warning) then m's own variant (the
  // normal on-demand pattern -> exempt).
  graph::EdgeId edge_am = graph::kNoEdge;
  const auto& dg = g.digraph();
  for (graph::EdgeId e : dg.edge_ids())
    if (dg[dg.edge_from(e)].name == "a") edge_am = e;
  ASSERT_NE(edge_am, graph::kNoEdge);

  aaa::Schedule s;
  ScheduledItem a;
  a.kind = ItemKind::Compute;
  a.label = "a";
  a.resource = "CPU";
  a.start = 0;
  a.end = 1'000;
  a.op = g.by_name("a");
  ScheduledItem hop;
  hop.kind = ItemKind::Transfer;
  hop.label = "a -> m";
  hop.resource = "BUS";
  hop.start = 1'000;
  hop.end = 2'000;
  hop.edge = edge_am;
  ScheduledItem foreign;
  foreign.kind = ItemKind::Reconfig;
  foreign.label = "load alt_b";
  foreign.resource = "D1";
  foreign.module = "alt_b";
  foreign.start = 2'500;
  foreign.end = 3'500;
  ScheduledItem own;
  own.kind = ItemKind::Reconfig;
  own.label = "load alt_a";
  own.resource = "D1";
  own.module = "alt_a";
  own.start = 3'500;
  own.end = 4'500;
  ScheduledItem consumer;
  consumer.kind = ItemKind::Compute;
  consumer.label = "m(alt_a)";
  consumer.resource = "D1";
  consumer.variant = "alt_a";
  consumer.start = 5'000;
  consumer.end = 7'000;
  consumer.op = g.by_name("m");
  for (const auto& it : {a, hop, foreign, own, consumer}) s.push_item(it);
  s.makespan = 7'000;

  const Certificate cert = verify::verify_schedule(s, g, arch);
  EXPECT_TRUE(cert.certified()) << cert.first_error();
  std::size_t crossings = 0;
  for (const auto& v : cert.violations)
    if (v.rule == lint::Rule::DataCrossesReconfig) ++crossings;
  ASSERT_EQ(crossings, 1u);  // the foreign load only; alt_a's own is exempt
  EXPECT_EQ(find_violation(cert, lint::Rule::DataCrossesReconfig)->first.label, "load alt_b");
}

TEST(MutationCorpus, Pdr107OperatorOverlap) {
  Mutant m;
  const std::size_t first = find_item(m.s, ItemKind::Compute, "CPU");
  const std::size_t second = find_item(m.s, ItemKind::Compute, "CPU", 1);
  ASSERT_NE(first, kNoItem);
  ASSERT_NE(second, kNoItem);
  const TimeNs duration = m.s.end(second) - m.s.start(second);
  m.s.set_start(second, m.s.start(first));
  m.s.set_end(second, m.s.start(second) + duration);

  const Certificate cert = m.verify();
  EXPECT_FALSE(cert.certified());
  const Violation* v = find_violation(cert, lint::Rule::OperatorOverlap);
  ASSERT_NE(v, nullptr) << cert.first_error();
  EXPECT_EQ(v->resource, "CPU");
  EXPECT_LT(v->overlap_from(), v->overlap_to());
}

TEST(MutationCorpus, Pdr108ForeignModuleLoad) {
  Mutant m;
  // Constraints declaring alt_a implemented for a *different* region: the
  // partial bitstream cannot fit D1.
  const aaa::ConstraintSet foreign = aaa::parse_constraints(R"(
    device XC2V2000
    region DX { }
    dynamic alt_a { region DX kind alt_a }
  )");
  verify::VerifyOptions options;
  options.constraints = &foreign;
  const Certificate bad = m.verify(options);
  EXPECT_FALSE(bad.certified());
  const Violation* v = find_violation(bad, lint::Rule::ForeignModuleLoad);
  ASSERT_NE(v, nullptr) << bad.first_error();
  EXPECT_EQ(v->resource, "D1");
  EXPECT_NE(v->message.find("'DX'"), std::string::npos);

  // The same schedule with constraints that match the floorplan certifies.
  const aaa::ConstraintSet matching = aaa::parse_constraints(R"(
    device XC2V2000
    region D1 { }
    dynamic alt_a { region D1 kind alt_a }
  )");
  options.constraints = &matching;
  EXPECT_TRUE(m.verify(options).certified());
}

TEST(MutationCorpus, ViolationsFlowThroughLintReport) {
  Mutant m;
  const std::size_t load = find_item(m.s, ItemKind::Reconfig, "D1");
  ASSERT_NE(load, kNoItem);
  m.s.set_module(load, "alt_b");
  m.s.set_label(load, "load alt_b");

  const lint::Report report = m.verify().to_report();
  EXPECT_TRUE(report.has(lint::Rule::StaleModuleExecution));
  EXPECT_GT(report.errors(), 0u);
  EXPECT_NE(report.to_text().find("PDR103"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"PDR103\""), std::string::npos);
  EXPECT_NE(report.to_text().find("[resource D1]"), std::string::npos);
}

// --- differential oracle ------------------------------------------------------

TEST(DifferentialOracle, FuzzedCertifiedSchedulesReplayWithZeroHazards) {
  const aaa::ArchitectureGraph arch = bench::bench_architecture(2, 2);
  const aaa::DurationTable durations = bench::bench_durations();
  const bench::GraphShape shapes[] = {bench::GraphShape::Layered, bench::GraphShape::Random,
                                      bench::GraphShape::Streaming};
  int verified = 0;
  for (std::uint64_t seed = 1; seed <= 54; ++seed) {
    bench::GeneratorConfig cfg;
    cfg.shape = shapes[seed % 3];
    cfg.n_ops = 40 + static_cast<int>(seed % 5) * 10;
    cfg.width = 6;
    cfg.fanout = 3;
    cfg.conditioned_every = 3;
    cfg.seed = seed;
    const aaa::AlgorithmGraph g = bench::generate_graph(cfg);

    aaa::Adequation adequation(g, arch, durations);
    adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
    aaa::AdequationOptions options;
    options.prefetch = seed % 2 == 0;
    if (seed % 4 == 0) options.preloaded["D1"] = "filt_a";
    const aaa::Schedule schedule = adequation.run(options);

    verify::VerifyOptions vo;
    vo.preloaded = options.preloaded;
    const Certificate cert = verify::verify_schedule(schedule, g, arch, vo);
    ASSERT_TRUE(cert.certified())
        << cfg.name() << " seed " << seed << ": " << cert.first_error();

    const aaa::Executive executive = aaa::generate_executive(schedule, g, arch);
    sim::ExecutivePlayer player(executive, arch);
    player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
    player.set_initial_residency(options.preloaded);
    const sim::PlayResult result = player.run(2);
    EXPECT_EQ(result.hazard_faults, 0)
        << cfg.name() << " seed " << seed << ": "
        << (result.hazards.empty() ? "" : result.hazards.front());
    ++verified;
  }
  EXPECT_EQ(verified, 54);
}

TEST(DifferentialOracle, BothHalvesAgreeOnAMutatedSchedule) {
  // Drop every load from a schedule that needs them: the static verifier
  // must reject (PDR102) and the player's runtime monitor must fault on
  // the very hazard the verifier predicted.
  bench::GeneratorConfig cfg;
  cfg.shape = bench::GraphShape::Layered;
  cfg.n_ops = 40;
  cfg.width = 6;
  cfg.fanout = 3;
  cfg.conditioned_every = 3;
  cfg.seed = 7;
  const aaa::AlgorithmGraph g = bench::generate_graph(cfg);
  const aaa::ArchitectureGraph arch = bench::bench_architecture(2, 2);
  const aaa::DurationTable durations = bench::bench_durations();
  aaa::Adequation adequation(g, arch, durations);
  adequation.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  aaa::Schedule schedule = adequation.run();
  ASSERT_GT(schedule.reconfig_count, 0);

  schedule.erase_items_if([](const ScheduledItem& i) { return i.kind == ItemKind::Reconfig; });

  const Certificate cert = verify::verify_schedule(schedule, g, arch);
  EXPECT_FALSE(cert.certified());
  EXPECT_NE(find_violation(cert, lint::Rule::UseBeforeConfigure), nullptr);

  const aaa::Executive executive = aaa::generate_executive(schedule, g, arch);
  sim::ExecutivePlayer player(executive, arch);
  player.set_reconfig_cost([](const std::string&, const std::string&) { return 100_us; });
  const sim::PlayResult result = player.run(1);
  EXPECT_GT(result.hazard_faults, 0);
  ASSERT_FALSE(result.hazards.empty());
  EXPECT_NE(result.hazards.front().find("never configured"), std::string::npos);
}

// --- rtr certified replay -----------------------------------------------------

synth::DesignBundle replay_bundle() {
  synth::ModularDesignFlow flow(fabric::device_by_name("XC2V2000"));
  flow.add_region("D1", {{"qpsk", "qpsk_mapper", {}}, {"qam16", "qam16_mapper", {}}});
  return flow.run();
}

TEST(CertifiedReplay, ConsumesDemandLoadsInOrderAndRejectsOverflow) {
  const synth::DesignBundle bundle = replay_bundle();
  rtr::BitstreamStore store(40e6, 1'000);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, rtr::ManagerConfig{}, store, policy);
  manager.enable_certified_replay({{"D1", {"qpsk", "qam16", "qpsk"}}});

  TimeNs now = 0;
  now = manager.request("D1", "qpsk", now).ready_at;   // load 1 of 3
  now = manager.request("D1", "qpsk", now).ready_at;   // resident: consumes nothing
  now = manager.request("D1", "qam16", now).ready_at;  // load 2 of 3
  now = manager.request("D1", "qpsk", now).ready_at;   // load 3 of 3
  try {
    manager.request("D1", "qam16", now);
    FAIL() << "a demand past the certified sequence must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the certified schedule"), std::string::npos)
        << e.what();
  }
}

TEST(CertifiedReplay, DivergingModuleThrowsWithBothNames) {
  const synth::DesignBundle bundle = replay_bundle();
  rtr::BitstreamStore store(40e6, 1'000);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, rtr::ManagerConfig{}, store, policy);
  manager.enable_certified_replay({{"D1", {"qam16"}}});
  try {
    manager.request("D1", "qpsk", 0);
    FAIL() << "a diverging demand must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("diverges"), std::string::npos) << what;
    EXPECT_NE(what.find("'qpsk'"), std::string::npos) << what;
    EXPECT_NE(what.find("'qam16'"), std::string::npos) << what;
  }
}

TEST(CertifiedReplay, MaintenanceLoadsAreExempt) {
  const synth::DesignBundle bundle = replay_bundle();
  rtr::BitstreamStore store(40e6, 1'000);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, rtr::ManagerConfig{}, store, policy);
  manager.enable_certified_replay({{"D1", {"qpsk", "qam16"}}});

  TimeNs now = manager.request("D1", "qpsk", 0).ready_at;  // load 1 of 2
  now = manager.scrub("D1", now);   // rewrites qpsk: repair, not schedule
  now = manager.blank("D1", now);   // eager unload: also exempt
  // The blank cleared residency, so re-demanding qpsk would be a real
  // (diverging) load; the certified sequence continues with qam16.
  EXPECT_NO_THROW(manager.request("D1", "qam16", now));
}

TEST(CertifiedReplay, StartupResidencyConsumesItsEntry) {
  const synth::DesignBundle bundle = replay_bundle();
  rtr::BitstreamStore store(40e6, 1'000);
  rtr::NonePrefetch policy;
  rtr::ReconfigManager manager(bundle, rtr::ManagerConfig{}, store, policy);
  manager.enable_certified_replay({{"D1", {"qpsk"}}});
  manager.set_resident("D1", "qpsk");  // the `load startup` path
  EXPECT_THROW(manager.request("D1", "qam16", 0), Error);
}

}  // namespace
}  // namespace pdr
