#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json documents bench_suite emits.

CI runs this after `bench_suite --smoke`: a benchmark run whose JSON is
missing keys, carries non-finite numbers, or serializes statistics for
zero samples is a harness bug, and should fail the job rather than
upload a broken artifact. Stdlib only.

Usage: check_bench_json.py BENCH_adequation.json [BENCH_explore.json ...]
"""

import json
import math
import sys


class SchemaError(Exception):
    pass


def require(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def check_finite_number(value, path):
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            path, f"expected a number, got {value!r}")
    require(math.isfinite(value), path, f"non-finite number {value!r}")


def check_stats(stats, path):
    require(isinstance(stats, dict), path, "expected an object")
    require("count" in stats, path, "missing 'count'")
    count = stats["count"]
    require(isinstance(count, int) and not isinstance(count, bool) and count >= 0,
            f"{path}.count", f"expected a non-negative integer, got {count!r}")
    # Count-gated fields: mean/min/max require >= 1 sample, stddev >= 2.
    # Their presence with too few samples means the emitter serialized a
    # fake statistic -- exactly the bug this validator exists to catch.
    for key in ("mean", "min", "max"):
        if count == 0:
            require(key not in stats, f"{path}.{key}", "present with count == 0")
        else:
            require(key in stats, f"{path}.{key}", f"missing with count == {count}")
            check_finite_number(stats[key], f"{path}.{key}")
    if count < 2:
        require("stddev" not in stats, f"{path}.stddev", f"present with count == {count}")
    else:
        require("stddev" in stats, f"{path}.stddev", f"missing with count == {count}")
        check_finite_number(stats["stddev"], f"{path}.stddev")
    if count > 0:
        require(stats["min"] <= stats["mean"] <= stats["max"],
                path, "min <= mean <= max violated")


def check_record(record, path):
    require(isinstance(record, dict), path, "expected an object")
    for key in ("name", "config", "repeats", "warmup", "wall_ms", "extra"):
        require(key in record, path, f"missing '{key}'")
    require(isinstance(record["name"], str) and record["name"],
            f"{path}.name", "expected a non-empty string")
    require(isinstance(record["config"], dict), f"{path}.config", "expected an object")
    for key, value in record["config"].items():
        require(isinstance(value, str), f"{path}.config.{key}", "config values are strings")
    require(isinstance(record["repeats"], int) and record["repeats"] >= 0,
            f"{path}.repeats", "expected a non-negative integer")
    warmup = record["warmup"]
    require(isinstance(warmup, dict), f"{path}.warmup", "expected an object")
    for key in ("runs", "ms"):
        require(key in warmup, f"{path}.warmup", f"missing '{key}'")
    require(isinstance(warmup["runs"], int) and warmup["runs"] >= 0,
            f"{path}.warmup.runs", "expected a non-negative integer")
    check_finite_number(warmup["ms"], f"{path}.warmup.ms")
    check_stats(record["wall_ms"], f"{path}.wall_ms")
    require(isinstance(record["extra"], dict), f"{path}.extra", "expected an object")
    for key, value in record["extra"].items():
        check_finite_number(value, f"{path}.extra.{key}")


def check_document(doc, path):
    require(isinstance(doc, dict), path, "expected a JSON object")
    for key in ("schema_version", "suite", "git_sha", "smoke", "records"):
        require(key in doc, path, f"missing '{key}'")
    require(doc["schema_version"] == 1, f"{path}.schema_version",
            f"unsupported version {doc['schema_version']!r}")
    require(isinstance(doc["suite"], str) and doc["suite"],
            f"{path}.suite", "expected a non-empty string")
    require(isinstance(doc["git_sha"], str) and doc["git_sha"],
            f"{path}.git_sha", "expected a non-empty string")
    require(isinstance(doc["smoke"], bool), f"{path}.smoke", "expected a boolean")
    require(isinstance(doc["records"], list), f"{path}.records", "expected an array")
    require(doc["records"], f"{path}.records", "no records -- the suite ran nothing")
    for i, record in enumerate(doc["records"]):
        check_record(record, f"{path}.records[{i}]")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            check_document(doc, path)
            print(f"{path}: ok ({len(doc['records'])} records, suite "
                  f"'{doc['suite']}', git {doc['git_sha']})")
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
