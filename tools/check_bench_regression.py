#!/usr/bin/env python3
"""Perf-regression gate over bench_suite's BENCH_*.json documents.

CI runs `bench_suite --smoke`, then compares its records against the
committed baseline at the repository root. A record regresses when its
wall-clock mean exceeds the baseline mean by more than the threshold
factor (default 3x -- smoke runs on shared CI hosts, so the gate only
catches order-of-magnitude breakage such as an accidental O(n^2) path,
not percent-level drift). Records are matched by their `name` field;
names present on only one side are reported and skipped, since the smoke
tier sizes a subset of the full-tier ladder. Stdlib only.

Usage:
  check_bench_regression.py BASELINE.json CANDIDATE.json [--threshold 3.0]

Exit status: 0 clean, 1 on any regression or if no record names overlap,
2 on malformed input.
"""

import argparse
import json
import sys


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    records = doc.get("records")
    if not isinstance(records, list):
        print(f"error: {path}: missing 'records' list", file=sys.stderr)
        sys.exit(2)
    out = {}
    for record in records:
        name = record.get("name")
        mean = record.get("wall_ms", {}).get("mean")
        if not isinstance(name, str) or not isinstance(mean, (int, float)):
            print(f"error: {path}: record without name/wall_ms.mean", file=sys.stderr)
            sys.exit(2)
        out[name] = float(mean)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json (the reference)")
    parser.add_argument("candidate", help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when candidate mean > threshold * baseline mean "
                             "(default: %(default)s)")
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    baseline = load_records(args.baseline)
    candidate = load_records(args.candidate)
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("error: no record names shared between baseline and candidate", file=sys.stderr)
        return 1

    regressions = 0
    width = max(len(name) for name in shared)
    for name in shared:
        ratio = candidate[name] / baseline[name] if baseline[name] > 0 else float("inf")
        verdict = "ok" if ratio <= args.threshold else "REGRESSION"
        if verdict != "ok":
            regressions += 1
        print(f"{name:<{width}}  baseline {baseline[name]:10.3f} ms  "
              f"candidate {candidate[name]:10.3f} ms  x{ratio:6.2f}  {verdict}")
    for name in sorted(set(baseline) ^ set(candidate)):
        side = "baseline" if name in baseline else "candidate"
        print(f"{name:<{width}}  ({side} only, skipped)")

    if regressions:
        print(f"\n{regressions} record(s) regressed past {args.threshold}x", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared record(s) within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
