#!/usr/bin/env python3
"""Schema validator for the JSON documents `pdrflow check --json` emits.

CI runs this over the shipped examples and the crafted-bad lint fixtures:
a report whose JSON drops a field, invents a rule code outside the PDRnnn
namespace, mis-counts its own severities, or breaks the canonical
diagnostic ordering would silently break every tool that diffs check
output — so it fails the job here instead. Stdlib only.

Validated contracts (mirrors lint::Report::to_json in
src/lint/diagnostic.cpp):

  - top level: {"diagnostics": [...], "errors": N, "warnings": M} and
    nothing else;
  - each diagnostic: exactly {code, severity, where, message, hint}, all
    strings, code matching ^PDR[0-9]{3}$, severity in {info, warning,
    error}, message non-empty;
  - errors/warnings equal a recount of the diagnostics array;
  - diagnostics are in canonical (code, where, message, hint) order —
    the byte-stability contract `pdrflow check --deep` diffs build on.

Usage: check_lint_json.py report.json [more.json ...]
"""

import json
import re
import sys

CODE_RE = re.compile(r"^PDR[0-9]{3}$")
SEVERITIES = ("info", "warning", "error")
DIAG_KEYS = ("code", "severity", "where", "message", "hint")
TOP_KEYS = ("diagnostics", "errors", "warnings")


class SchemaError(Exception):
    pass


def require(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def check_count(value, path):
    require(isinstance(value, int) and not isinstance(value, bool) and value >= 0,
            path, f"expected a non-negative integer, got {value!r}")


def check_diagnostic(diag, path):
    require(isinstance(diag, dict), path, "expected an object")
    for key in DIAG_KEYS:
        require(key in diag, path, f"missing '{key}'")
        require(isinstance(diag[key], str), f"{path}.{key}",
                f"expected a string, got {diag[key]!r}")
    for key in diag:
        require(key in DIAG_KEYS, path, f"unexpected key '{key}'")
    require(CODE_RE.match(diag["code"]), f"{path}.code",
            f"'{diag['code']}' is not a PDRnnn rule code")
    require(diag["severity"] in SEVERITIES, f"{path}.severity",
            f"'{diag['severity']}' not in {SEVERITIES}")
    require(diag["message"], f"{path}.message", "empty message")


def canonical_key(diag):
    return (diag["code"], diag["where"], diag["message"], diag["hint"])


def check_document(doc, path):
    require(isinstance(doc, dict), path, "expected a top-level object")
    for key in TOP_KEYS:
        require(key in doc, path, f"missing '{key}'")
    for key in doc:
        require(key in TOP_KEYS, path, f"unexpected top-level key '{key}'")
    diags = doc["diagnostics"]
    require(isinstance(diags, list), f"{path}.diagnostics", "expected an array")
    for i, diag in enumerate(diags):
        check_diagnostic(diag, f"{path}.diagnostics[{i}]")

    check_count(doc["errors"], f"{path}.errors")
    check_count(doc["warnings"], f"{path}.warnings")
    errors = sum(1 for d in diags if d["severity"] == "error")
    warnings = sum(1 for d in diags if d["severity"] == "warning")
    require(doc["errors"] == errors, f"{path}.errors",
            f"document says {doc['errors']}, diagnostics count {errors}")
    require(doc["warnings"] == warnings, f"{path}.warnings",
            f"document says {doc['warnings']}, diagnostics count {warnings}")

    keys = [canonical_key(d) for d in diags]
    require(keys == sorted(keys), f"{path}.diagnostics",
            "not in canonical (code, where, message, hint) order")


def check_file(path):
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as e:
            raise SchemaError(f"{path}: not valid JSON: {e}") from e
    check_document(doc, path)
    n = len(doc["diagnostics"])
    print(f"{path}: ok ({n} diagnostic(s), "
          f"{doc['errors']} error(s), {doc['warnings']} warning(s))")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        for path in argv[1:]:
            check_file(path)
    except SchemaError as e:
        print(f"check_lint_json: FAIL: {e}", file=sys.stderr)
        return 1
    except OSError as e:
        print(f"check_lint_json: FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
