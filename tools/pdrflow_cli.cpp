// pdrflow — command-line front end to the design flow.
//
// Usage:
//   pdrflow build <constraints-file> [--out DIR]
//       Parse a constraints file, run the Modular Design flow and write
//       floorplan report + partial bitstreams (+ blank bitstreams).
//   pdrflow check <constraints-or-project-file> [--json] [--werror] [--deep]
//       Run the static design-rule checker (pdr::lint) and print the
//       diagnostics; exits 1 if any error (or, with --werror, warning).
//       --deep adds pdr::verify's interval-based hazard certification
//       (the PDR1xx family) over the default schedule. A file whose
//       first directive is `fleet` is checked as a service request log
//       (the PDR12x family) against the case-study design.
//   pdrflow inspect <bitstream.bit> --device NAME
//       Validate a bitstream and print its packet structure.
//   pdrflow devices
//       List the supported device models.
//   pdrflow latency <constraints-file> [--bandwidth B/s]
//       Print per-module cold/staged reconfiguration latencies.
//   pdrflow simulate [--symbols N] [--prefetch none|schedule|history] ...
//       Run the MC-CDMA transmitter case study under the runtime manager.
//   pdrflow sweep [--jobs N] ...
//       Run a prefetch-policy × seed sweep (or, with --faults, a
//       fault-campaign seed sweep) through the parallel ScenarioRunner.
//   pdrflow serve --requests <log> [--devices N] [--jobs N] [--faults SPEC]
//       Drain a recorded reconfiguration-request log through the fleet
//       service (pdr::svc): sharded devices, bounded admission queues,
//       deadlines, circuit breakers and the shared single-flight
//       bitstream cache. Output is byte-identical for any --jobs value.
//   pdrflow explore <project-file> [--jobs N] [--top K]
//       Enumerate the schedule design space (mapping strategy × prefetch
//       × preloaded modules × variant selections), run every point
//       through the parallel ScenarioRunner and print the Pareto front
//       on (makespan, reconfiguration exposure).
//
// Every command is a thin layer of argument parsing over the pdr::flow
// pipeline presets: parsing, linting, synthesis, adequation and fault
// campaigns all run as cached pipeline stages, so e.g. `sweep` reuses one
// Modular Design bundle across all scenarios.
//
// `--jobs N` is accepted (and stripped) anywhere on the command line; it
// sizes the sweep's thread pool. Sweep output is byte-identical whatever
// N is — merging is deterministic and wall-clock goes to stderr only.
//
// `build`, `adequation`, `simulate` and `sweep` accept `--trace-out FILE`
// (Chrome trace-event JSON, open in https://ui.perfetto.dev) and
// `--metrics-out FILE` (metrics registry JSON dump).
//
// Unknown commands and flags are hard errors: a typo like `--prefech`
// aborts with the list of valid flags instead of being silently ignored.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "fabric/bitstream.hpp"
#include "aaa/explorer.hpp"
#include "fault/campaign.hpp"
#include "flow/explorer.hpp"
#include "flow/pipeline.hpp"
#include "flow/scenario.hpp"
#include "lint/lint.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/flow_presets.hpp"
#include "mccdma/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/planner.hpp"
#include "rtr/manager.hpp"
#include "svc/request_log.hpp"
#include "svc/service.hpp"
#include "svc/service_rules.hpp"
#include "util/arg_parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "verify/verify.hpp"

using namespace pdr;
using util::ArgParser;

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  pdrflow build <constraints-file> [--out DIR]\n"
      "  pdrflow check <constraints-or-project-file> [--json] [--werror] [--deep]\n"
      "  pdrflow inspect <bitstream.bit> --device NAME\n"
      "  pdrflow latency <constraints-file> [--bandwidth BYTES_PER_S]\n"
      "  pdrflow adequation <project-file> [--no-prefetch] [--reconfig-ms N]\n"
      "  pdrflow explore <project-file> [--top K] [--reconfig-ms N] [--max-points N]\n"
      "                  [--no-verify] [--floorplan] [--floorplan-candidates N] [--seed S]\n"
      "  pdrflow floorplan <project-file> [--seed S] [--rounds N] [--margin COLS]\n"
      "                    [--bandwidth BYTES_PER_S] [--baseline-width COLS] [--out FILE]\n"
      "  pdrflow simulate [--symbols N] [--seed S] [--prefetch none|schedule|history]\n"
      "                   [--cache BYTES] [--scrub-ms N]\n"
      "  pdrflow simulate --faults <spec-file> [--seed S] [--no-recovery]\n"
      "                   [--scrub-ms N] [--scrub-mode blind|readback] [--cache BYTES]\n"
      "  pdrflow sweep [--symbols N] [--seeds A,B,C] [--prefetch LIST]\n"
      "  pdrflow sweep --faults <spec-file> [--seeds A,B,C] [--no-recovery] [--scrub-ms N]\n"
      "  pdrflow serve --requests <log-file> [--devices N] [--queue N] [--tick-us N]\n"
      "                [--cache BYTES] [--faults <spec-file>] [--seed S] [--no-recovery]\n"
      "                [--no-degraded]\n"
      "  pdrflow devices\n"
      "--jobs N (anywhere) sizes the sweep/explore thread pool; output is identical for any N\n"
      "build/adequation/explore/simulate/sweep also accept --trace-out FILE --metrics-out FILE\n",
      stderr);
  return 2;
}

/// Throws a pdr::Error whose message is printed verbatim (after one
/// "pdrflow: " prefix) by main's catch block.
[[noreturn]] void fail(const std::string& message) { throw Error(message); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
  std::printf("  wrote %-40s (%s)\n", path.c_str(), human_bytes(data.size()).c_str());
}

/// Writes the tracer/metrics to the paths given by --trace-out /
/// --metrics-out, if present.
void write_observability(const ArgParser& args, const obs::Tracer& tracer,
                         const obs::MetricsRegistry& metrics) {
  if (const std::string* path = args.value("--trace-out")) {
    tracer.write_chrome_json(*path);
    std::printf("  wrote trace with %zu events to %s\n", tracer.size(), path->c_str());
  }
  if (const std::string* path = args.value("--metrics-out")) {
    metrics.write_json(*path);
    std::printf("  wrote %zu metrics to %s\n", metrics.names().size(), path->c_str());
  }
}

/// Prints a lint report (if non-empty) and returns true when it should
/// abort the command (any error).
bool report_blocks(const lint::Report& report, const char* what) {
  if (!report.empty()) std::fputs(report.to_text().c_str(), stderr);
  if (report.errors() == 0) return false;
  std::fprintf(stderr, "pdrflow: %s failed the design-rule check\n", what);
  return true;
}

aaa::PrefetchChoice parse_prefetch_flag(const std::string& s) {
  if (s == "none") return aaa::PrefetchChoice::None;
  if (s == "schedule") return aaa::PrefetchChoice::Schedule;
  if (s == "history") return aaa::PrefetchChoice::History;
  fail("flag '--prefetch' must be none|schedule|history, got '" + s + "'");
}

/// Strictly-parsed element of a --seeds list.
std::uint64_t parse_seed(const std::string& s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0')
    fail("'--seeds' needs unsigned integers, got '" + s + "'");
  return parsed;
}

int cmd_devices(int argc, char** argv) {
  const ArgParser args("devices", argc, argv, {}, 0);
  Table t({"device", "CLB array", "slices", "BRAM18", "MULT18", "frame bytes", "full bitstream"});
  for (const char* name : {"XC2V1000", "XC2V2000", "XC2V3000", "XC2V6000"}) {
    const fabric::DeviceModel d = fabric::device_by_name(name);
    t.row()
        .add(name)
        .add(strprintf("%dx%d", d.clb_rows, d.clb_cols))
        .add(d.total_slices())
        .add(d.total_brams())
        .add(d.total_mult18())
        .add(d.frame_bytes())
        .add(human_bytes(d.config_payload_bytes()));
  }
  t.print();
  return 0;
}

/// PDR12x pre-flight for a service request log, against the case-study
/// design (the bundle every `serve` fleet shards).
lint::Report check_request_log_against_case_study(const std::string& text) {
  flow::Pipeline pipeline = mccdma::constraints_pipeline(mccdma::case_study_constraints_text(),
                                                         mccdma::case_study_statics());
  const std::shared_ptr<const synth::DesignBundle> bundle = pipeline.bundle();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  rtr::NonePrefetch policy;
  const rtr::ReconfigManager manager(*bundle, rtr::sundance_manager_config(), store, policy);
  return svc::check_request_log_text(text, *bundle, manager);
}

int cmd_check(int argc, char** argv) {
  const ArgParser args("check", argc, argv,
                       {{"--json", false}, {"--werror", false}, {"--deep", false}}, 1);
  const std::string text = read_file(args.positional(0));
  // Dispatch on input kind: request logs get the PDR12x service family;
  // otherwise --deep adds pdr::verify's interval certification (the
  // PDR1xx hazard family) on top of the plain rule families.
  const lint::Report report = svc::looks_like_request_log(text)
                                  ? check_request_log_against_case_study(text)
                                  : (args.has("--deep") ? verify::deep_check_text(text)
                                                        : lint::check_text(text));
  if (args.has("--json")) {
    std::fputs(report.to_json().c_str(), stdout);
  } else if (report.empty()) {
    std::printf("%s: clean (0 diagnostics)\n", args.positional(0).c_str());
  } else {
    std::fputs(report.to_text().c_str(), stdout);
  }
  const bool failing = report.errors() > 0 || (args.has("--werror") && report.warnings() > 0);
  return failing ? 1 : 0;
}

int cmd_build(int argc, char** argv) {
  const ArgParser args("build", argc, argv,
                       {{"--out", true}, {"--trace-out", true}, {"--metrics-out", true}}, 1);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  flow::Pipeline pipeline = mccdma::constraints_pipeline(read_file(args.positional(0)));
  pipeline.set_observability(&tracer, &metrics);

  // Cheap constraint rules run first so a broken file reports every
  // violation (not just the first) before the flow spends time on it.
  if (report_blocks(*pipeline.lint_report(), "constraints file")) return 1;

  const std::string* out_flag = args.value("--out");
  const std::filesystem::path out_dir = out_flag ? *out_flag : "pdrflow_out";
  std::filesystem::create_directories(out_dir);

  const std::shared_ptr<const synth::DesignBundle> bundle = pipeline.bundle();
  std::fputs(bundle->floorplan.render().c_str(), stdout);

  Table t({"region", "variant", "slices", "fmax (MHz)", "bitstream", "% of device"});
  for (const auto& [region, variants] : bundle->dynamic_variants) {
    for (const auto& v : variants) {
      t.row()
          .add(region)
          .add(v.name)
          .add(v.usage.slices)
          .add(v.timing.fmax_mhz, 0)
          .add(human_bytes(v.bitstream.size()))
          .add(100.0 * bundle->floorplan.region_fraction(region), 1);
      write_file(out_dir / (v.name + "_partial.bit"), v.bitstream);
    }
  }
  t.print();
  write_file(out_dir / "initial_full.bit", bundle->initial_bitstream);
  write_observability(args, tracer, metrics);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  const ArgParser args("inspect", argc, argv, {{"--device", true}}, 1);
  const std::string* device_name = args.value("--device");
  if (device_name == nullptr) fail("'inspect' requires --device NAME");
  const fabric::DeviceModel device = fabric::device_by_name(*device_name);

  const std::string blob = read_file(args.positional(0));
  const std::vector<std::uint8_t> stream(blob.begin(), blob.end());
  std::puts(fabric::describe_bitstream(device, stream).c_str());

  const auto actions = fabric::decode_packets(device, stream);
  Table t({"packet", "register", "payload words", "detail"});
  int i = 0;
  for (const auto& a : actions) {
    std::string detail;
    if (a.reg == fabric::ConfigReg::Far && !a.payload.empty())
      detail = fabric::FrameAddress::decode(a.payload[0]).to_string();
    if (a.reg == fabric::ConfigReg::Idcode && !a.payload.empty())
      detail = strprintf("0x%08x", a.payload[0]);
    const char* reg_name = a.reg == fabric::ConfigReg::Crc      ? "CRC"
                           : a.reg == fabric::ConfigReg::Far    ? "FAR"
                           : a.reg == fabric::ConfigReg::Fdri   ? "FDRI"
                           : a.reg == fabric::ConfigReg::Cmd    ? "CMD"
                           : a.reg == fabric::ConfigReg::Idcode ? "IDCODE"
                                                                : "?";
    t.row().add(i++).add(reg_name).add(std::uint64_t{a.payload.size()}).add(detail);
  }
  t.print();
  return 0;
}

int cmd_latency(int argc, char** argv) {
  const ArgParser args("latency", argc, argv, {{"--bandwidth", true}}, 1);
  const double bandwidth = args.double_or("--bandwidth", mccdma::kCaseStudyStoreBandwidth);

  flow::Pipeline pipeline = mccdma::constraints_pipeline(read_file(args.positional(0)));
  const std::shared_ptr<const aaa::ConstraintSet> constraints = pipeline.constraints();
  const std::shared_ptr<const synth::DesignBundle> bundle = pipeline.bundle();
  rtr::BitstreamStore store(bandwidth, mccdma::kCaseStudyStoreLatency);
  rtr::NonePrefetch policy;
  rtr::ManagerConfig cfg;
  cfg.manager =
      constraints->manager == aaa::Placement::Cpu ? aaa::Placement::Cpu : aaa::Placement::Fpga;
  cfg.builder = constraints->builder;
  cfg.port_kind = constraints->port == aaa::PortChoice::Icap        ? fabric::PortKind::Icap
                  : constraints->port == aaa::PortChoice::SelectMap ? fabric::PortKind::SelectMap
                                                                    : fabric::PortKind::Jtag;
  rtr::ReconfigManager manager(*bundle, cfg, store, policy);

  std::printf("memory bandwidth %.1f MB/s, port %s\n\n", bandwidth / 1e6,
              fabric::port_kind_name(cfg.port_kind));
  Table t({"region", "module", "cold (ms)", "staged (ms)", "staging (ms)"});
  for (const auto& [region, variants] : bundle->dynamic_variants)
    for (const auto& v : variants)
      t.row()
          .add(region)
          .add(v.name)
          .add(to_ms(manager.cold_load_latency(v.name)), 3)
          .add(to_ms(manager.staged_load_latency(v.name)), 3)
          .add(to_ms(manager.staging_time(v.name)), 3);
  t.print();
  return 0;
}

int cmd_adequation(int argc, char** argv) {
  const ArgParser args("adequation", argc, argv,
                       {{"--no-prefetch", false},
                        {"--reconfig-ms", true},
                        {"--trace-out", true},
                        {"--metrics-out", true}},
                       1);
  flow::PipelineOptions options;
  options.project_text = read_file(args.positional(0));
  options.reconfig_cost = static_cast<TimeNs>(args.double_or("--reconfig-ms", 4.0) * 1e6);
  options.prefetch = !args.has("--no-prefetch");
  options.lint_gate = false;  // the CLI prints the report itself and decides
  flow::Pipeline pipeline(std::move(options));

  const std::shared_ptr<const aaa::Project> project = pipeline.project();
  const std::shared_ptr<const flow::AdequationArtifacts> adeq = pipeline.adequation();

  // The schedule and executive rule families are cheap; the pipeline ran
  // them with the stage — print before anything looks authoritative.
  if (report_blocks(adeq->report, "schedule/executive")) return 1;

  std::printf("project '%s': %zu operations on %zu operators\n\n", project->name.c_str(),
              project->algorithm.size(), project->architecture.operators().size());
  std::fputs(adeq->schedule.to_string().c_str(), stdout);
  std::puts("");
  std::fputs(adeq->schedule.gantt().c_str(), stdout);
  std::puts("\nsynchronized executive:");
  std::fputs(adeq->executive.to_string().c_str(), stdout);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  aaa::export_schedule(adeq->schedule, tracer);
  metrics.counter("adequation.reconfigs").add(adeq->schedule.reconfig_count);
  metrics.gauge("adequation.makespan_ns").set(static_cast<double>(adeq->schedule.makespan));
  metrics.gauge("adequation.reconfig_exposed_ns")
      .set(static_cast<double>(adeq->schedule.reconfig_exposed));
  write_observability(args, tracer, metrics);
  return 0;
}

/// `explore`: enumerate the schedule design space of a project file and
/// print the Pareto front on (makespan, reconfiguration exposure). The
/// per-point bodies run on the ScenarioRunner pool; stdout is
/// byte-identical for any --jobs value.
int cmd_explore(int argc, char** argv, int jobs) {
  const ArgParser args("explore", argc, argv,
                       {{"--top", true},
                        {"--reconfig-ms", true},
                        {"--max-points", true},
                        {"--no-verify", false},
                        {"--floorplan", false},
                        {"--floorplan-candidates", true},
                        {"--seed", true},
                        {"--trace-out", true},
                        {"--metrics-out", true}},
                       1);
  flow::PipelineOptions options;
  options.project_text = read_file(args.positional(0));
  flow::Pipeline pipeline(std::move(options));
  const std::shared_ptr<const aaa::Project> project = pipeline.project();

  flow::ExplorerOptions explorer_options;
  explorer_options.jobs = jobs;
  explorer_options.reconfig_cost = static_cast<TimeNs>(args.double_or("--reconfig-ms", 4.0) * 1e6);
  explorer_options.max_points =
      static_cast<std::size_t>(args.uint_or("--max-points", explorer_options.max_points));
  explorer_options.static_pruning = !args.has("--no-verify");

  aaa::ExplorationSpace space = aaa::ExplorationSpace::from_project(*project);
  if (args.has("--floorplan")) {
    // The planner runs once, serially, before the sweep; the axis carries
    // only priced choices, so --jobs never touches the plan itself.
    plan::PlanOptions plan_options;
    plan_options.seed = args.uint_or("--seed", plan_options.seed);
    space.floorplans = plan::floorplan_axis(
        *project, plan_options,
        static_cast<std::size_t>(args.uint_or("--floorplan-candidates", 3)));
  }

  const flow::DesignSpaceExplorer explorer(*project, space, explorer_options);
  const flow::ExplorationReport report = explorer.run();

  std::printf("project '%s': %zu operations on %zu operators\n", project->name.c_str(),
              project->algorithm.size(), project->architecture.operators().size());
  std::fputs(report.to_string(static_cast<std::size_t>(args.uint_or("--top", 0))).c_str(), stdout);
  std::fprintf(stderr, "explore: %zu points, jobs=%d, %.0f ms wall, %zu pruned, %zu failed\n",
               report.points.size(), jobs, report.sweep.wall_ms, report.pruned_points(),
               report.failed_points());
  write_observability(args, report.sweep.trace, report.sweep.metrics);
  // Infeasible points are expected (the space is exhaustive); an empty
  // front means nothing scheduled at all — that is the failure.
  return report.pareto.empty() ? 1 : 0;
}

int cmd_floorplan(int argc, char** argv) {
  const ArgParser args("floorplan", argc, argv,
                       {{"--seed", true},
                        {"--rounds", true},
                        {"--margin", true},
                        {"--bandwidth", true},
                        {"--baseline-width", true},
                        {"--out", true}},
                       1);
  flow::PipelineOptions options;
  options.project_text = read_file(args.positional(0));
  flow::Pipeline pipeline(std::move(options));
  const std::shared_ptr<const aaa::Project> project = pipeline.project();

  plan::PlanOptions plan_options;
  plan_options.seed = args.uint_or("--seed", plan_options.seed);
  plan_options.max_rounds = static_cast<int>(args.uint_or("--rounds", plan_options.max_rounds));
  plan_options.margin_cols = static_cast<int>(args.uint_or("--margin", plan_options.margin_cols));
  plan_options.store_bandwidth_bytes_per_s =
      args.double_or("--bandwidth", plan_options.store_bandwidth_bytes_per_s);

  const plan::PlanResult result = plan::plan_floorplan(*project, plan_options);
  std::fputs(result.to_string().c_str(), stdout);

  // --baseline-width N: price a hand-written uniform width the same way
  // and report the comparison (the paper's case study hand-places D1 at 5
  // CLB columns).
  if (args.has("--baseline-width")) {
    const int baseline = static_cast<int>(args.uint_or("--baseline-width", 5));
    std::map<std::string, int> widths;
    for (const auto& r : result.regions) widths[r.name] = baseline;
    const plan::PlanResult fixed = plan::plan_fixed(*project, widths, plan_options);
    std::printf("baseline (uniform width %d): makespan %.3f ms, reconfig exposed %.3f ms\n",
                baseline, static_cast<double>(fixed.makespan) / 1e6,
                static_cast<double>(fixed.reconfig_exposed) / 1e6);
    std::printf("planned vs baseline: %+.3f ms makespan\n",
                static_cast<double>(result.makespan - fixed.makespan) / 1e6);
  }

  std::fputs("\nconstraints fragment:\n", stdout);
  std::fputs(result.constraints_fragment().c_str(), stdout);
  if (const std::string* out_path = args.value("--out")) {
    std::ofstream out(*out_path, std::ios::binary);
    if (!out.good()) fail("cannot write '" + *out_path + "'");
    out << result.constraints_fragment();
    std::fprintf(stderr, "floorplan: wrote %s\n", out_path->c_str());
  }
  std::fprintf(stderr, "floorplan: %zu region(s), %d rounds, %d schedules evaluated\n",
               result.regions.size(), result.rounds, result.evaluated);
  return (result.lint.errors() == 0 && result.certified) ? 0 : 1;
}

/// Maps the simulate/sweep fault flags onto pipeline FaultCampaignOptions.
/// The manager_tag keys the opaque ManagerConfig for the artifact cache.
flow::FaultCampaignOptions fault_options_from(const ArgParser& args) {
  flow::FaultCampaignOptions opts;
  opts.seed = args.uint_or("--seed", 0);  // 0 = the spec's own seed
  opts.recovery = !args.has("--no-recovery");
  opts.manager = rtr::sundance_manager_config();
  opts.manager_tag = "sundance";
  if (args.has("--cache")) {
    opts.manager.cache_capacity = static_cast<Bytes>(args.uint_or("--cache", 0));
    opts.manager_tag += strprintf("/cache=%llu",
                                  static_cast<unsigned long long>(opts.manager.cache_capacity));
  }
  if (args.has("--scrub-ms"))
    opts.scrub_period = static_cast<TimeNs>(args.double_or("--scrub-ms", 0.0) * 1e6);
  if (const std::string* mode = args.value("--scrub-mode")) {
    if (*mode == "blind")
      opts.scrub_mode = fault::ScrubScheduler::Mode::Blind;
    else if (*mode == "readback")
      opts.scrub_mode = fault::ScrubScheduler::Mode::ReadbackTriggered;
    else
      fail("flag '--scrub-mode' must be blind|readback, got '" + *mode + "'");
  }
  return opts;
}

/// `simulate --faults`: a seeded fault-injection campaign on the case
/// study's design bundle instead of the symbol-level transmitter run.
/// The printed report is bit-identical for the same (spec, seed) pair.
int simulate_faults(const ArgParser& args) {
  const flow::FaultCampaignOptions opts = fault_options_from(args);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  flow::Pipeline pipeline = mccdma::constraints_pipeline(mccdma::case_study_constraints_text(),
                                                         mccdma::case_study_statics());
  pipeline.set_observability(&tracer, &metrics);
  const std::shared_ptr<const fault::CampaignReport> report =
      pipeline.fault_campaign(read_file(*args.value("--faults")), opts);
  std::fputs(report->to_string().c_str(), stdout);
  write_observability(args, tracer, metrics);
  // With recovery on, any region left unhealthy is a failed campaign.
  return opts.recovery && !report->all_healthy() ? 1 : 0;
}

int cmd_simulate(int argc, char** argv) {
  const ArgParser args("simulate", argc, argv,
                       {{"--symbols", true},
                        {"--seed", true},
                        {"--prefetch", true},
                        {"--cache", true},
                        {"--scrub-ms", true},
                        {"--scrub-mode", true},
                        {"--faults", true},
                        {"--no-recovery", false},
                        {"--trace-out", true},
                        {"--metrics-out", true}},
                       0);
  if (args.has("--faults")) return simulate_faults(args);
  if (args.has("--no-recovery") || args.has("--scrub-mode"))
    fail("flags '--no-recovery' and '--scrub-mode' require '--faults <spec-file>'");
  const std::size_t n_symbols = static_cast<std::size_t>(args.uint_or("--symbols", 4096));

  // The case study's own constraints pass through the linter first — the
  // cheap rule families guard every simulation entry point.
  flow::Pipeline gate = mccdma::constraints_pipeline(mccdma::case_study_constraints_text());
  if (report_blocks(*gate.lint_report(), "case-study constraints")) return 1;

  mccdma::SystemConfig config;
  config.manager = rtr::sundance_manager_config();
  config.seed = args.uint_or("--seed", config.seed);
  if (args.has("--cache"))
    config.manager.cache_capacity = static_cast<Bytes>(args.uint_or("--cache", 0));
  if (args.has("--scrub-ms"))
    config.scrub_period = static_cast<TimeNs>(args.double_or("--scrub-ms", 0.0) * 1e6);
  if (const std::string* prefetch = args.value("--prefetch"))
    config.prefetch = parse_prefetch_flag(*prefetch);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  config.tracer = &tracer;
  config.metrics = &metrics;

  mccdma::TransmitterSystem system(mccdma::shared_case_study(), config);
  const mccdma::SystemReport report = system.run(n_symbols);
  std::fputs(mccdma::format_system_report(report, config).c_str(), stdout);

  write_observability(args, tracer, metrics);
  return 0;
}

/// `sweep`: N independent scenarios through the parallel ScenarioRunner.
/// Default: prefetch {none,schedule,history} × seeds {42,43,44} — nine
/// transmitter runs. With --faults, one campaign per seed instead.
/// stdout (the combined report) is byte-identical for any --jobs value.
int cmd_sweep(int argc, char** argv, int jobs) {
  const ArgParser args("sweep", argc, argv,
                       {{"--symbols", true},
                        {"--seeds", true},
                        {"--prefetch", true},
                        {"--faults", true},
                        {"--no-recovery", false},
                        {"--scrub-ms", true},
                        {"--scrub-mode", true},
                        {"--cache", true},
                        {"--trace-out", true},
                        {"--metrics-out", true}},
                       0);
  std::vector<std::uint64_t> seeds;
  for (const std::string& s : args.list_or("--seeds", {"42", "43", "44"}))
    seeds.push_back(parse_seed(s));

  std::vector<flow::Scenario> scenarios;
  if (const std::string* spec_path = args.value("--faults")) {
    const std::string spec_text = read_file(*spec_path);
    flow::FaultCampaignOptions opts = fault_options_from(args);
    for (const std::uint64_t seed : seeds) {
      opts.seed = seed;
      scenarios.push_back(mccdma::campaign_scenario(
          strprintf("faults/seed=%llu", static_cast<unsigned long long>(seed)), spec_text, opts));
    }
  } else {
    if (args.has("--no-recovery") || args.has("--scrub-mode") || args.has("--cache"))
      fail("flags '--no-recovery', '--scrub-mode' and '--cache' require '--faults <spec-file>'");
    const auto symbols = static_cast<std::size_t>(args.uint_or("--symbols", 2048));
    const std::vector<std::string> policies =
        args.list_or("--prefetch", {"none", "schedule", "history"});
    for (const std::string& policy : policies) {
      for (const std::uint64_t seed : seeds) {
        mccdma::SystemConfig config =
            mccdma::sweep_system_config(parse_prefetch_flag(policy), seed);
        if (args.has("--scrub-ms"))
          config.scrub_period = static_cast<TimeNs>(args.double_or("--scrub-ms", 0.0) * 1e6);
        scenarios.push_back(mccdma::transmitter_scenario(
            strprintf("prefetch=%s/seed=%llu", policy.c_str(),
                      static_cast<unsigned long long>(seed)),
            config, symbols));
      }
    }
  }

  // Warm the shared bundle once, on this thread, so the workers start
  // from a hot artifact cache instead of serializing on the first build.
  mccdma::shared_case_study();

  const flow::ScenarioRunner runner(jobs);
  const flow::SweepResult sweep = runner.run(scenarios);
  std::fputs(sweep.combined_report().c_str(), stdout);
  std::fprintf(stderr, "sweep: %zu scenarios, jobs=%d, %.0f ms wall, %zu failed\n",
               sweep.results.size(), runner.jobs(), sweep.wall_ms, sweep.failures());
  write_observability(args, sweep.trace, sweep.metrics);
  return sweep.failures() == 0 ? 0 : 1;
}

/// `serve`: drain a recorded request log through the fleet service.
/// stdout (the service report) is byte-identical for any --jobs value —
/// the determinism CI pins with a byte diff.
int cmd_serve(int argc, char** argv, int jobs) {
  const ArgParser args("serve", argc, argv,
                       {{"--requests", true},
                        {"--devices", true},
                        {"--queue", true},
                        {"--tick-us", true},
                        {"--cache", true},
                        {"--faults", true},
                        {"--seed", true},
                        {"--no-recovery", false},
                        {"--no-degraded", false},
                        {"--trace-out", true},
                        {"--metrics-out", true}},
                       0);
  const std::string* requests_path = args.value("--requests");
  if (requests_path == nullptr) fail("'serve' requires --requests <log-file>");

  flow::Pipeline pipeline = mccdma::constraints_pipeline(mccdma::case_study_constraints_text(),
                                                         mccdma::case_study_statics());
  const std::shared_ptr<const synth::DesignBundle> bundle = pipeline.bundle();

  svc::RequestLog log = svc::parse_request_log(read_file(*requests_path));
  if (args.has("--devices")) {
    const auto devices = args.uint_or("--devices", 0);
    if (devices < 1) fail("flag '--devices' must be >= 1");
    log.devices = static_cast<int>(devices);
  }

  svc::ServiceConfig config;
  config.jobs = jobs;
  config.manager = rtr::sundance_manager_config();
  config.manager.recovery.enabled = !args.has("--no-recovery");
  config.store_bandwidth_bytes_per_s = mccdma::kCaseStudyStoreBandwidth;
  config.store_latency = mccdma::kCaseStudyStoreLatency;
  if (args.has("--queue"))
    config.queue_capacity = static_cast<std::size_t>(args.uint_or("--queue", 8));
  if (args.has("--tick-us"))
    config.tick = static_cast<TimeNs>(args.double_or("--tick-us", 1000.0) * 1e3);
  if (args.has("--cache"))
    config.fleet_cache_capacity = static_cast<Bytes>(args.uint_or("--cache", 0));
  config.degraded_routes = !args.has("--no-degraded");
  config.fault_seed = args.uint_or("--seed", 0);

  // PDR12x pre-flight: a log that would misroute or trivially time out
  // never reaches the fleet.
  {
    rtr::BitstreamStore lint_store = mccdma::make_case_study_store();
    rtr::NonePrefetch lint_policy;
    const rtr::ReconfigManager lint_manager(*bundle, config.manager, lint_store, lint_policy);
    if (report_blocks(svc::check_request_log(log, *bundle, lint_manager), "request log")) return 1;
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  svc::FleetService service(*bundle, config);
  service.set_observability(&tracer, &metrics);
  if (const std::string* spec_path = args.value("--faults"))
    service.arm_faults(fault::parse_fault_spec(read_file(*spec_path)));
  const svc::ServiceReport report = service.run(log);
  std::fputs(report.to_string().c_str(), stdout);
  std::fprintf(stderr, "serve: %zu requests on %d device(s), jobs=%d\n", report.records.size(),
               report.devices, jobs);
  write_observability(args, tracer, metrics);
  // A clean drain exits 0. Under an armed fault campaign, failures are
  // the point of the exercise, not a broken run.
  return (args.has("--faults") || report.failed == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Global flag, stripped before command dispatch.
    const int jobs = flow::jobs_from_argv(argc, argv, 1);
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "devices") return cmd_devices(argc - 2, argv + 2);
    if (cmd == "build") return cmd_build(argc - 2, argv + 2);
    if (cmd == "check") return cmd_check(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "latency") return cmd_latency(argc - 2, argv + 2);
    if (cmd == "adequation") return cmd_adequation(argc - 2, argv + 2);
    if (cmd == "explore") return cmd_explore(argc - 2, argv + 2, jobs);
    if (cmd == "floorplan") return cmd_floorplan(argc - 2, argv + 2);
    if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (cmd == "sweep") return cmd_sweep(argc - 2, argv + 2, jobs);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2, jobs);
    std::fprintf(stderr, "pdrflow: unknown command '%s'\n", cmd.c_str());
  } catch (const pdr::Error& e) {
    std::fprintf(stderr, "pdrflow: %s\n", e.what());
    return 1;
  }
  return usage();
}
