// pdrflow — command-line front end to the design flow.
//
// Usage:
//   pdrflow build <constraints-file> [--out DIR]
//       Parse a constraints file, run the Modular Design flow and write
//       floorplan report + partial bitstreams (+ blank bitstreams).
//   pdrflow inspect <bitstream.bit> --device NAME
//       Validate a bitstream and print its packet structure.
//   pdrflow devices
//       List the supported device models.
//   pdrflow latency <constraints-file> [--bandwidth B/s]
//       Print per-module cold/staged reconfiguration latencies.
//   pdrflow simulate [--symbols N] [--prefetch none|schedule|history] ...
//       Run the MC-CDMA transmitter case study under the runtime manager.
//
// `build`, `adequation` and `simulate` accept `--trace-out FILE`
// (Chrome trace-event JSON, open in https://ui.perfetto.dev) and
// `--metrics-out FILE` (metrics registry JSON dump).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "fabric/bitstream.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/manager.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  pdrflow build <constraints-file> [--out DIR]\n"
      "  pdrflow inspect <bitstream.bit> --device NAME\n"
      "  pdrflow latency <constraints-file> [--bandwidth BYTES_PER_S]\n"
      "  pdrflow adequation <project-file> [--no-prefetch] [--reconfig-ms N]\n"
      "  pdrflow simulate [--symbols N] [--seed S] [--prefetch none|schedule|history]\n"
      "                   [--cache BYTES] [--scrub-ms N]\n"
      "  pdrflow devices\n"
      "build/adequation/simulate also accept --trace-out FILE --metrics-out FILE\n",
      stderr);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PDR_CHECK(in.good(), "pdrflow", "cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
  std::printf("  wrote %-40s (%s)\n", path.c_str(), human_bytes(data.size()).c_str());
}

const char* find_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return nullptr;
}

/// Writes the tracer/metrics to the paths given by --trace-out /
/// --metrics-out, if present.
void write_observability(int argc, char** argv, const obs::Tracer& tracer,
                         const obs::MetricsRegistry& metrics) {
  if (const char* path = find_flag(argc, argv, "--trace-out")) {
    tracer.write_chrome_json(path);
    std::printf("  wrote trace with %zu events to %s\n", tracer.size(), path);
  }
  if (const char* path = find_flag(argc, argv, "--metrics-out")) {
    metrics.write_json(path);
    std::printf("  wrote %zu metrics to %s\n", metrics.names().size(), path);
  }
}

int cmd_devices() {
  Table t({"device", "CLB array", "slices", "BRAM18", "MULT18", "frame bytes", "full bitstream"});
  for (const char* name : {"XC2V1000", "XC2V2000", "XC2V3000", "XC2V6000"}) {
    const fabric::DeviceModel d = fabric::device_by_name(name);
    t.row()
        .add(name)
        .add(strprintf("%dx%d", d.clb_rows, d.clb_cols))
        .add(d.total_slices())
        .add(d.total_brams())
        .add(d.total_mult18())
        .add(d.frame_bytes())
        .add(human_bytes(d.config_payload_bytes()));
  }
  t.print();
  return 0;
}

int cmd_build(int argc, char** argv) {
  if (argc < 1) return usage();
  const aaa::ConstraintSet constraints = aaa::parse_constraints(read_file(argv[0]));
  const char* out_flag = find_flag(argc, argv, "--out");
  const std::filesystem::path out_dir = out_flag ? out_flag : "pdrflow_out";
  std::filesystem::create_directories(out_dir);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const synth::DesignBundle bundle =
      mccdma::run_flow_from_constraints(constraints, {}, &tracer, &metrics);
  std::fputs(bundle.floorplan.render().c_str(), stdout);

  Table t({"region", "variant", "slices", "fmax (MHz)", "bitstream", "% of device"});
  for (const auto& [region, variants] : bundle.dynamic_variants) {
    for (const auto& v : variants) {
      t.row()
          .add(region)
          .add(v.name)
          .add(v.usage.slices)
          .add(v.timing.fmax_mhz, 0)
          .add(human_bytes(v.bitstream.size()))
          .add(100.0 * bundle.floorplan.region_fraction(region), 1);
      write_file(out_dir / (v.name + "_partial.bit"), v.bitstream);
    }
  }
  t.print();
  write_file(out_dir / "initial_full.bit", bundle.initial_bitstream);
  write_observability(argc, argv, tracer, metrics);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* device_name = find_flag(argc, argv, "--device");
  if (device_name == nullptr) return usage();
  const fabric::DeviceModel device = fabric::device_by_name(device_name);

  const std::string blob = read_file(argv[0]);
  const std::vector<std::uint8_t> stream(blob.begin(), blob.end());
  std::puts(fabric::describe_bitstream(device, stream).c_str());

  const auto actions = fabric::decode_packets(device, stream);
  Table t({"packet", "register", "payload words", "detail"});
  int i = 0;
  for (const auto& a : actions) {
    std::string detail;
    if (a.reg == fabric::ConfigReg::Far && !a.payload.empty())
      detail = fabric::FrameAddress::decode(a.payload[0]).to_string();
    if (a.reg == fabric::ConfigReg::Idcode && !a.payload.empty())
      detail = strprintf("0x%08x", a.payload[0]);
    const char* reg_name = a.reg == fabric::ConfigReg::Crc      ? "CRC"
                           : a.reg == fabric::ConfigReg::Far    ? "FAR"
                           : a.reg == fabric::ConfigReg::Fdri   ? "FDRI"
                           : a.reg == fabric::ConfigReg::Cmd    ? "CMD"
                           : a.reg == fabric::ConfigReg::Idcode ? "IDCODE"
                                                                : "?";
    t.row().add(i++).add(reg_name).add(std::uint64_t{a.payload.size()}).add(detail);
  }
  t.print();
  return 0;
}

int cmd_latency(int argc, char** argv) {
  if (argc < 1) return usage();
  const aaa::ConstraintSet constraints = aaa::parse_constraints(read_file(argv[0]));
  const char* bw_flag = find_flag(argc, argv, "--bandwidth");
  const double bandwidth = bw_flag ? std::stod(bw_flag) : mccdma::kCaseStudyStoreBandwidth;

  const synth::DesignBundle bundle = mccdma::run_flow_from_constraints(constraints, {});
  rtr::BitstreamStore store(bandwidth, mccdma::kCaseStudyStoreLatency);
  rtr::NonePrefetch policy;
  rtr::ManagerConfig cfg;
  cfg.manager =
      constraints.manager == aaa::Placement::Cpu ? aaa::Placement::Cpu : aaa::Placement::Fpga;
  cfg.builder = constraints.builder;
  cfg.port_kind = constraints.port == aaa::PortChoice::Icap        ? fabric::PortKind::Icap
                  : constraints.port == aaa::PortChoice::SelectMap ? fabric::PortKind::SelectMap
                                                                   : fabric::PortKind::Jtag;
  rtr::ReconfigManager manager(bundle, cfg, store, policy);

  std::printf("memory bandwidth %.1f MB/s, port %s\n\n", bandwidth / 1e6,
              fabric::port_kind_name(cfg.port_kind));
  Table t({"region", "module", "cold (ms)", "staged (ms)", "staging (ms)"});
  for (const auto& [region, variants] : bundle.dynamic_variants)
    for (const auto& v : variants)
      t.row()
          .add(region)
          .add(v.name)
          .add(to_ms(manager.cold_load_latency(v.name)), 3)
          .add(to_ms(manager.staged_load_latency(v.name)), 3)
          .add(to_ms(manager.staging_time(v.name)), 3);
  t.print();
  return 0;
}

int cmd_adequation(int argc, char** argv) {
  if (argc < 1) return usage();
  const aaa::Project project = aaa::parse_project(read_file(argv[0]));

  aaa::Adequation adequation(project.algorithm, project.architecture, project.durations);
  const char* ms_flag = find_flag(argc, argv, "--reconfig-ms");
  const TimeNs reconfig = ms_flag ? static_cast<TimeNs>(std::stod(ms_flag) * 1e6) : 4'000'000;
  adequation.set_reconfig_cost(
      [reconfig](const std::string&, const std::string&) { return reconfig; });

  aaa::AdequationOptions options;
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], "--no-prefetch") == 0) options.prefetch = false;

  const aaa::Schedule schedule = adequation.run(options);
  aaa::validate_schedule(schedule, project.algorithm, project.architecture);
  std::printf("project '%s': %zu operations on %zu operators\n\n", project.name.c_str(),
              project.algorithm.size(), project.architecture.operators().size());
  std::fputs(schedule.to_string().c_str(), stdout);
  std::puts("");
  std::fputs(schedule.gantt().c_str(), stdout);
  std::puts("\nsynchronized executive:");
  const aaa::Executive executive =
      aaa::generate_executive(schedule, project.algorithm, project.architecture);
  std::fputs(executive.to_string().c_str(), stdout);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  aaa::export_schedule(schedule, tracer);
  metrics.counter("adequation.reconfigs").add(schedule.reconfig_count);
  metrics.gauge("adequation.makespan_ns").set(static_cast<double>(schedule.makespan));
  metrics.gauge("adequation.reconfig_exposed_ns").set(static_cast<double>(schedule.reconfig_exposed));
  write_observability(argc, argv, tracer, metrics);
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  const char* symbols_flag = find_flag(argc, argv, "--symbols");
  const std::size_t n_symbols = symbols_flag ? std::stoul(symbols_flag) : 4096;

  mccdma::SystemConfig config;
  config.manager = rtr::sundance_manager_config();
  if (const char* seed = find_flag(argc, argv, "--seed")) config.seed = std::stoull(seed);
  if (const char* cache = find_flag(argc, argv, "--cache"))
    config.manager.cache_capacity = static_cast<Bytes>(std::stoull(cache));
  if (const char* scrub = find_flag(argc, argv, "--scrub-ms"))
    config.scrub_period = static_cast<TimeNs>(std::stod(scrub) * 1e6);
  if (const char* prefetch = find_flag(argc, argv, "--prefetch")) {
    if (std::strcmp(prefetch, "none") == 0)
      config.prefetch = aaa::PrefetchChoice::None;
    else if (std::strcmp(prefetch, "schedule") == 0)
      config.prefetch = aaa::PrefetchChoice::Schedule;
    else if (std::strcmp(prefetch, "history") == 0)
      config.prefetch = aaa::PrefetchChoice::History;
    else
      return usage();
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  config.tracer = &tracer;
  config.metrics = &metrics;

  const mccdma::CaseStudy cs = mccdma::build_case_study();
  mccdma::TransmitterSystem system(cs, config);
  const mccdma::SystemReport report = system.run(n_symbols);

  std::printf("MC-CDMA transmitter, %zu symbols, prefetch=%s\n\n", report.symbols,
              aaa::to_keyword(config.prefetch));
  Table t({"metric", "value"});
  t.row().add("elapsed (ms)").add(to_ms(report.elapsed), 3);
  t.row().add("stall (ms)").add(to_ms(report.stall_total), 3);
  t.row().add("stall fraction (%)").add(100.0 * report.stall_fraction(), 2);
  t.row().add("throughput (Mb/s)").add(report.throughput_bps() / 1e6, 2);
  t.row().add("modulation switches").add(report.switches);
  t.row().add("mean SNR (dB)").add(report.mean_snr_db, 1);
  t.print();

  const rtr::ManagerStats& m = report.manager;
  std::puts("\nreconfiguration manager:");
  Table mt({"stat", "value"});
  mt.row().add("requests").add(m.requests);
  mt.row().add("already loaded").add(m.already_loaded);
  mt.row().add("prefetch hits").add(m.prefetch_hits);
  mt.row().add("prefetch in-flight").add(m.prefetch_inflight);
  mt.row().add("cache hits").add(m.cache_hits);
  mt.row().add("misses").add(m.misses);
  mt.row().add("prefetches issued").add(m.prefetches_issued);
  mt.row().add("prefetches wasted").add(m.prefetches_wasted);
  mt.row().add("scrubs").add(m.scrubs);
  mt.row().add("blanks").add(m.blanks);
  mt.row().add("total load time (ms)").add(to_ms(m.total_load_time), 3);
  mt.row().add("bytes loaded").add(human_bytes(m.bytes_loaded));
  mt.print();

  write_observability(argc, argv, tracer, metrics);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "devices") return cmd_devices();
    if (cmd == "build") return cmd_build(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "latency") return cmd_latency(argc - 2, argv + 2);
    if (cmd == "adequation") return cmd_adequation(argc - 2, argv + 2);
    if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
  } catch (const pdr::Error& e) {
    std::fprintf(stderr, "pdrflow: %s\n", e.what());
    return 1;
  }
  return usage();
}
