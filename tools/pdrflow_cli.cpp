// pdrflow — command-line front end to the design flow.
//
// Usage:
//   pdrflow build <constraints-file> [--out DIR]
//       Parse a constraints file, run the Modular Design flow and write
//       floorplan report + partial bitstreams (+ blank bitstreams).
//   pdrflow check <constraints-or-project-file> [--json] [--werror]
//       Run the static design-rule checker (pdr::lint) and print the
//       diagnostics; exits 1 if any error (or, with --werror, warning).
//   pdrflow inspect <bitstream.bit> --device NAME
//       Validate a bitstream and print its packet structure.
//   pdrflow devices
//       List the supported device models.
//   pdrflow latency <constraints-file> [--bandwidth B/s]
//       Print per-module cold/staged reconfiguration latencies.
//   pdrflow simulate [--symbols N] [--prefetch none|schedule|history] ...
//       Run the MC-CDMA transmitter case study under the runtime manager.
//
// `build`, `adequation` and `simulate` accept `--trace-out FILE`
// (Chrome trace-event JSON, open in https://ui.perfetto.dev) and
// `--metrics-out FILE` (metrics registry JSON dump).
//
// Unknown commands and flags are hard errors: a typo like `--prefech`
// aborts with the list of valid flags instead of being silently ignored.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "aaa/constraints.hpp"
#include "aaa/macrocode.hpp"
#include "aaa/project_io.hpp"
#include "fabric/bitstream.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_spec.hpp"
#include "lint/lint.hpp"
#include "mccdma/case_study.hpp"
#include "mccdma/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtr/manager.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace pdr;

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  pdrflow build <constraints-file> [--out DIR]\n"
      "  pdrflow check <constraints-or-project-file> [--json] [--werror]\n"
      "  pdrflow inspect <bitstream.bit> --device NAME\n"
      "  pdrflow latency <constraints-file> [--bandwidth BYTES_PER_S]\n"
      "  pdrflow adequation <project-file> [--no-prefetch] [--reconfig-ms N]\n"
      "  pdrflow simulate [--symbols N] [--seed S] [--prefetch none|schedule|history]\n"
      "                   [--cache BYTES] [--scrub-ms N]\n"
      "  pdrflow simulate --faults <spec-file> [--seed S] [--no-recovery]\n"
      "                   [--scrub-ms N] [--scrub-mode blind|readback] [--cache BYTES]\n"
      "  pdrflow devices\n"
      "build/adequation/simulate also accept --trace-out FILE --metrics-out FILE\n",
      stderr);
  return 2;
}

/// Throws a pdr::Error whose message is printed verbatim (after one
/// "pdrflow: " prefix) by main's catch block.
[[noreturn]] void fail(const std::string& message) { throw Error(message); }

/// One flag a command accepts.
struct FlagSpec {
  const char* name;      ///< "--out"
  bool takes_value;      ///< consumes the following argv entry
};

/// Strict argument parser: every `--flag` must be declared in the
/// command's spec (unknown flags and missing values are errors, not
/// silently skipped), everything else is a positional.
class Args {
 public:
  Args(const char* command, int argc, char** argv, std::initializer_list<FlagSpec> specs,
       std::size_t positionals_required)
      : command_(command), specs_(specs) {
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positionals_.push_back(arg);
        continue;
      }
      const FlagSpec* spec = nullptr;
      for (const FlagSpec& s : specs_)
        if (arg == s.name) spec = &s;
      if (spec == nullptr)
        fail("unknown flag '" + arg + "' for '" + command_ + "'" + valid_flags());
      if (spec->takes_value) {
        if (i + 1 >= argc)
          fail(std::string("flag '") + spec->name + "' needs a value");
        values_.emplace_back(spec->name, argv[++i]);
      } else {
        values_.emplace_back(spec->name, "");
      }
    }
    if (positionals_.size() != positionals_required)
      fail(strprintf("'%s' takes %zu positional argument(s), got %zu", command_.c_str(),
                     positionals_required, positionals_.size()));
  }

  bool has(const char* name) const { return find(name) != nullptr; }

  /// Value of a value-taking flag, or nullptr if absent.
  const std::string* value(const char* name) const { return find(name); }

  const std::string& positional(std::size_t i) const { return positionals_.at(i); }

  /// Strictly-parsed unsigned integer flag ("12abc" is an error, not 12).
  std::uint64_t uint_or(const char* name, std::uint64_t fallback) const {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
    if (errno != 0 || end == v->c_str() || *end != '\0')
      fail(std::string("flag '") + name + "' needs an unsigned integer, got '" + *v + "'");
    return parsed;
  }

  /// Strictly-parsed floating-point flag.
  double double_or(const char* name, double fallback) const {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(v->c_str(), &end);
    if (errno != 0 || end == v->c_str() || *end != '\0')
      fail(std::string("flag '") + name + "' needs a number, got '" + *v + "'");
    return parsed;
  }

 private:
  const std::string* find(const char* name) const {
    for (const auto& [flag, value] : values_)
      if (flag == name) return &value;
    return nullptr;
  }

  std::string valid_flags() const {
    if (specs_.size() == 0) return "; it takes no flags";
    std::string out = "; valid flags:";
    for (const FlagSpec& s : specs_) out += std::string(" ") + s.name;
    return out;
  }

  std::string command_;
  std::vector<FlagSpec> specs_;
  std::vector<std::string> positionals_;
  std::vector<std::pair<std::string, std::string>> values_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
  std::printf("  wrote %-40s (%s)\n", path.c_str(), human_bytes(data.size()).c_str());
}

/// Writes the tracer/metrics to the paths given by --trace-out /
/// --metrics-out, if present.
void write_observability(const Args& args, const obs::Tracer& tracer,
                         const obs::MetricsRegistry& metrics) {
  if (const std::string* path = args.value("--trace-out")) {
    tracer.write_chrome_json(*path);
    std::printf("  wrote trace with %zu events to %s\n", tracer.size(), path->c_str());
  }
  if (const std::string* path = args.value("--metrics-out")) {
    metrics.write_json(*path);
    std::printf("  wrote %zu metrics to %s\n", metrics.names().size(), path->c_str());
  }
}

/// Prints a lint report (if non-empty) and returns true when it should
/// abort the command (any error).
bool report_blocks(const lint::Report& report, const char* what) {
  if (!report.empty()) std::fputs(report.to_text().c_str(), stderr);
  if (report.errors() == 0) return false;
  std::fprintf(stderr, "pdrflow: %s failed the design-rule check\n", what);
  return true;
}

aaa::PrefetchChoice parse_prefetch_flag(const std::string& s) {
  if (s == "none") return aaa::PrefetchChoice::None;
  if (s == "schedule") return aaa::PrefetchChoice::Schedule;
  if (s == "history") return aaa::PrefetchChoice::History;
  fail("flag '--prefetch' must be none|schedule|history, got '" + s + "'");
}

int cmd_devices(int argc, char** argv) {
  const Args args("devices", argc, argv, {}, 0);
  Table t({"device", "CLB array", "slices", "BRAM18", "MULT18", "frame bytes", "full bitstream"});
  for (const char* name : {"XC2V1000", "XC2V2000", "XC2V3000", "XC2V6000"}) {
    const fabric::DeviceModel d = fabric::device_by_name(name);
    t.row()
        .add(name)
        .add(strprintf("%dx%d", d.clb_rows, d.clb_cols))
        .add(d.total_slices())
        .add(d.total_brams())
        .add(d.total_mult18())
        .add(d.frame_bytes())
        .add(human_bytes(d.config_payload_bytes()));
  }
  t.print();
  return 0;
}

int cmd_check(int argc, char** argv) {
  const Args args("check", argc, argv, {{"--json", false}, {"--werror", false}}, 1);
  const lint::Report report = lint::check_text(read_file(args.positional(0)));
  if (args.has("--json")) {
    std::fputs(report.to_json().c_str(), stdout);
  } else if (report.empty()) {
    std::printf("%s: clean (0 diagnostics)\n", args.positional(0).c_str());
  } else {
    std::fputs(report.to_text().c_str(), stdout);
  }
  const bool failing = report.errors() > 0 || (args.has("--werror") && report.warnings() > 0);
  return failing ? 1 : 0;
}

int cmd_build(int argc, char** argv) {
  const Args args("build", argc, argv,
                  {{"--out", true}, {"--trace-out", true}, {"--metrics-out", true}}, 1);
  // Cheap constraint rules run first so a broken file reports every
  // violation (not just the first) before the flow spends time on it.
  const aaa::ConstraintSet constraints =
      aaa::parse_constraints(read_file(args.positional(0)), /*validate=*/false);
  if (report_blocks(lint::check_constraints(constraints), "constraints file")) return 1;

  const std::string* out_flag = args.value("--out");
  const std::filesystem::path out_dir = out_flag ? *out_flag : "pdrflow_out";
  std::filesystem::create_directories(out_dir);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const synth::DesignBundle bundle =
      mccdma::run_flow_from_constraints(constraints, {}, &tracer, &metrics);
  std::fputs(bundle.floorplan.render().c_str(), stdout);

  Table t({"region", "variant", "slices", "fmax (MHz)", "bitstream", "% of device"});
  for (const auto& [region, variants] : bundle.dynamic_variants) {
    for (const auto& v : variants) {
      t.row()
          .add(region)
          .add(v.name)
          .add(v.usage.slices)
          .add(v.timing.fmax_mhz, 0)
          .add(human_bytes(v.bitstream.size()))
          .add(100.0 * bundle.floorplan.region_fraction(region), 1);
      write_file(out_dir / (v.name + "_partial.bit"), v.bitstream);
    }
  }
  t.print();
  write_file(out_dir / "initial_full.bit", bundle.initial_bitstream);
  write_observability(args, tracer, metrics);
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  const Args args("inspect", argc, argv, {{"--device", true}}, 1);
  const std::string* device_name = args.value("--device");
  if (device_name == nullptr) fail("'inspect' requires --device NAME");
  const fabric::DeviceModel device = fabric::device_by_name(*device_name);

  const std::string blob = read_file(args.positional(0));
  const std::vector<std::uint8_t> stream(blob.begin(), blob.end());
  std::puts(fabric::describe_bitstream(device, stream).c_str());

  const auto actions = fabric::decode_packets(device, stream);
  Table t({"packet", "register", "payload words", "detail"});
  int i = 0;
  for (const auto& a : actions) {
    std::string detail;
    if (a.reg == fabric::ConfigReg::Far && !a.payload.empty())
      detail = fabric::FrameAddress::decode(a.payload[0]).to_string();
    if (a.reg == fabric::ConfigReg::Idcode && !a.payload.empty())
      detail = strprintf("0x%08x", a.payload[0]);
    const char* reg_name = a.reg == fabric::ConfigReg::Crc      ? "CRC"
                           : a.reg == fabric::ConfigReg::Far    ? "FAR"
                           : a.reg == fabric::ConfigReg::Fdri   ? "FDRI"
                           : a.reg == fabric::ConfigReg::Cmd    ? "CMD"
                           : a.reg == fabric::ConfigReg::Idcode ? "IDCODE"
                                                                : "?";
    t.row().add(i++).add(reg_name).add(std::uint64_t{a.payload.size()}).add(detail);
  }
  t.print();
  return 0;
}

int cmd_latency(int argc, char** argv) {
  const Args args("latency", argc, argv, {{"--bandwidth", true}}, 1);
  const aaa::ConstraintSet constraints = aaa::parse_constraints(read_file(args.positional(0)));
  const double bandwidth = args.double_or("--bandwidth", mccdma::kCaseStudyStoreBandwidth);

  const synth::DesignBundle bundle = mccdma::run_flow_from_constraints(constraints, {});
  rtr::BitstreamStore store(bandwidth, mccdma::kCaseStudyStoreLatency);
  rtr::NonePrefetch policy;
  rtr::ManagerConfig cfg;
  cfg.manager =
      constraints.manager == aaa::Placement::Cpu ? aaa::Placement::Cpu : aaa::Placement::Fpga;
  cfg.builder = constraints.builder;
  cfg.port_kind = constraints.port == aaa::PortChoice::Icap        ? fabric::PortKind::Icap
                  : constraints.port == aaa::PortChoice::SelectMap ? fabric::PortKind::SelectMap
                                                                   : fabric::PortKind::Jtag;
  rtr::ReconfigManager manager(bundle, cfg, store, policy);

  std::printf("memory bandwidth %.1f MB/s, port %s\n\n", bandwidth / 1e6,
              fabric::port_kind_name(cfg.port_kind));
  Table t({"region", "module", "cold (ms)", "staged (ms)", "staging (ms)"});
  for (const auto& [region, variants] : bundle.dynamic_variants)
    for (const auto& v : variants)
      t.row()
          .add(region)
          .add(v.name)
          .add(to_ms(manager.cold_load_latency(v.name)), 3)
          .add(to_ms(manager.staged_load_latency(v.name)), 3)
          .add(to_ms(manager.staging_time(v.name)), 3);
  t.print();
  return 0;
}

int cmd_adequation(int argc, char** argv) {
  const Args args("adequation", argc, argv,
                  {{"--no-prefetch", false},
                   {"--reconfig-ms", true},
                   {"--trace-out", true},
                   {"--metrics-out", true}},
                  1);
  const aaa::Project project = aaa::parse_project(read_file(args.positional(0)));

  aaa::Adequation adequation(project.algorithm, project.architecture, project.durations);
  const TimeNs reconfig = static_cast<TimeNs>(args.double_or("--reconfig-ms", 4.0) * 1e6);
  adequation.set_reconfig_cost(
      [reconfig](const std::string&, const std::string&) { return reconfig; });

  aaa::AdequationOptions options;
  if (args.has("--no-prefetch")) options.prefetch = false;

  const aaa::Schedule schedule = adequation.run(options);
  const aaa::Executive executive =
      aaa::generate_executive(schedule, project.algorithm, project.architecture);

  // The schedule and executive rule families are cheap; run them before
  // printing anything so a hazardous schedule never looks authoritative.
  lint::Report report = lint::check_schedule(schedule, project.algorithm, project.architecture);
  report.merge(lint::check_executive(executive));
  if (report_blocks(report, "schedule/executive")) return 1;

  std::printf("project '%s': %zu operations on %zu operators\n\n", project.name.c_str(),
              project.algorithm.size(), project.architecture.operators().size());
  std::fputs(schedule.to_string().c_str(), stdout);
  std::puts("");
  std::fputs(schedule.gantt().c_str(), stdout);
  std::puts("\nsynchronized executive:");
  std::fputs(executive.to_string().c_str(), stdout);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  aaa::export_schedule(schedule, tracer);
  metrics.counter("adequation.reconfigs").add(schedule.reconfig_count);
  metrics.gauge("adequation.makespan_ns").set(static_cast<double>(schedule.makespan));
  metrics.gauge("adequation.reconfig_exposed_ns").set(static_cast<double>(schedule.reconfig_exposed));
  write_observability(args, tracer, metrics);
  return 0;
}

/// `simulate --faults`: a seeded fault-injection campaign on the case
/// study's design bundle instead of the symbol-level transmitter run.
/// The printed report is bit-identical for the same (spec, seed) pair.
int simulate_faults(const Args& args) {
  const std::string* spec_path = args.value("--faults");
  const fault::FaultSpec spec = fault::parse_fault_spec(read_file(*spec_path));

  fault::CampaignConfig config;
  config.seed = args.uint_or("--seed", 0);  // 0 = the spec's own seed
  config.recovery = !args.has("--no-recovery");
  config.manager = rtr::sundance_manager_config();
  if (args.has("--cache"))
    config.manager.cache_capacity = static_cast<Bytes>(args.uint_or("--cache", 0));
  if (args.has("--scrub-ms"))
    config.scrub_period = static_cast<TimeNs>(args.double_or("--scrub-ms", 0.0) * 1e6);
  if (const std::string* mode = args.value("--scrub-mode")) {
    if (*mode == "blind")
      config.scrub_mode = fault::ScrubScheduler::Mode::Blind;
    else if (*mode == "readback")
      config.scrub_mode = fault::ScrubScheduler::Mode::ReadbackTriggered;
    else
      fail("flag '--scrub-mode' must be blind|readback, got '" + *mode + "'");
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const mccdma::CaseStudy cs = mccdma::build_case_study();
  rtr::BitstreamStore store = mccdma::make_case_study_store();
  const fault::CampaignReport report =
      fault::run_campaign(cs.bundle, store, spec, config, &tracer, &metrics);
  std::fputs(report.to_string().c_str(), stdout);
  write_observability(args, tracer, metrics);
  // With recovery on, any region left unhealthy is a failed campaign.
  return config.recovery && !report.all_healthy() ? 1 : 0;
}

int cmd_simulate(int argc, char** argv) {
  const Args args("simulate", argc, argv,
                  {{"--symbols", true},
                   {"--seed", true},
                   {"--prefetch", true},
                   {"--cache", true},
                   {"--scrub-ms", true},
                   {"--scrub-mode", true},
                   {"--faults", true},
                   {"--no-recovery", false},
                   {"--trace-out", true},
                   {"--metrics-out", true}},
                  0);
  if (args.has("--faults")) return simulate_faults(args);
  if (args.has("--no-recovery") || args.has("--scrub-mode"))
    fail("flags '--no-recovery' and '--scrub-mode' require '--faults <spec-file>'");
  const std::size_t n_symbols = static_cast<std::size_t>(args.uint_or("--symbols", 4096));

  // The case study's own constraints pass through the linter first — the
  // cheap rule families guard every simulation entry point.
  const aaa::ConstraintSet case_constraints =
      aaa::parse_constraints(mccdma::case_study_constraints_text(), /*validate=*/false);
  if (report_blocks(lint::check_constraints(case_constraints), "case-study constraints"))
    return 1;

  mccdma::SystemConfig config;
  config.manager = rtr::sundance_manager_config();
  config.seed = args.uint_or("--seed", config.seed);
  if (args.has("--cache"))
    config.manager.cache_capacity = static_cast<Bytes>(args.uint_or("--cache", 0));
  if (args.has("--scrub-ms"))
    config.scrub_period = static_cast<TimeNs>(args.double_or("--scrub-ms", 0.0) * 1e6);
  if (const std::string* prefetch = args.value("--prefetch"))
    config.prefetch = parse_prefetch_flag(*prefetch);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  config.tracer = &tracer;
  config.metrics = &metrics;

  const mccdma::CaseStudy cs = mccdma::build_case_study();
  mccdma::TransmitterSystem system(cs, config);
  const mccdma::SystemReport report = system.run(n_symbols);

  std::printf("MC-CDMA transmitter, %zu symbols, prefetch=%s\n\n", report.symbols,
              aaa::to_keyword(config.prefetch));
  Table t({"metric", "value"});
  t.row().add("elapsed (ms)").add(to_ms(report.elapsed), 3);
  t.row().add("stall (ms)").add(to_ms(report.stall_total), 3);
  t.row().add("stall fraction (%)").add(100.0 * report.stall_fraction(), 2);
  t.row().add("throughput (Mb/s)").add(report.throughput_bps() / 1e6, 2);
  t.row().add("modulation switches").add(report.switches);
  t.row().add("mean SNR (dB)").add(report.mean_snr_db, 1);
  t.print();

  const rtr::ManagerStats& m = report.manager;
  std::puts("\nreconfiguration manager:");
  Table mt({"stat", "value"});
  mt.row().add("requests").add(m.requests);
  mt.row().add("already loaded").add(m.already_loaded);
  mt.row().add("prefetch hits").add(m.prefetch_hits);
  mt.row().add("prefetch in-flight").add(m.prefetch_inflight);
  mt.row().add("cache hits").add(m.cache_hits);
  mt.row().add("misses").add(m.misses);
  mt.row().add("prefetches issued").add(m.prefetches_issued);
  mt.row().add("prefetches wasted").add(m.prefetches_wasted);
  mt.row().add("scrubs").add(m.scrubs);
  mt.row().add("blanks").add(m.blanks);
  mt.row().add("load failures").add(m.load_failures);
  mt.row().add("retries").add(m.retries);
  mt.row().add("fallbacks").add(m.fallbacks);
  mt.row().add("scrub repairs").add(m.scrub_repairs);
  mt.row().add("total load time (ms)").add(to_ms(m.total_load_time), 3);
  mt.row().add("bytes loaded").add(human_bytes(m.bytes_loaded));
  mt.print();

  write_observability(args, tracer, metrics);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "devices") return cmd_devices(argc - 2, argv + 2);
    if (cmd == "build") return cmd_build(argc - 2, argv + 2);
    if (cmd == "check") return cmd_check(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    if (cmd == "latency") return cmd_latency(argc - 2, argv + 2);
    if (cmd == "adequation") return cmd_adequation(argc - 2, argv + 2);
    if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
  } catch (const pdr::Error& e) {
    std::fprintf(stderr, "pdrflow: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "pdrflow: unknown command '%s'\n", cmd.c_str());
  return usage();
}
